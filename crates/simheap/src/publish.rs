//! Seqlock publication of block and object metadata for lock-free
//! readers.
//!
//! A published heap ([`SimHeap::new_published`](crate::SimHeap::new_published))
//! mirrors the fields a member access needs — block base, allocation
//! generation, the runtime's object metadata (class hash, plan hash,
//! plan registry id, lifecycle state) — into a table of cache-line
//! sized [`PubSlot`]s, one per heap slot, each guarded by its own
//! **seqlock** word:
//!
//! * The writer (the shard, already serialized by its mutex) brackets
//!   every mutation of a slot in [`HeapPublisher::open`] /
//!   [`HeapPublisher::close`]: `open` bumps the sequence to odd with a
//!   `Release` fence after it, `close` stores back even with `Release`.
//!   Data stores inside the window are plain relaxed stores.
//! * A reader ([`HeapPublisher::try_snapshot`]) loads the sequence with
//!   `Acquire`, rejects odd values, copies the data words relaxed,
//!   issues an `Acquire` fence and re-loads the sequence: an unchanged
//!   even value proves no writer window overlapped the copy, so the
//!   snapshot is a consistent point-in-time view. Anything else is
//!   [`SnapshotOutcome::Unstable`] and the caller retries or falls back
//!   to the shard mutex.
//!
//! The fence pairing makes the protocol airtight for stores *inside*
//! a window. Object payload bytes live in the shared arena and are
//! also read outside any window (`read_field`'s value load); those
//! loads are validated by re-checking the slot's sequence *after* the
//! byte load ([`HeapPublisher::recheck`]), so a torn value can never be
//! returned — it is retried or re-read under the lock.
//!
//! Capacity is bounded: slots beyond [`HeapPublisher::covered_slots`]
//! are simply never published, and readers get
//! [`SnapshotOutcome::Untracked`] — correct, just slow (they take the
//! mutex). Unit-index entries are written once per unit (blocks are
//! never split or merged) with `Release`, so a reader that finds an
//! entry also finds the initialized slot behind it.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{fence, AtomicU32, AtomicU64};
use std::sync::{Arc, OnceLock};

use crate::shared::SharedArena;
use crate::ALIGN;

/// `PubSlot.state`: nothing recorded for this slot yet.
pub const PUB_STATE_NONE: u32 = 0;
/// `PubSlot.state`: a live tracked object.
pub const PUB_STATE_LIVE: u32 = 1;
/// `PubSlot.state`: the tracked object was freed.
pub const PUB_STATE_FREED: u32 = 2;

/// Shift of the metadata generation inside a packed `life` word.
const LIFE_GEN_SHIFT: u32 = 2;
/// Mask of the lifecycle state inside a packed `life` word.
const LIFE_STATE_MASK: u64 = 0b11;

/// Pack a metadata generation and a `PUB_STATE_*` lifecycle state into
/// one `life` word. Keeping both in a single atomic is what makes the
/// lock-free free claim ([`HeapPublisher::claim_free`]) ABA-safe: the
/// CAS can only succeed against the exact `(generation, Live)` pair the
/// caller validated, and generations are strictly monotonic per slot,
/// so a recycled slot can never satisfy a stale claim.
#[inline]
fn pack_life(meta_gen: u64, state: u32) -> u64 {
    (meta_gen << LIFE_GEN_SHIFT) | u64::from(state)
}

/// Published slots per on-demand committed chunk (64 KiB chunks).
const SLOTS_PER_CHUNK: usize = 1024;
/// Cap on slot chunks: slots past `MAX_SLOT_CHUNKS * SLOTS_PER_CHUNK`
/// are never published (readers for them fall back to the mutex).
const MAX_SLOT_CHUNKS: usize = 1024;
/// Arena units (`ALIGN` bytes each) per unit-index chunk.
const UNITS_PER_CHUNK: usize = 16384;

/// One published slot: every field a lock-free member access needs,
/// packed into a single cache line behind a per-slot seqlock.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PubSlot {
    /// Seqlock word: odd while a writer window is open.
    seq: AtomicU64,
    /// Block base address (global).
    base: AtomicU64,
    /// Heap allocation generation (mirrors `BlockInfo::generation`).
    heap_gen: AtomicU64,
    /// Packed lifecycle word: `meta_gen << 2 | state` (see
    /// [`pack_life`]). `meta_gen` is the generation the runtime
    /// recorded its metadata under — a live object requires
    /// `meta_gen == heap_gen`; raw-path reuse bumps `heap_gen` and
    /// thereby orphans stale metadata, exactly like the shadow index's
    /// generation stamps. The state bits are one of the `PUB_STATE_*`
    /// constants. Packed so [`HeapPublisher::claim_free`] can retire a
    /// live object with a single generation-checked CAS.
    life: AtomicU64,
    /// Class hash of the recorded object.
    class_hash: AtomicU64,
    /// Layout plan hash (for inline-cache comparisons).
    plan_hash: AtomicU64,
    /// Plan registry id + 1 (0 = not registered).
    plan_id: AtomicU32,
    /// Warm-access flag (first access per recorded object is a "cold"
    /// metadata touch, later ones count as cache hits).
    warmed: AtomicU32,
    /// Intrusive link for the owning shard's remote-free Treiber stack:
    /// the next remote-freed slot id + 1 (0 = end of list). Only
    /// meaningful between a successful [`HeapPublisher::claim_free`]
    /// and the owning shard's drain; plain relaxed accesses, ordered by
    /// the stack head's release/acquire CAS pair.
    remote_next: AtomicU32,
}

/// A consistent point-in-time copy of one [`PubSlot`].
#[derive(Debug, Clone, Copy)]
pub struct PubSnapshot {
    /// Heap slot id.
    pub slot: u32,
    /// The (even) sequence the snapshot was taken at; feed it back to
    /// [`HeapPublisher::recheck`] to validate later arena loads.
    pub seq: u64,
    /// Block base address (global).
    pub base: u64,
    /// Heap allocation generation.
    pub heap_gen: u64,
    /// Generation the object metadata was recorded under.
    pub meta_gen: u64,
    /// Recorded class hash.
    pub class_hash: u64,
    /// Recorded plan hash.
    pub plan_hash: u64,
    /// Plan registry id, when the plan was registered.
    pub plan_id: Option<u32>,
    /// Lifecycle state (`PUB_STATE_*`).
    pub state: u32,
    /// Whether the warm-access flag was already set at snapshot time:
    /// `true` lets readers skip the [`HeapPublisher::warm_probe`]
    /// probe-and-set (and its chunk-directory walk) in steady state.
    pub warmed: bool,
}

/// Result of a lock-free snapshot attempt.
#[derive(Debug, Clone, Copy)]
pub enum SnapshotOutcome {
    /// A consistent snapshot.
    Snap(PubSnapshot),
    /// The address maps to no published slot (never allocated, out of
    /// publication coverage, or a redzone gap): take the mutex.
    Untracked,
    /// A writer window overlapped the read: retry or take the mutex.
    Unstable,
}

/// The publication side-table of one published [`SimHeap`]: the shared
/// arena handle, the per-slot seqlocked metadata mirror, and the
/// `addr/ALIGN → slot` unit index.
///
/// Mutation methods (`open`/`close`/`mirror_*`/`init_slot`/
/// `publish_units`) are the writer half of the protocol and must only
/// be called by the heap's owner, under whatever lock serializes heap
/// mutation — they are published (`pub`) because the object runtime
/// mirrors its own metadata through them, not because they are safe
/// for arbitrary callers.
///
/// [`SimHeap`]: crate::SimHeap
pub struct HeapPublisher {
    arena: Arc<SharedArena>,
    arena_base: u64,
    slot_chunks: Box<[OnceLock<Box<[PubSlot]>>]>,
    unit_chunks: Box<[OnceLock<Box<[AtomicU32]>>]>,
}

impl std::fmt::Debug for HeapPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapPublisher")
            .field("arena", &self.arena)
            .field("arena_base", &self.arena_base)
            .field("covered_slots", &self.covered_slots())
            .finish()
    }
}

impl HeapPublisher {
    /// A publisher for a heap of `capacity` bytes based at `arena_base`.
    pub(crate) fn new(capacity: usize, arena_base: u64) -> Self {
        // At most one slot (and exactly one unit) per ALIGN-sized unit.
        let max_units = (capacity / ALIGN).max(1);
        HeapPublisher {
            arena: Arc::new(SharedArena::new(capacity)),
            arena_base,
            slot_chunks: (0..max_units.div_ceil(SLOTS_PER_CHUNK).min(MAX_SLOT_CHUNKS))
                .map(|_| OnceLock::new())
                .collect(),
            unit_chunks: (0..max_units.div_ceil(UNITS_PER_CHUNK)).map(|_| OnceLock::new()).collect(),
        }
    }

    pub(crate) fn arena_handle(&self) -> Arc<SharedArena> {
        Arc::clone(&self.arena)
    }

    /// Number of heap slots this publisher can mirror; higher slot ids
    /// stay unpublished and their readers fall back to the lock.
    pub fn covered_slots(&self) -> usize {
        self.slot_chunks.len() * SLOTS_PER_CHUNK
    }

    #[inline]
    fn slot(&self, slot: u32) -> Option<&PubSlot> {
        let (chunk, i) = (slot as usize / SLOTS_PER_CHUNK, slot as usize % SLOTS_PER_CHUNK);
        Some(&self.slot_chunks.get(chunk)?.get()?[i])
    }

    fn ensure_slot(&self, slot: u32) -> Option<&PubSlot> {
        let (chunk, i) = (slot as usize / SLOTS_PER_CHUNK, slot as usize % SLOTS_PER_CHUNK);
        let chunk = self.slot_chunks.get(chunk)?;
        Some(&chunk.get_or_init(|| (0..SLOTS_PER_CHUNK).map(|_| PubSlot::default()).collect())[i])
    }

    // ----- writer half (call under the heap owner's lock) -----

    /// Open a writer window on `slot`: sequence goes odd, and the
    /// `Release` fence orders the bump before the window's data stores.
    /// Returns the window token for [`HeapPublisher::close`], or `None`
    /// when the slot is out of publication coverage (no window needed —
    /// nothing is published for it).
    #[must_use]
    pub fn open(&self, slot: u32) -> Option<u64> {
        let ps = self.ensure_slot(slot)?;
        // RMW, not load+store: a lock-free free claim may bump this
        // slot's sequence concurrently (it does not hold the owner's
        // lock), and a plain store would roll its advance back.
        let s = ps.seq.fetch_add(1, Relaxed);
        fence(Release);
        Some(s)
    }

    /// Close a writer window opened with the returned token.
    pub fn close(&self, slot: u32, token: u64) {
        let ps = self.slot(slot).expect("close pairs with a successful open");
        // RMW for the same reason as `open`: a concurrent claim's +2
        // must survive the close. The window parity is preserved either
        // way (open +1, claims +2k, close +1 — even again).
        let prev = ps.seq.fetch_add(1, Release);
        debug_assert!(prev & 1 == 1 && prev > token, "close pairs with a successful open");
    }

    /// Initialize a fresh (never-published) slot outside any window:
    /// the unit index does not point here yet, so no reader can see the
    /// partial state. Follow with [`HeapPublisher::publish_units`].
    pub fn init_slot(&self, slot: u32, base: u64, heap_gen: u64) {
        if let Some(ps) = self.ensure_slot(slot) {
            ps.base.store(base, Relaxed);
            ps.heap_gen.store(heap_gen, Relaxed);
            ps.life.store(pack_life(0, PUB_STATE_NONE), Relaxed);
        }
    }

    /// Point arena units `[first, last)` at `slot`. Write-once per unit
    /// (blocks are never split or merged); the `Release` store makes
    /// the [`HeapPublisher::init_slot`] stores visible to any reader
    /// that observes the entry.
    pub fn publish_units(&self, first: usize, last: usize, slot: u32) {
        if self.slot(slot).is_none() {
            return; // out of coverage: readers must keep missing the units
        }
        for unit in first..last {
            let (chunk, i) = (unit / UNITS_PER_CHUNK, unit % UNITS_PER_CHUNK);
            let Some(chunk) = self.unit_chunks.get(chunk) else { return };
            chunk.get_or_init(|| (0..UNITS_PER_CHUNK).map(|_| AtomicU32::new(0)).collect())[i]
                .store(slot + 1, Release);
        }
    }

    /// Mirror a heap-generation bump (slot reuse). Window-required.
    pub fn mirror_heap_gen(&self, slot: u32, heap_gen: u64) {
        if let Some(ps) = self.slot(slot) {
            ps.heap_gen.store(heap_gen, Relaxed);
        }
    }

    /// Mirror the runtime recording object metadata. Window-required.
    pub fn mirror_record(
        &self,
        slot: u32,
        class_hash: u64,
        plan_hash: u64,
        plan_id: Option<u32>,
        meta_gen: u64,
    ) {
        if let Some(ps) = self.slot(slot) {
            ps.class_hash.store(class_hash, Relaxed);
            ps.plan_hash.store(plan_hash, Relaxed);
            ps.plan_id.store(plan_id.map_or(0, |id| id + 1), Relaxed);
            ps.life.store(pack_life(meta_gen, PUB_STATE_LIVE), Relaxed);
            ps.warmed.store(0, Relaxed);
        }
    }

    /// Mirror an object free. Window-required. Preserves the recorded
    /// metadata generation (only the state bits change), so a stale
    /// snapshot can still be diagnosed by generation.
    pub fn mirror_free(&self, slot: u32) {
        if let Some(ps) = self.slot(slot) {
            let life = ps.life.load(Relaxed);
            ps.life.store((life & !LIFE_STATE_MASK) | u64::from(PUB_STATE_FREED), Relaxed);
            ps.warmed.store(0, Relaxed);
        }
    }

    /// Lock-free free claim: atomically retire `(meta_gen, Live)` to
    /// `(meta_gen, Freed)`. This is the one publication mutation legal
    /// *outside* a writer window and *without* the heap owner's lock:
    /// the state flip touches only the packed `life` word (readers
    /// load that word atomically, so no torn view is possible), the
    /// sequence then advances by a full window so optimistic readers
    /// re-validate, and the generation baked into the compare makes
    /// the claim ABA-safe — a slot that was
    /// freed and re-recorded in between carries a higher generation and
    /// the CAS fails. Returns `true` when this caller won the claim;
    /// `false` means the object is already freed, was never recorded at
    /// this generation, or a racing claim got there first — the caller
    /// must fall back to the locked path, which will diagnose it.
    ///
    /// A successful claim only marks the object logically dead. The
    /// heap-side release (poisoning, quarantine, free-list push) still
    /// happens under the owner's lock when the remote-free stack is
    /// drained, so the block's storage stays intact until then.
    #[inline]
    pub fn claim_free(&self, slot: u32, meta_gen: u64) -> bool {
        let Some(ps) = self.slot(slot) else { return false };
        let live = pack_life(meta_gen, PUB_STATE_LIVE);
        let freed = pack_life(meta_gen, PUB_STATE_FREED);
        if ps
            .life
            .compare_exchange(live, freed, std::sync::atomic::Ordering::AcqRel, Relaxed)
            .is_ok()
        {
            ps.warmed.store(0, Relaxed);
            // Advance the seqlock by a full window (+2, parity kept) so
            // in-flight optimistic readers that validated against the
            // pre-claim sequence retry and re-classify the object, and
            // the "every mutation advances the sequence" monotonicity
            // contract holds for lock-free frees too. The state flip
            // itself is already un-tearable (single word), so no odd
            // intermediate is needed.
            ps.seq.fetch_add(2, Release);
            true
        } else {
            false
        }
    }

    /// Set the remote-free stack link of `slot` (see
    /// [`PubSlot::remote_next`]): `next` is the next slot id + 1, 0
    /// terminates. Only the claimant that just won
    /// [`HeapPublisher::claim_free`] may write this.
    #[inline]
    pub fn set_remote_next(&self, slot: u32, next_plus1: u32) {
        if let Some(ps) = self.slot(slot) {
            ps.remote_next.store(next_plus1, Relaxed);
        }
    }

    /// Read the remote-free stack link of `slot`. Only the draining
    /// owner (after acquiring the detached stack head) may read this.
    #[inline]
    pub fn remote_next(&self, slot: u32) -> u32 {
        self.slot(slot).map_or(0, |ps| ps.remote_next.load(Relaxed))
    }

    /// Warm-flag probe: returns whether the slot was already warm, and
    /// warms it if not. Relaxed — the flag is a statistic, not a guard.
    #[inline]
    pub fn warm_probe(&self, slot: u32) -> bool {
        match self.slot(slot) {
            Some(ps) => ps.warmed.load(Relaxed) == 1 || ps.warmed.swap(1, Relaxed) == 1,
            None => false,
        }
    }

    /// Whether `slot` is inside publication coverage (its mirror, not
    /// the runtime's shadow record, is then the warm-flag authority).
    #[inline]
    pub fn covers(&self, slot: u32) -> bool {
        (slot as usize) < self.covered_slots()
    }

    // ----- reader half (lock-free) -----

    /// Attempt a consistent snapshot of the slot covering `addr`.
    #[inline]
    pub fn try_snapshot(&self, addr: u64) -> SnapshotOutcome {
        let Some(local) = addr.checked_sub(self.arena_base) else {
            return SnapshotOutcome::Untracked;
        };
        let unit = local as usize / ALIGN;
        let (chunk, i) = (unit / UNITS_PER_CHUNK, unit % UNITS_PER_CHUNK);
        let slot_plus1 = match self.unit_chunks.get(chunk).and_then(|c| c.get()) {
            Some(units) => units[i].load(Acquire),
            None => 0,
        };
        if slot_plus1 == 0 {
            return SnapshotOutcome::Untracked;
        }
        self.try_snapshot_slot(slot_plus1 - 1)
    }

    /// [`HeapPublisher::try_snapshot`] for a reader that already knows
    /// the slot id (e.g. from an inline cache's slot hint), skipping
    /// the `addr -> slot` unit-index walk. The caller must validate the
    /// returned snapshot's `base` against the address it believes the
    /// slot belongs to — a stale hint simply yields a snapshot of some
    /// other (or no longer live) block, never an unsound one.
    #[inline]
    pub fn try_snapshot_slot(&self, slot: u32) -> SnapshotOutcome {
        let Some(ps) = self.slot(slot) else {
            return SnapshotOutcome::Untracked;
        };
        let s1 = ps.seq.load(Acquire);
        if s1 & 1 == 1 {
            return SnapshotOutcome::Unstable;
        }
        let life = ps.life.load(Relaxed);
        let snap = PubSnapshot {
            slot,
            seq: s1,
            base: ps.base.load(Relaxed),
            heap_gen: ps.heap_gen.load(Relaxed),
            meta_gen: life >> LIFE_GEN_SHIFT,
            class_hash: ps.class_hash.load(Relaxed),
            plan_hash: ps.plan_hash.load(Relaxed),
            plan_id: ps.plan_id.load(Relaxed).checked_sub(1),
            state: (life & LIFE_STATE_MASK) as u32,
            warmed: ps.warmed.load(Relaxed) == 1,
        };
        fence(Acquire);
        if ps.seq.load(Relaxed) != s1 {
            return SnapshotOutcome::Unstable;
        }
        SnapshotOutcome::Snap(snap)
    }

    /// Validate that `slot`'s sequence still equals `seq` (an arena
    /// byte load issued since the snapshot is then not torn by any
    /// writer window on the slot).
    #[inline]
    pub fn recheck(&self, slot: u32, seq: u64) -> bool {
        fence(Acquire);
        matches!(self.slot(slot), Some(ps) if ps.seq.load(Relaxed) == seq)
    }

    /// Lock-free little-endian load of `width` ∈ {1,2,4,8} bytes from
    /// the shared arena; `None` when the range is uncommitted. Validate
    /// with [`HeapPublisher::recheck`] before trusting the value.
    #[inline]
    pub fn read_uint(&self, addr: u64, width: usize) -> Option<u64> {
        let local = addr.checked_sub(self.arena_base)?;
        self.arena.read_uint(local as usize, width)
    }

    /// Bytes held by publication metadata (committed slot and unit
    /// chunks plus the chunk directories). Arena bytes are program
    /// data, not metadata, and are excluded.
    pub fn metadata_bytes(&self) -> usize {
        let slot_bytes: usize = self
            .slot_chunks
            .iter()
            .filter(|c| c.get().is_some())
            .count()
            * SLOTS_PER_CHUNK
            * std::mem::size_of::<PubSlot>();
        let unit_bytes: usize = self
            .unit_chunks
            .iter()
            .filter(|c| c.get().is_some())
            .count()
            * UNITS_PER_CHUNK
            * std::mem::size_of::<AtomicU32>();
        slot_bytes
            + unit_bytes
            + std::mem::size_of_val(self.slot_chunks.as_ref())
            + std::mem::size_of_val(self.unit_chunks.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pubslot_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<PubSlot>(), 64);
        assert_eq!(std::mem::align_of::<PubSlot>(), 64);
    }

    #[test]
    fn snapshot_sees_published_metadata() {
        let p = HeapPublisher::new(1 << 20, 0);
        p.init_slot(0, 16, 1);
        p.publish_units(1, 3, 0);
        let win = p.open(0).unwrap();
        p.mirror_record(0, 0xC1A55, 0x91A4, Some(7), 1);
        p.close(0, win);
        match p.try_snapshot(16) {
            SnapshotOutcome::Snap(s) => {
                assert_eq!(s.base, 16);
                assert_eq!(s.heap_gen, 1);
                assert_eq!(s.meta_gen, 1);
                assert_eq!(s.class_hash, 0xC1A55);
                assert_eq!(s.plan_hash, 0x91A4);
                assert_eq!(s.plan_id, Some(7));
                assert_eq!(s.state, PUB_STATE_LIVE);
                assert!(p.recheck(s.slot, s.seq));
                // Interior pointers resolve to the same slot.
                assert!(matches!(p.try_snapshot(40), SnapshotOutcome::Snap(i) if i.slot == s.slot));
            }
            other => panic!("expected a snapshot, got {other:?}"),
        }
        assert!(matches!(p.try_snapshot(4096), SnapshotOutcome::Untracked));
    }

    #[test]
    fn open_windows_are_unstable_and_invalidate_rechecks() {
        let p = HeapPublisher::new(1 << 20, 0);
        p.init_slot(0, 16, 1);
        p.publish_units(1, 2, 0);
        let snap = match p.try_snapshot(16) {
            SnapshotOutcome::Snap(s) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        let win = p.open(0).unwrap();
        assert!(matches!(p.try_snapshot(16), SnapshotOutcome::Unstable));
        assert!(!p.recheck(snap.slot, snap.seq), "open window must fail recheck");
        p.close(0, win);
        assert!(!p.recheck(snap.slot, snap.seq), "closed window bumped the sequence");
        assert!(matches!(p.try_snapshot(16), SnapshotOutcome::Snap(_)));
    }

    #[test]
    fn out_of_coverage_slots_degrade_to_untracked() {
        let p = HeapPublisher::new(1 << 20, 0);
        let beyond = p.covered_slots() as u32 + 5;
        assert!(p.open(beyond).is_none());
        assert!(!p.covers(beyond));
        p.init_slot(beyond, 16, 1);
        p.publish_units(1, 2, beyond);
        assert!(matches!(p.try_snapshot(16), SnapshotOutcome::Untracked));
        assert!(!p.warm_probe(beyond));
    }

    #[test]
    fn claim_free_is_generation_exact_and_single_shot() {
        let p = HeapPublisher::new(1 << 20, 0);
        p.init_slot(0, 16, 3);
        p.publish_units(1, 2, 0);
        let win = p.open(0).unwrap();
        p.mirror_record(0, 1, 2, None, 3);
        p.close(0, win);

        assert!(!p.claim_free(0, 2), "stale generation must not claim");
        assert!(!p.claim_free(0, 4), "future generation must not claim");
        assert!(p.claim_free(0, 3), "exact live generation claims");
        assert!(!p.claim_free(0, 3), "double claim must lose");
        match p.try_snapshot(16) {
            SnapshotOutcome::Snap(s) => {
                assert_eq!(s.state, PUB_STATE_FREED);
                assert_eq!(s.meta_gen, 3, "claim preserves the generation");
            }
            other => panic!("expected snapshot, got {other:?}"),
        }

        // Re-recording under a new generation revives the slot and the
        // old claim key stays dead.
        let win = p.open(0).unwrap();
        p.mirror_record(0, 1, 2, None, 4);
        p.close(0, win);
        assert!(!p.claim_free(0, 3), "recycled slot must reject the stale claim");
        assert!(p.claim_free(0, 4));
    }

    #[test]
    fn remote_links_round_trip() {
        let p = HeapPublisher::new(1 << 20, 0);
        p.init_slot(0, 16, 1);
        p.init_slot(1, 32, 1);
        assert_eq!(p.remote_next(0), 0, "links start clear");
        p.set_remote_next(0, 2);
        p.set_remote_next(1, 0);
        assert_eq!(p.remote_next(0), 2);
        assert_eq!(p.remote_next(1), 0);
        let beyond = p.covered_slots() as u32 + 1;
        p.set_remote_next(beyond, 9);
        assert_eq!(p.remote_next(beyond), 0, "out-of-coverage links are inert");
    }

    #[test]
    fn warm_probe_reports_prior_state_and_record_resets_it() {
        let p = HeapPublisher::new(1 << 20, 0);
        p.init_slot(0, 16, 1);
        assert!(!p.warm_probe(0), "first probe is cold");
        assert!(p.warm_probe(0), "second probe is warm");
        let win = p.open(0).unwrap();
        p.mirror_record(0, 1, 2, None, 1);
        p.close(0, win);
        assert!(!p.warm_probe(0), "re-record resets warmth");
    }
}
