//! A free-listed metadata slab with generation reuse.
//!
//! The allocation fast path (paper §V-B) wants `olr_malloc`/`olr_free`
//! to do **no allocation of their own in the steady state**. Two
//! metadata tables stood in the way: the heap's block table and the
//! runtime's shadow table, both plain `Vec`s that were resized with
//! per-call bookkeeping on the allocation path. [`Slab`] replaces them:
//!
//! * **Contiguous arena, chunk-quantized growth** — records live in one
//!   contiguous allocation (indexing is a single bounds check and load,
//!   which the member-access hot path depends on), and the arena grows
//!   by doubling, never by less than [`SLAB_CHUNK`] entries, so the
//!   steady state allocates nothing and growth work is O(1) amortized.
//! * **Free list + generations** — [`Slab::release`] returns an entry
//!   to a LIFO free list and bumps its generation; [`Slab::alloc`]
//!   pops the free list before appending. Holders of a stale
//!   `(index, generation)` handle detect reuse by comparing
//!   generations, the same self-invalidation discipline the shadow
//!   index uses for heap blocks. (The heap block table and shadow table
//!   themselves never release entries — freed-object records are
//!   retained as UAF-detection evidence — so they use the slab in
//!   append/ensure mode; the free-list mode serves metadata whose
//!   lifetime *does* end, and tooling built on top.)
//!
//! `Index`/`IndexMut`/`iter` make the slab a drop-in for the `Vec`s it
//! replaces, and [`Slab::capacity_bytes`] feeds honest `metadata_bytes`
//! accounting.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum entries reserved per growth step. 64 keeps small heaps at
/// one reservation while letting doubling take over for large ones.
pub const SLAB_CHUNK: usize = 64;

/// Free-listed, generation-tracked storage for metadata records.
#[derive(Clone)]
pub struct Slab<T> {
    data: Vec<T>,
    free: Vec<u32>,
    generations: Vec<u64>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab { data: Vec::new(), free: Vec::new(), generations: Vec::new() }
    }
}

impl<T: fmt::Debug> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.data.len())
            .field("capacity", &self.data.capacity())
            .field("free", &self.free.len())
            .finish()
    }
}

impl<T> Slab<T> {
    /// An empty slab (no storage reserved yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries ever created (live + released).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append `value`, returning its stable index. Ignores the free
    /// list — this is the append-only discipline of the block/shadow
    /// tables, where records are never recycled.
    pub fn push(&mut self, value: T) -> u32 {
        let idx = self.data.len();
        if idx == self.data.capacity() {
            // Grow by doubling, never by less than one chunk: steady
            // state allocates nothing, growth is O(1) amortized.
            let add = self.data.capacity().max(SLAB_CHUNK);
            self.data.reserve_exact(add);
            self.generations.reserve_exact(add);
        }
        self.data.push(value);
        self.generations.push(0);
        idx as u32
    }

    /// Shared access to entry `idx`, if it exists.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.data.get(idx)
    }

    /// Mutable access to entry `idx`, if it exists.
    #[inline(always)]
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.data.get_mut(idx)
    }

    /// Iterate over all entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.data.iter()
    }

    /// The entries as one contiguous slice. Hot paths that index the
    /// slab more than once borrow this first so repeated lookups
    /// compile to plain slice indexing (one pointer, fused bounds
    /// checks) instead of going through the accessor each time.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable variant of [`Slab::as_slice`].
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Bytes of backing storage: the arena's reserved capacity plus
    /// free-list and generation bookkeeping.
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.generations.capacity() * std::mem::size_of::<u64>()
    }

    /// Current generation of entry `idx` (0 for never-released entries).
    pub fn generation(&self, idx: usize) -> Option<u64> {
        self.generations.get(idx).copied()
    }
}

impl<T: Default> Slab<T> {
    /// Direct-mapped access: grow (with defaults) until `idx` exists,
    /// then return it mutably. The runtime's shadow table uses this to
    /// map heap slot ids straight to records.
    pub fn ensure(&mut self, idx: usize) -> &mut T {
        while self.data.len() <= idx {
            self.push(T::default());
        }
        &mut self[idx]
    }

    /// Take an entry from the free list (bumped-generation reuse) or
    /// append a fresh default one. Returns the entry's stable index and
    /// its current generation; a handle holding an older generation for
    /// the same index is provably stale.
    pub fn alloc(&mut self) -> (u32, u64) {
        match self.free.pop() {
            Some(idx) => {
                let i = idx as usize;
                self.data[i] = T::default();
                (idx, self.generations[i])
            }
            None => {
                let idx = self.push(T::default());
                (idx, 0)
            }
        }
    }

    /// Return entry `idx` to the free list and bump its generation so
    /// outstanding `(index, generation)` handles self-invalidate.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range. Releasing the same index twice
    /// without an intervening [`Slab::alloc`] is a logic error the
    /// generations make detectable but this method does not police.
    pub fn release(&mut self, idx: u32) {
        assert!((idx as usize) < self.data.len(), "release of untracked slab index {idx}");
        self.generations[idx as usize] += 1;
        self.free.push(idx);
    }
}

impl<T> Index<usize> for Slab<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, idx: usize) -> &T {
        self.get(idx).expect("slab index out of range")
    }
}

impl<T> IndexMut<usize> for Slab<T> {
    #[inline(always)]
    fn index_mut(&mut self, idx: usize) -> &mut T {
        self.get_mut(idx).expect("slab index out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_round_trip_across_chunks() {
        let mut slab = Slab::new();
        for i in 0..3 * SLAB_CHUNK + 5 {
            assert_eq!(slab.push(i), i as u32);
        }
        assert_eq!(slab.len(), 3 * SLAB_CHUNK + 5);
        for i in 0..slab.len() {
            assert_eq!(slab[i], i);
        }
        assert_eq!(slab.iter().copied().collect::<Vec<_>>(), (0..slab.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ensure_grows_with_defaults() {
        let mut slab: Slab<u64> = Slab::new();
        *slab.ensure(70) = 9;
        assert_eq!(slab.len(), 71);
        assert_eq!(slab[70], 9);
        assert_eq!(slab[0], 0);
        // Ensure on an existing index does not grow.
        *slab.ensure(3) = 4;
        assert_eq!(slab.len(), 71);
    }

    #[test]
    fn contents_survive_growth() {
        let mut slab = Slab::new();
        for i in 0..SLAB_CHUNK {
            slab.push(i * 3);
        }
        let before: Vec<usize> = slab.iter().copied().collect();
        for i in 0..10 * SLAB_CHUNK {
            slab.push(i);
        }
        let after: Vec<usize> = slab.iter().take(SLAB_CHUNK).copied().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn growth_is_chunk_quantized() {
        // Reservations never go below one chunk, so a one-entry slab
        // already has a chunk's worth of headroom and repeated pushes
        // within it allocate nothing further.
        let mut slab: Slab<u64> = Slab::new();
        slab.push(0);
        let cap = slab.capacity_bytes();
        for i in 1..SLAB_CHUNK {
            slab.push(i as u64);
        }
        assert_eq!(slab.capacity_bytes(), cap);
    }

    #[test]
    fn free_list_reuses_with_bumped_generation() {
        let mut slab: Slab<u32> = Slab::new();
        let (a, gen_a) = slab.alloc();
        let (b, _) = slab.alloc();
        assert_ne!(a, b);
        assert_eq!(gen_a, 0);
        slab.release(a);
        // LIFO reuse of the released entry, one generation later.
        let (c, gen_c) = slab.alloc();
        assert_eq!(c, a);
        assert_eq!(gen_c, gen_a + 1);
        // The slab did not grow: steady-state alloc/release allocates
        // nothing new.
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn stale_handles_are_detectable() {
        let mut slab: Slab<u32> = Slab::new();
        let (idx, generation) = slab.alloc();
        slab.release(idx);
        let (again, new_generation) = slab.alloc();
        assert_eq!(idx, again);
        // A holder of (idx, generation) can now prove its handle stale.
        assert_ne!(generation, slab.generation(idx as usize).unwrap());
        assert_eq!(new_generation, slab.generation(idx as usize).unwrap());
    }

    #[test]
    fn released_entries_are_reset_to_default() {
        let mut slab: Slab<u64> = Slab::new();
        let (idx, _) = slab.alloc();
        slab[idx as usize] = 0xFFFF;
        slab.release(idx);
        let (idx2, _) = slab.alloc();
        assert_eq!(idx, idx2);
        assert_eq!(slab[idx as usize], 0, "recycled entry must be clean");
    }

    #[test]
    fn capacity_bytes_counts_whole_chunks() {
        let mut slab: Slab<u64> = Slab::new();
        assert_eq!(slab.capacity_bytes(), 0);
        slab.push(1);
        assert!(slab.capacity_bytes() >= SLAB_CHUNK * std::mem::size_of::<u64>());
        let one_chunk = slab.capacity_bytes();
        for i in 0..2 * SLAB_CHUNK {
            slab.push(i as u64);
        }
        assert!(slab.capacity_bytes() > one_chunk);
    }

    #[test]
    #[should_panic(expected = "slab index out of range")]
    fn out_of_range_index_panics() {
        let slab: Slab<u8> = Slab::new();
        let _ = slab[0];
    }
}
