//! A shared, atomically-addressable byte arena.
//!
//! The local arena (`Vec<u8>`) cannot be touched from two threads at
//! once, so a published heap stores its bytes in a [`SharedArena`]
//! instead: a chunked table of `AtomicU64` words the owning shard
//! writes under its mutex (plain relaxed stores — the seqlock in
//! [`publish`](crate::publish) provides the ordering) and lock-free
//! readers load without any lock at all.
//!
//! Chunks are committed on demand through `OnceLock`, so the arena
//! never reallocates: a word's address is stable for the heap's whole
//! lifetime, which is what makes unsynchronized reader loads sound
//! (there is no `Vec` growth to race with). Byte-granular accesses are
//! decomposed into word load/merge/store sequences; tearing between
//! words is resolved by the seqlock retry protocol one layer up.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Bytes per on-demand committed chunk.
const CHUNK_BYTES: usize = 1 << 20;
const WORDS_PER_CHUNK: usize = CHUNK_BYTES / 8;

/// A growable byte arena over atomic words, shared between one writer
/// (the shard that owns the heap, serialized by the shard mutex) and
/// any number of lock-free readers.
pub(crate) struct SharedArena {
    /// On-demand committed chunks; a chunk, once committed, never moves.
    chunks: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Committed byte length (the writer's `arena_len`). Readers never
    /// consult this — they gate on chunk presence plus the seqlock.
    len: AtomicUsize,
}

impl std::fmt::Debug for SharedArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedArena")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("chunk_slots", &self.chunks.len())
            .finish()
    }
}

impl SharedArena {
    /// An arena able to commit up to `capacity` bytes.
    pub(crate) fn new(capacity: usize) -> Self {
        let chunk_slots = capacity.div_ceil(CHUNK_BYTES).max(1);
        SharedArena {
            chunks: (0..chunk_slots).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Committed byte length.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Commit chunks so that bytes `[0, new_len)` are addressable.
    /// Writer-only; newly committed bytes read as zero.
    pub(crate) fn grow_to(&self, new_len: usize) {
        for chunk in 0..new_len.div_ceil(CHUNK_BYTES) {
            self.chunks[chunk]
                .get_or_init(|| (0..WORDS_PER_CHUNK).map(|_| AtomicU64::new(0)).collect());
        }
        if new_len > self.len.load(Ordering::Relaxed) {
            self.len.store(new_len, Ordering::Release);
        }
    }

    /// The word holding byte `8 * wi`, if its chunk is committed.
    #[inline]
    fn word(&self, wi: usize) -> Option<&AtomicU64> {
        self.chunks.get(wi / WORDS_PER_CHUNK)?.get()?.get(wi % WORDS_PER_CHUNK)
    }

    #[inline]
    fn word_committed(&self, wi: usize) -> &AtomicU64 {
        self.word(wi).expect("access within the committed arena")
    }

    /// Lock-free little-endian integer load of `width` ∈ {1,2,4,8}
    /// bytes at byte offset `start`; `None` when the range touches an
    /// uncommitted chunk. Relaxed — callers order it with the seqlock.
    #[inline]
    pub(crate) fn read_uint(&self, start: usize, width: usize) -> Option<u64> {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8));
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        let shift = (start % 8) * 8;
        let lo = self.word(start / 8)?.load(Ordering::Relaxed);
        if start % 8 + width <= 8 {
            Some((lo >> shift) & mask)
        } else {
            let hi = self.word(start / 8 + 1)?.load(Ordering::Relaxed);
            Some(((lo >> shift) | (hi << (64 - shift))) & mask)
        }
    }

    /// Writer-side integer store (load-merge-store; the shard mutex
    /// excludes other writers, the seqlock orders racing readers).
    pub(crate) fn write_uint(&self, start: usize, value: u64, width: usize) {
        self.write(start, &value.to_le_bytes()[..width]);
    }

    /// Writer-side byte store.
    pub(crate) fn write(&self, start: usize, bytes: &[u8]) {
        let mut i = 0;
        while i < bytes.len() {
            let pos = start + i;
            let (wi, off) = (pos / 8, pos % 8);
            let n = (8 - off).min(bytes.len() - i);
            let word = self.word_committed(wi);
            let mut cur = word.load(Ordering::Relaxed).to_le_bytes();
            cur[off..off + n].copy_from_slice(&bytes[i..i + n]);
            word.store(u64::from_le_bytes(cur), Ordering::Relaxed);
            i += n;
        }
    }

    /// Writer-side fill.
    pub(crate) fn fill(&self, start: usize, len: usize, value: u8) {
        let mut i = 0;
        while i < len {
            let pos = start + i;
            let (wi, off) = (pos / 8, pos % 8);
            let n = (8 - off).min(len - i);
            let word = self.word_committed(wi);
            if n == 8 {
                word.store(u64::from_le_bytes([value; 8]), Ordering::Relaxed);
            } else {
                let mut cur = word.load(Ordering::Relaxed).to_le_bytes();
                cur[off..off + n].fill(value);
                word.store(u64::from_le_bytes(cur), Ordering::Relaxed);
            }
            i += n;
        }
    }

    /// Append bytes `[start, start + len)` to `out`.
    pub(crate) fn read_into(&self, start: usize, len: usize, out: &mut Vec<u8>) {
        out.reserve(len);
        let mut i = 0;
        while i < len {
            let pos = start + i;
            let (wi, off) = (pos / 8, pos % 8);
            let n = (8 - off).min(len - i);
            let cur = self.word_committed(wi).load(Ordering::Relaxed).to_le_bytes();
            out.extend_from_slice(&cur[off..off + n]);
            i += n;
        }
    }

    /// Writer-side memmove (stages through a buffer, so overlap is
    /// handled like `copy_within`).
    pub(crate) fn copy_within(&self, src: usize, dst: usize, len: usize) {
        let mut staged = Vec::with_capacity(len);
        self.read_into(src, len, &mut staged);
        self.write(dst, &staged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes_and_uints_across_word_boundaries() {
        let a = SharedArena::new(1 << 16);
        a.grow_to(256);
        a.write(3, b"hello shared arena");
        let mut out = Vec::new();
        a.read_into(3, 18, &mut out);
        assert_eq!(out, b"hello shared arena");
        // Unaligned width-8 load spanning two words.
        a.write_uint(13, 0xDEAD_BEEF_CAFE_F00D, 8);
        assert_eq!(a.read_uint(13, 8), Some(0xDEAD_BEEF_CAFE_F00D));
        assert_eq!(a.read_uint(13, 4), Some(0xCAFE_F00D));
        assert_eq!(a.read_uint(13, 1), Some(0x0D));
    }

    #[test]
    fn fill_and_copy_within_handle_partial_words() {
        let a = SharedArena::new(1 << 16);
        a.grow_to(128);
        a.fill(5, 21, 0x5A);
        let mut out = Vec::new();
        a.read_into(4, 23, &mut out);
        assert_eq!(out[0], 0);
        assert!(out[1..22].iter().all(|&b| b == 0x5A));
        assert_eq!(out[22], 0);
        a.write(40, b"abcdefgh");
        a.copy_within(40, 44, 8); // overlapping forward copy
        let mut moved = Vec::new();
        a.read_into(40, 12, &mut moved);
        assert_eq!(moved, b"abcdabcdefgh");
    }

    #[test]
    fn uncommitted_reads_are_none_and_growth_is_idempotent() {
        let a = SharedArena::new(4 << 20);
        assert_eq!(a.read_uint(0, 8), None);
        a.grow_to(64);
        a.grow_to(32); // shrink request: no-op
        assert_eq!(a.len(), 64);
        assert_eq!(a.read_uint(0, 8), Some(0));
        // Within the committed chunk but past len: still addressable.
        assert_eq!(a.read_uint(CHUNK_BYTES - 8, 8), Some(0));
        // Next chunk is uncommitted.
        assert_eq!(a.read_uint(CHUNK_BYTES, 8), None);
    }
}
