//! Simulated process heap for the POLaR reproduction.
//!
//! POLaR's security story is about what happens *inside* heap memory: stale
//! pointers dangling into reused chunks, overflows running off the end of a
//! buffer into a neighbouring object, fake objects sprayed into freed slots.
//! Reproducing that in safe Rust requires a heap we fully own. This crate
//! provides one: a byte arena addressed by plain [`Addr`] offsets, carved
//! into blocks by a segregated-freelist allocator with glibc-like
//! **immediate address reuse** — the property every use-after-free exploit
//! in the paper's threat model depends on.
//!
//! Raw [`SimHeap::read`]/[`SimHeap::write`] accesses are bounds-checked
//! against the *arena*, not against block boundaries, exactly like real
//! machine loads and stores: out-of-bounds accesses that stay inside the
//! heap succeed silently and corrupt neighbours. Checked variants
//! ([`SimHeap::read_in_block`], [`SimHeap::write_in_block`]) are available
//! for tooling that wants ASan-like precision.
//!
//! # Example
//!
//! ```
//! use polar_simheap::{HeapConfig, SimHeap};
//!
//! let mut heap = SimHeap::new(HeapConfig::default());
//! let a = heap.malloc(32)?;
//! heap.write_u64(a, 0xdead_beef)?;
//! assert_eq!(heap.read_u64(a)?, 0xdead_beef);
//! heap.free(a)?;
//! // Immediate reuse: the next same-sized allocation lands on the freed
//! // slot — the address a dangling pointer still refers to.
//! let b = heap.malloc(32)?;
//! assert_eq!(a, b);
//! # Ok::<(), polar_simheap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use polar_rng::{Rng, SplitMix64};

mod publish;
mod shared;
mod slab;

use shared::SharedArena;

pub use publish::{
    HeapPublisher, PubSnapshot, SnapshotOutcome, PUB_STATE_FREED, PUB_STATE_LIVE, PUB_STATE_NONE,
};
pub use slab::{Slab, SLAB_CHUNK};

/// A heap address: a byte offset into the arena. `0` is reserved as null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Whether this is the null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address `offset` bytes past `self`.
    ///
    /// ```
    /// use polar_simheap::Addr;
    /// assert_eq!(Addr(0x100).offset(8), Addr(0x108));
    /// ```
    pub fn offset(self, offset: u64) -> Addr {
        Addr(self.0 + offset)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Errors returned by heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The arena capacity would be exceeded.
    OutOfMemory {
        /// Requested allocation size in bytes.
        requested: usize,
    },
    /// `free` was called on an address that is not a live block base.
    InvalidFree(Addr),
    /// `free` was called twice on the same block.
    DoubleFree(Addr),
    /// A read or write fell outside the arena entirely (a wild access —
    /// the analogue of a segmentation fault).
    Fault {
        /// Faulting address.
        addr: Addr,
        /// Access length in bytes.
        len: usize,
    },
    /// A checked access crossed the boundary of its block.
    OutOfBlock {
        /// Accessed address.
        addr: Addr,
        /// Access length in bytes.
        len: usize,
    },
    /// Zero-byte allocation request.
    ZeroSize,
    /// The allocator's internal unit index lost track of a block it was
    /// about to recycle (a quarantined address with no owning slot).
    /// Surfaced as a structured error instead of a panic so callers can
    /// degrade — mirroring the sharded runtime's `ShardPoisoned`
    /// recovery — while the offending entry is dropped from the
    /// quarantine rather than recycled blind.
    IndexCorrupt(Addr),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            HeapError::InvalidFree(a) => write!(f, "invalid free of {a}"),
            HeapError::DoubleFree(a) => write!(f, "double free of {a}"),
            HeapError::Fault { addr, len } => {
                write!(f, "memory fault accessing {len} bytes at {addr}")
            }
            HeapError::OutOfBlock { addr, len } => {
                write!(f, "access of {len} bytes at {addr} crosses its block boundary")
            }
            HeapError::ZeroSize => write!(f, "zero-size allocation"),
            HeapError::IndexCorrupt(a) => {
                write!(f, "allocator index lost track of quarantined block {a}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// Lifecycle state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// The block is allocated.
    Live,
    /// The block has been freed (and possibly sits in quarantine).
    Freed,
}

/// Metadata the allocator keeps about one block (outside the arena, so
/// exploits target object data rather than allocator metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Base address of the usable block.
    pub base: Addr,
    /// Usable size in bytes (the rounded size-class size).
    pub size: usize,
    /// Requested size at allocation time.
    pub requested: usize,
    /// Current lifecycle state.
    pub state: BlockState,
    /// Monotonic allocation generation; bumped each time the slot is
    /// handed out again. Lets tooling tell "same address, new object".
    pub generation: u64,
}

/// Placement-randomization policy: address-space entropy layered on the
/// allocator, complementing POLaR's intra-object layout entropy.
///
/// The default (all knobs zero) disables the layer entirely and keeps
/// the heap's address sequence bit-for-bit identical to the historical
/// deterministic allocator — LIFO free lists, sequential `grow`, FIFO
/// quarantine — which many tests and the exploit scenarios rely on.
///
/// With any knob non-zero the heap draws from its own seeded SplitMix64
/// stream (`seed`), so placement stays a pure function of the
/// configuration: same seed, same op sequence, same addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementPolicy {
    /// Capacity of the per-size-class shuffle buffer sitting in front of
    /// each free list (shuffling-allocator style). Frees insert into the
    /// buffer and evict a random held-back block; allocations swap the
    /// popped block with a random buffered one. `0` = no buffer.
    pub shuffle_depth: usize,
    /// Entropy bits of the one-time arena slide: the first block's base
    /// is offset by `uniform(0 .. 2^bits)` alignment units, an
    /// ASLR-style displacement of the whole address sequence. `0` = the
    /// arena starts at its fixed historical base.
    pub offset_entropy_bits: u32,
    /// Entropy bits of the per-block guard gap: `grow` skips
    /// `uniform(0 .. 2^bits)` unowned alignment units before each carved
    /// block, so inter-object deltas vary block to block. `0` = packed.
    pub guard_gap_bits: u32,
    /// Seed of the heap's placement RNG stream. Callers that want
    /// replayable placement derive this from their process seed (the
    /// runtime uses a salted SplitMix64 stream per heap/shard).
    pub seed: u64,
}

impl PlacementPolicy {
    /// Whether any placement randomization is active.
    pub fn enabled(&self) -> bool {
        self.shuffle_depth > 0 || self.offset_entropy_bits > 0 || self.guard_gap_bits > 0
    }

    /// Total placement entropy in bits for one allocation, in the ASLR
    /// accounting style: log2 of the number of equally-likely choices
    /// each mechanism contributes (buffer pick, arena slide, guard gap).
    pub fn entropy_bits(&self) -> f64 {
        let shuffle = if self.shuffle_depth > 1 { (self.shuffle_depth as f64).log2() } else { 0.0 };
        shuffle + f64::from(self.offset_entropy_bits) + f64::from(self.guard_gap_bits)
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Maximum arena size in bytes.
    pub capacity: usize,
    /// Number of freed blocks to hold back before reuse (0 = immediate
    /// reuse, the default and the exploit-friendly glibc-like behaviour;
    /// larger values model ASan-style quarantine).
    pub quarantine: usize,
    /// Byte written over freed blocks (`None` leaves stale data in place,
    /// which is what makes use-after-free *reads* informative).
    pub poison: Option<u8>,
    /// Zero-fill fresh allocations (calloc-like). Off by default: malloc
    /// returns whatever the previous occupant left behind.
    pub zero_on_alloc: bool,
    /// Redzone gap in bytes left unowned after every block (0 = packed,
    /// the default; ASan-style defenses set this so linear overflows walk
    /// into no-man's-land before reaching the neighbour).
    pub redzone: usize,
    /// First address of this heap's arena (0 = the default, standalone
    /// heap). A sharded runtime gives each shard a disjoint
    /// `[arena_base, arena_base + capacity)` window so any address names
    /// its owning shard by simple division; accesses below `arena_base`
    /// fault just like accesses past the arena end.
    pub arena_base: u64,
    /// Placement randomization (shuffle buffers, arena slide, guard
    /// gaps). Disabled by default: addresses stay deterministic.
    pub placement: PlacementPolicy,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            capacity: 64 << 20,
            quarantine: 0,
            poison: None,
            zero_on_alloc: false,
            redzone: 0,
            arena_base: 0,
            placement: PlacementPolicy::default(),
        }
    }
}

/// Running allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Allocations satisfied by reusing a freed slot.
    pub reuses: u64,
    /// Bytes currently allocated (usable sizes).
    pub bytes_live: usize,
    /// High-water mark of `bytes_live`.
    pub bytes_peak: usize,
}

pub(crate) const ALIGN: usize = 16;
const SIZE_CLASSES: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Backing storage for the arena bytes: a plain `Vec<u8>` for ordinary
/// single-threaded heaps (zero overhead on the existing hot paths), or
/// a [`SharedArena`] of atomic words for published heaps whose bytes
/// lock-free readers may load concurrently.
#[derive(Debug, Clone)]
enum ArenaStore {
    Local(Vec<u8>),
    Shared(Arc<SharedArena>),
}

impl ArenaStore {
    #[inline]
    fn len(&self) -> usize {
        match self {
            ArenaStore::Local(v) => v.len(),
            ArenaStore::Shared(a) => a.len(),
        }
    }

    fn grow_to(&mut self, new_len: usize) {
        match self {
            ArenaStore::Local(v) => v.resize(new_len, 0),
            ArenaStore::Shared(a) => a.grow_to(new_len),
        }
    }

    fn fill(&mut self, start: usize, len: usize, value: u8) {
        match self {
            ArenaStore::Local(v) => v[start..start + len].fill(value),
            ArenaStore::Shared(a) => a.fill(start, len, value),
        }
    }

    fn write(&mut self, start: usize, bytes: &[u8]) {
        match self {
            ArenaStore::Local(v) => v[start..start + bytes.len()].copy_from_slice(bytes),
            ArenaStore::Shared(a) => a.write(start, bytes),
        }
    }

    fn read_into(&self, start: usize, len: usize, out: &mut Vec<u8>) {
        match self {
            ArenaStore::Local(v) => out.extend_from_slice(&v[start..start + len]),
            ArenaStore::Shared(a) => a.read_into(start, len, out),
        }
    }

    #[inline]
    fn read_uint(&self, start: usize, width: usize) -> u64 {
        match self {
            ArenaStore::Local(v) => {
                let mut buf = [0u8; 8];
                buf[..width].copy_from_slice(&v[start..start + width]);
                u64::from_le_bytes(buf)
            }
            ArenaStore::Shared(a) => {
                a.read_uint(start, width).expect("access within the committed arena")
            }
        }
    }

    fn write_uint(&mut self, start: usize, value: u64, width: usize) {
        match self {
            ArenaStore::Local(v) => {
                v[start..start + width].copy_from_slice(&value.to_le_bytes()[..width]);
            }
            ArenaStore::Shared(a) => a.write_uint(start, value, width),
        }
    }

    fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        match self {
            ArenaStore::Local(v) => v.copy_within(src..src + len, dst),
            ArenaStore::Shared(a) => a.copy_within(src, dst, len),
        }
    }

    /// A borrowed byte slice — only the local store can hand one out.
    #[inline]
    fn local_slice(&self, start: usize, end: usize) -> Option<&[u8]> {
        match self {
            ArenaStore::Local(v) => Some(&v[start..end]),
            ArenaStore::Shared(_) => None,
        }
    }
}

fn size_class(size: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| size <= c)
}

/// Largest size class whose blocks a span of `size` bytes can serve, for
/// routing *released* spans back to a pool. Inverse-ish of
/// [`size_class`]: an exact class size maps to its own class, a
/// class-aligned-but-not-exact span (e.g. a best-fit remnant) maps to
/// the largest class it still covers instead of leaking to `large_free`.
fn release_class(size: usize) -> Option<usize> {
    if size > SIZE_CLASSES[SIZE_CLASSES.len() - 1] {
        return None;
    }
    SIZE_CLASSES.iter().rposition(|&c| c <= size)
}

/// Entropy draws are clamped to this many bits so a misconfigured policy
/// cannot demand multi-gigabyte slides or gaps.
const MAX_PLACEMENT_BITS: u32 = 16;

fn placement_mask(bits: u32) -> u64 {
    (1u64 << bits.min(MAX_PLACEMENT_BITS)) - 1
}

/// The simulated heap: arena + segregated freelists + block table.
///
/// Block metadata lives in two dense structures instead of a hashtable
/// (the shadow-index optimization of the hot-path overhaul): `slots` is
/// an append-only table of [`BlockInfo`] records — one per distinct base
/// address the allocator has ever handed out, identified by a stable
/// **slot id** — and `index` maps every [`ALIGN`]-sized arena unit to
/// the slot covering it (`0` = unowned: never allocated, or a redzone
/// gap). Every metadata lookup, base-exact or interior, is therefore a
/// constant-time array read, and the POLaR runtime reuses the same slot
/// ids to index its own object-metadata shadow table.
#[derive(Debug, Clone)]
pub struct SimHeap {
    store: ArenaStore,
    config: HeapConfig,
    free_lists: [Vec<u64>; SIZE_CLASSES.len()],
    large_free: Vec<(u64, usize)>,
    quarantine: VecDeque<Addr>,
    /// Dense block table, indexed by slot id; entries are never removed
    /// (freed blocks keep their record, exactly like the old hashtable).
    /// Chunked [`Slab`] storage: growth appends a fixed-size chunk
    /// instead of reallocating and copying every record, so malloc never
    /// pays an O(slots) copy spike.
    slots: Slab<BlockInfo>,
    /// `addr / ALIGN → slot id + 1` for every unit a block covers.
    index: Vec<u32>,
    /// Per-size-class shuffle buffers: freed blocks held back from their
    /// free list and released in random order
    /// ([`PlacementPolicy::shuffle_depth`]). Blocks in here are `Freed`,
    /// exactly like free-list entries; empty when shuffling is off.
    shuffle: [Vec<u64>; SIZE_CLASSES.len()],
    /// Seeded stream every placement decision draws from; never advanced
    /// when the placement policy is fully disabled.
    placement_rng: SplitMix64,
    stats: HeapStats,
    /// Publication side-table for lock-free readers; `None` for
    /// ordinary (local, single-threaded) heaps.
    publisher: Option<Arc<HeapPublisher>>,
}

impl SimHeap {
    /// Create a heap with the given configuration. Address `0` is never
    /// handed out; the arena starts with one reserved alignment unit
    /// (plus the one-time placement slide when
    /// [`PlacementPolicy::offset_entropy_bits`] is set).
    pub fn new(config: HeapConfig) -> Self {
        let (rng, extent) = Self::placement_init(&config);
        SimHeap {
            store: ArenaStore::Local(vec![0; extent]),
            config,
            free_lists: Default::default(),
            large_free: Vec::new(),
            quarantine: VecDeque::new(),
            slots: Slab::new(),
            index: vec![0],
            shuffle: Default::default(),
            placement_rng: rng,
            stats: HeapStats::default(),
            publisher: None,
        }
    }

    /// The placement RNG plus the initial arena extent: one reserved
    /// alignment unit, slid by `uniform(0 .. 2^offset_entropy_bits)`
    /// units when offset entropy is on (never past half the capacity).
    fn placement_init(config: &HeapConfig) -> (SplitMix64, usize) {
        let mut rng = SplitMix64::new(config.placement.seed);
        let mut extent = ALIGN;
        if config.placement.offset_entropy_bits > 0 {
            let units = rng.next_u64() & placement_mask(config.placement.offset_entropy_bits);
            extent = (ALIGN + units as usize * ALIGN).min((config.capacity / 2).max(ALIGN));
        }
        (rng, extent)
    }

    /// Create a **published** heap: arena bytes live in a shared atomic
    /// store and block metadata is mirrored through a [`HeapPublisher`]
    /// seqlock table, so other threads can read fields and snapshots
    /// without this heap's owner lock. Mutation still requires `&mut
    /// self` (the owner serializes writers); the publisher orders the
    /// racing readers.
    ///
    /// Borrowing reads ([`SimHeap::read`], [`SimHeap::read_in_block`])
    /// panic on a published heap — use [`SimHeap::read_vec`],
    /// [`SimHeap::read_into`], [`SimHeap::read_uint`] and
    /// [`SimHeap::check_in_block`] instead.
    pub fn new_published(config: HeapConfig) -> Self {
        let publisher = Arc::new(HeapPublisher::new(config.capacity, config.arena_base));
        let arena = publisher.arena_handle();
        let (rng, extent) = Self::placement_init(&config);
        arena.grow_to(extent);
        SimHeap {
            store: ArenaStore::Shared(arena),
            config,
            free_lists: Default::default(),
            large_free: Vec::new(),
            quarantine: VecDeque::new(),
            slots: Slab::new(),
            index: vec![0],
            shuffle: Default::default(),
            placement_rng: rng,
            stats: HeapStats::default(),
            publisher: Some(publisher),
        }
    }

    /// The publication side-table, when this heap is published.
    pub fn publisher(&self) -> Option<&Arc<HeapPublisher>> {
        self.publisher.as_ref()
    }

    /// Open a seqlock writer window on `slot` (no-op `None` for
    /// unpublished heaps or out-of-coverage slots). Callers bracketing
    /// their own multi-store mutations (the object runtime's metadata
    /// records) pass the token back to [`SimHeap::pub_close`].
    pub fn pub_open(&self, slot: u32) -> Option<u64> {
        self.publisher.as_ref().and_then(|p| p.open(slot))
    }

    /// Close a window opened by [`SimHeap::pub_open`].
    pub fn pub_close(&self, slot: u32, token: Option<u64>) {
        if let (Some(p), Some(token)) = (&self.publisher, token) {
            p.close(slot, token);
        }
    }

    /// The configuration this heap was built with.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Current arena extent in bytes (grows on demand up to capacity).
    /// This is the *local* extent: the heap owns addresses
    /// `[arena_base, arena_base + arena_len)`.
    pub fn arena_len(&self) -> usize {
        self.store.len()
    }

    /// Local arena offset of a global address; `None` below `arena_base`.
    #[inline]
    fn local(&self, addr: Addr) -> Option<u64> {
        addr.0.checked_sub(self.config.arena_base)
    }

    /// Allocate `size` bytes, rounded up to a size class.
    ///
    /// Freed slots of the same class are reused in LIFO order, matching
    /// the immediate-reuse behaviour exploits rely on — unless a
    /// [`PlacementPolicy`] shuffle buffer is configured, in which case
    /// the reused slot is swapped with a random held-back block first.
    /// Oversize requests best-fit the `large_free` pool: the smallest
    /// span that covers the request is reused whole.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSize`] for `size == 0`;
    /// [`HeapError::OutOfMemory`] when the arena capacity is exhausted.
    pub fn malloc(&mut self, size: usize) -> Result<Addr, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        let (base, usable) = match size_class(size) {
            Some(class) => {
                let usable = SIZE_CLASSES[class];
                let popped = self.free_lists[class].pop();
                let base = if !self.shuffle[class].is_empty() {
                    // Shuffle swap: the block actually handed out comes
                    // from a random buffer slot; the freshly popped one
                    // (if any) takes its place for a later allocation.
                    let pick = (self.placement_rng.next_u64()
                        % self.shuffle[class].len() as u64)
                        as usize;
                    Some(match popped {
                        Some(base) => std::mem::replace(&mut self.shuffle[class][pick], base),
                        None => self.shuffle[class].swap_remove(pick),
                    })
                } else {
                    popped
                };
                match base {
                    Some(base) => (base, usable),
                    None => (self.grow(usable)?, usable),
                }
            }
            None => {
                let usable = round_up(size, ALIGN);
                // Best fit: the smallest free span that covers the
                // request, so a 4 KB ask can no longer absorb a 64 KB
                // block that a later large request would then miss.
                let fit = self
                    .large_free
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(_, free_size))| free_size >= usable)
                    .min_by_key(|&(_, &(_, free_size))| free_size)
                    .map(|(pos, _)| pos);
                if let Some(pos) = fit {
                    let (base, free_size) = self.large_free.swap_remove(pos);
                    (base, free_size)
                } else {
                    (self.grow(usable)?, usable)
                }
            }
        };
        let addr = Addr(base);
        let start = (base - self.config.arena_base) as usize;
        let span = match self.slot_of_base(addr) {
            Some(slot) => {
                // Reused slot: same base, same span — bump the generation.
                // The generation bump and the zero-fill race concurrent
                // readers of a published heap, so both sit inside one
                // seqlock window; the bump also orphans any still-mirrored
                // object metadata (meta_gen falls behind heap_gen).
                self.stats.reuses += 1;
                let win = self.pub_open(slot as u32);
                let info = &mut self.slots[slot];
                // The slot's recorded span is authoritative — it can
                // exceed the class size when a best-fit or re-pooled
                // span serves a smaller request.
                let span = info.size;
                info.requested = size;
                info.state = BlockState::Live;
                info.generation += 1;
                let generation = info.generation;
                if let Some(p) = &self.publisher {
                    p.mirror_heap_gen(slot as u32, generation);
                }
                if self.config.zero_on_alloc {
                    self.store.fill(start, span, 0);
                }
                self.pub_close(slot as u32, win);
                span
            }
            None => {
                let slot = self.slots.push(BlockInfo {
                    base: addr,
                    size: usable,
                    requested: size,
                    state: BlockState::Live,
                    generation: 1,
                });
                let first = start / ALIGN;
                let last = first + usable.div_ceil(ALIGN);
                if self.index.len() < last {
                    self.index.resize(last, 0);
                }
                for unit in &mut self.index[first..last] {
                    *unit = slot + 1;
                }
                if self.config.zero_on_alloc {
                    self.store.fill(start, usable, 0);
                }
                // Fresh block: initialize the mirror *before* the unit
                // index points at it — no reader can observe the slot
                // until the Release unit stores land, so no window is
                // needed.
                if let Some(p) = &self.publisher {
                    p.init_slot(slot, base, 1);
                    p.publish_units(first, last, slot);
                }
                usable
            }
        };
        self.stats.allocs += 1;
        self.stats.bytes_live += span;
        self.stats.bytes_peak = self.stats.bytes_peak.max(self.stats.bytes_live);
        Ok(addr)
    }

    /// Reserve up to `k` blocks of `size` bytes in one call, appending
    /// the bases to `out`. This is the magazine-refill primitive: the
    /// caller pays one lock acquisition (and the publication windows it
    /// covers) for `k` reservations instead of `k` round-trips.
    ///
    /// Returns the number of blocks actually reserved. Exhaustion
    /// mid-batch is not an error — the partial batch is returned and
    /// the caller retries later — but a first-allocation failure
    /// surfaces the underlying error so out-of-memory is not silently
    /// reported as an empty refill.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSize`] for `size == 0`; any [`SimHeap::malloc`]
    /// error when not even one block could be reserved.
    pub fn malloc_batch(
        &mut self,
        size: usize,
        k: usize,
        out: &mut Vec<Addr>,
    ) -> Result<usize, HeapError> {
        let mut reserved = 0;
        while reserved < k {
            match self.malloc(size) {
                Ok(addr) => {
                    out.push(addr);
                    reserved += 1;
                }
                Err(err) if reserved == 0 => return Err(err),
                Err(_) => break,
            }
        }
        Ok(reserved)
    }

    fn grow(&mut self, usable: usize) -> Result<u64, HeapError> {
        let mut base = self.store.len();
        if self.config.placement.guard_gap_bits > 0 {
            // Randomized guard gap: unowned alignment units between this
            // block and its predecessor. Like a redzone the units keep
            // index entry 0, so checked accesses into the gap report
            // OutOfBlock; unlike the fixed redzone the inter-block
            // distance now varies per block.
            let units = self.placement_rng.next_u64()
                & placement_mask(self.config.placement.guard_gap_bits);
            base += units as usize * ALIGN;
        }
        let new_len = base + usable + round_up(self.config.redzone, ALIGN);
        if new_len > self.config.capacity {
            return Err(HeapError::OutOfMemory { requested: usable });
        }
        self.store.grow_to(new_len);
        Ok(self.config.arena_base + base as u64)
    }

    /// Free a block previously returned by [`SimHeap::malloc`].
    ///
    /// With `quarantine == 0` the slot becomes immediately reusable.
    /// When placement randomization is on, quarantine eviction picks a
    /// random entry instead of the FIFO head, so the release order leaks
    /// nothing about the free order.
    ///
    /// # Errors
    ///
    /// [`HeapError::DoubleFree`] when the block is already freed;
    /// [`HeapError::InvalidFree`] for any address that is not a live block
    /// base; [`HeapError::IndexCorrupt`] when a quarantined block about
    /// to be recycled no longer has an owning slot (the block itself was
    /// freed successfully; the corrupt entry is dropped, not recycled).
    pub fn free(&mut self, addr: Addr) -> Result<(), HeapError> {
        let slot = match self.slot_of_base(addr) {
            Some(slot) => slot,
            None => return Err(HeapError::InvalidFree(addr)),
        };
        match self.slots[slot].state {
            BlockState::Freed => return Err(HeapError::DoubleFree(addr)),
            BlockState::Live => {}
        }
        // The state flip and the poison fill are one atomic event to a
        // racing lock-free reader: window them together.
        let win = self.pub_open(slot as u32);
        self.slots[slot].state = BlockState::Freed;
        let size = self.slots[slot].size;
        if let Some(poison) = self.config.poison {
            let start = (addr.0 - self.config.arena_base) as usize;
            self.store.fill(start, size, poison);
        }
        self.pub_close(slot as u32, win);
        self.stats.frees += 1;
        self.stats.bytes_live -= size;
        if self.config.quarantine == 0 {
            // Immediate reuse (the default): the block just freed is the
            // one released — skip the deque round-trip and the second
            // slot lookup it would cost on every free.
            self.release_to_free_list(addr, size);
            return Ok(());
        }
        self.quarantine.push_back(addr);
        while self.quarantine.len() > self.config.quarantine {
            let pick = if self.config.placement.enabled() && self.quarantine.len() > 1 {
                (self.placement_rng.next_u64() % self.quarantine.len() as u64) as usize
            } else {
                0
            };
            let released = self.quarantine.remove(pick).expect("non-empty");
            let released_size = match self.slot_of_base(released) {
                Some(slot) => self.slots[slot].size,
                // The unit index no longer maps this base to a slot:
                // metadata corruption. Drop the entry (recycling it
                // blind could alias a live block) and surface the
                // error instead of panicking.
                None => return Err(HeapError::IndexCorrupt(released)),
            };
            self.release_to_free_list(released, released_size);
        }
        Ok(())
    }

    /// Hand a (no longer quarantined) block back to its free list — or,
    /// when a shuffle buffer is configured, hold it back and release a
    /// random previously-buffered block in its place.
    #[inline]
    fn release_to_free_list(&mut self, released: Addr, released_size: usize) {
        match release_class(released_size) {
            Some(class) => {
                let depth = self.config.placement.shuffle_depth;
                if depth > 0 {
                    if self.shuffle[class].len() < depth {
                        // Buffer not yet full: hold the block back; it
                        // only becomes reusable via a random swap.
                        self.shuffle[class].push(released.0);
                        return;
                    }
                    let pick =
                        (self.placement_rng.next_u64() % depth as u64) as usize;
                    let evicted =
                        std::mem::replace(&mut self.shuffle[class][pick], released.0);
                    self.free_lists[class].push(evicted);
                } else {
                    self.free_lists[class].push(released.0);
                }
            }
            None => self.large_free.push((released.0, released_size)),
        }
    }

    /// Snapshot of the reuse pools — per-class free lists, the
    /// `large_free` spans, and the shuffle-buffer contents — for
    /// invariant checks (property tests assert the pools are disjoint
    /// and only ever hold freed blocks). Not a stable API.
    #[doc(hidden)]
    pub fn free_pool_snapshot(&self) -> (Vec<Vec<u64>>, Vec<(u64, usize)>, Vec<u64>) {
        (
            self.free_lists.iter().cloned().collect(),
            self.large_free.clone(),
            self.shuffle.iter().flatten().copied().collect(),
        )
    }

    /// Slot id covering `addr` (any interior byte), if a block owns it.
    #[inline]
    fn slot_containing(&self, addr: Addr) -> Option<usize> {
        let unit = (self.local(addr)? as usize) / ALIGN;
        match self.index.get(unit) {
            Some(&raw) if raw != 0 => Some(raw as usize - 1),
            _ => None,
        }
    }

    /// Slot id when `addr` is exactly a block base.
    #[inline]
    fn slot_of_base(&self, addr: Addr) -> Option<usize> {
        let slot = self.slot_containing(addr)?;
        (self.slots.as_slice().get(slot)?.base == addr).then_some(slot)
    }

    /// Stable dense slot id and current allocation generation for a block
    /// base address. O(1); `None` when `addr` is not a block base.
    ///
    /// A base address keeps one slot id for the heap's whole lifetime
    /// (slots are never merged or split), and the generation increments
    /// on every reallocation of the slot — together they let external
    /// shadow tables (the POLaR runtime's object metadata) index by slot
    /// and self-invalidate stale entries by generation instead of
    /// explicitly removing them.
    #[inline]
    pub fn slot_gen(&self, addr: Addr) -> Option<(u32, u64)> {
        // One slice borrow serves both the base check and the generation
        // load — this is the member-access hot path.
        let slots = self.slots.as_slice();
        let slot = self.slot_containing(addr)?;
        let info = slots.get(slot)?;
        (info.base == addr).then(|| (slot as u32, info.generation))
    }

    /// Number of distinct block slots ever created (freed slots included).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of allocator metadata: the block-table slab (whole chunks)
    /// plus the arena-unit index. Feeds overhead accounting so metadata
    /// tables are not invisibly free.
    pub fn metadata_bytes(&self) -> usize {
        self.slots.capacity_bytes()
            + self.index.capacity() * std::mem::size_of::<u32>()
            + self.shuffle.iter().map(|b| b.capacity() * std::mem::size_of::<u64>()).sum::<usize>()
            + self.publisher.as_ref().map_or(0, |p| p.metadata_bytes())
    }

    /// Block metadata for the block *containing* `addr`, if any. O(1)
    /// through the arena-unit index.
    ///
    /// This is a diagnostic/tooling interface (the runtime and sanitizers
    /// use it); ordinary program accesses never consult it.
    pub fn block_containing(&self, addr: Addr) -> Option<BlockInfo> {
        self.slot_containing(addr).map(|slot| self.slots[slot])
    }

    /// Block metadata when `addr` is exactly a block base. O(1).
    pub fn block_at(&self, addr: Addr) -> Option<BlockInfo> {
        self.slot_of_base(addr).map(|slot| self.slots[slot])
    }

    /// Block metadata by dense slot id (the id [`SimHeap::slot_gen`]
    /// returns and the publication mirror indexes by). O(1); `None` for
    /// ids never handed out. Remote-free intake uses this to map a
    /// drained slot index back to its block base.
    pub fn block_by_slot(&self, slot: u32) -> Option<BlockInfo> {
        self.slots.as_slice().get(slot as usize).copied()
    }

    fn check_range(&self, addr: Addr, len: usize) -> Result<(usize, usize), HeapError> {
        let start = self.local(addr).ok_or(HeapError::Fault { addr, len })? as usize;
        let end = start.checked_add(len).ok_or(HeapError::Fault { addr, len })?;
        if addr.is_null() || end > self.store.len() || len == 0 {
            return Err(HeapError::Fault { addr, len });
        }
        Ok((start, end))
    }

    /// Read `len` bytes at `addr`. Bounds-checked against the arena only —
    /// reads that stray out of their block but stay inside the heap
    /// succeed, exactly like real out-of-bounds reads.
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] when the range leaves the arena or `addr` is
    /// null.
    ///
    /// # Panics
    ///
    /// Panics on a published heap, whose atomic arena cannot hand out
    /// byte borrows — use [`SimHeap::read_vec`], [`SimHeap::read_into`]
    /// or [`SimHeap::read_uint`] there.
    pub fn read(&self, addr: Addr, len: usize) -> Result<&[u8], HeapError> {
        let (start, end) = self.check_range(addr, len)?;
        match self.store.local_slice(start, end) {
            Some(slice) => Ok(slice),
            None => panic!(
                "SimHeap::read borrows the local arena; published heaps must use \
                 read_vec/read_into/read_uint"
            ),
        }
    }

    /// Read `len` bytes at `addr` into a fresh buffer (works on both
    /// local and published heaps; same bounds policy as
    /// [`SimHeap::read`]).
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::read`].
    pub fn read_vec(&self, addr: Addr, len: usize) -> Result<Vec<u8>, HeapError> {
        let mut out = Vec::with_capacity(len);
        self.read_into(addr, len, &mut out)?;
        Ok(out)
    }

    /// Append `len` bytes at `addr` to `out` (works on both local and
    /// published heaps; same bounds policy as [`SimHeap::read`]).
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::read`].
    pub fn read_into(&self, addr: Addr, len: usize, out: &mut Vec<u8>) -> Result<(), HeapError> {
        let (start, _) = self.check_range(addr, len)?;
        self.store.read_into(start, len, out);
        Ok(())
    }

    /// Write `bytes` at `addr` with the same (arena-only) bounds policy as
    /// [`SimHeap::read`].
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] when the range leaves the arena or `addr` is
    /// null.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        let (start, _) = self.check_range(addr, bytes.len())?;
        self.store.write(start, bytes);
        Ok(())
    }

    /// Read an unsigned little-endian integer of `width` ∈ {1,2,4,8} bytes.
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::read`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid width {width}");
        let (start, _) = self.check_range(addr, width)?;
        Ok(self.store.read_uint(start, width))
    }

    /// Write the low `width` bytes of `value` little-endian at `addr`.
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::write`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: Addr, value: u64, width: usize) -> Result<(), HeapError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid width {width}");
        let (start, _) = self.check_range(addr, width)?;
        self.store.write_uint(start, value, width);
        Ok(())
    }

    /// Convenience: read a full 8-byte word.
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::read`].
    pub fn read_u64(&self, addr: Addr) -> Result<u64, HeapError> {
        self.read_uint(addr, 8)
    }

    /// Convenience: write a full 8-byte word.
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] as for [`SimHeap::write`].
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), HeapError> {
        self.write_uint(addr, value, 8)
    }

    /// The block-boundary check behind [`SimHeap::read_in_block`] /
    /// [`SimHeap::write_in_block`], usable on its own (and on published
    /// heaps, which cannot hand out the borrowing read): the access
    /// must land in a live block and stay inside it.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBlock`] when the access crosses its block, is
    /// in no block, or the block is freed; [`HeapError::Fault`] when
    /// the range leaves the arena.
    pub fn check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        let block = self.block_containing(addr).ok_or(
            // Inside the arena but in no block: a redzone/quarantine hit.
            if self.local(addr).is_some_and(|l| (l as usize) < self.store.len())
                && !addr.is_null()
            {
                HeapError::OutOfBlock { addr, len }
            } else {
                HeapError::Fault { addr, len }
            },
        )?;
        if block.state == BlockState::Freed {
            // Sanitizer semantics: freed memory is poisoned.
            return Err(HeapError::OutOfBlock { addr, len });
        }
        if addr.0 + len as u64 > block.base.0 + block.size as u64 {
            return Err(HeapError::OutOfBlock { addr, len });
        }
        self.check_range(addr, len).map(|_| ())
    }

    /// Checked read that must stay inside the block containing `addr`
    /// (ASan-like precision, used by sanitizer tooling and tests).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBlock`] when the access crosses its block, plus
    /// the [`HeapError::Fault`] cases of [`SimHeap::read`].
    ///
    /// # Panics
    ///
    /// Panics on a published heap (see [`SimHeap::read`]); use
    /// [`SimHeap::check_in_block`] + [`SimHeap::read_vec`] there.
    pub fn read_in_block(&self, addr: Addr, len: usize) -> Result<&[u8], HeapError> {
        self.check_in_block(addr, len)?;
        self.read(addr, len)
    }

    /// Checked write equivalent of [`SimHeap::read_in_block`].
    ///
    /// # Errors
    ///
    /// As for [`SimHeap::read_in_block`].
    pub fn write_in_block(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        self.check_in_block(addr, bytes.len())?;
        self.write(addr, bytes)
    }

    /// Copy `len` bytes from `src` to `dst` (memmove semantics: overlap is
    /// handled correctly).
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] when either range leaves the arena.
    pub fn memmove(&mut self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        let (s_start, _) = self.check_range(src, len)?;
        let (d_start, _) = self.check_range(dst, len)?;
        self.store.copy_within(s_start, d_start, len);
        Ok(())
    }

    /// Fill `len` bytes at `addr` with `value` (memset semantics).
    ///
    /// # Errors
    ///
    /// [`HeapError::Fault`] when the range leaves the arena.
    pub fn memset(&mut self, addr: Addr, value: u8, len: usize) -> Result<(), HeapError> {
        let (start, _) = self.check_range(addr, len)?;
        self.store.fill(start, len, value);
        Ok(())
    }

    /// Iterate over all blocks the allocator knows about (live and freed).
    pub fn blocks(&self) -> impl Iterator<Item = &BlockInfo> {
        self.slots.iter()
    }
}

fn round_up(value: usize, to: usize) -> usize {
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SimHeap {
        SimHeap::new(HeapConfig::default())
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut h = heap();
        let mut spans = Vec::new();
        for size in [1, 16, 17, 100, 4096, 5000] {
            let a = h.malloc(size).unwrap();
            assert_eq!(a.0 % ALIGN as u64, 0, "misaligned at {a}");
            let b = h.block_at(a).unwrap();
            spans.push((a.0, a.0 + b.size as u64));
        }
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
    }

    #[test]
    fn null_is_never_returned() {
        let mut h = heap();
        let a = h.malloc(8).unwrap();
        assert!(!a.is_null());
    }

    #[test]
    fn lifo_reuse_of_freed_slot() {
        let mut h = heap();
        let a = h.malloc(48).unwrap();
        let _keep = h.malloc(48).unwrap();
        h.free(a).unwrap();
        let b = h.malloc(40).unwrap(); // same size class (64)
        assert_eq!(a, b, "freed slot should be reused immediately");
        assert_eq!(h.stats().reuses, 1);
        assert_eq!(h.block_at(b).unwrap().generation, 2);
    }

    #[test]
    fn quarantine_delays_reuse() {
        let mut h = SimHeap::new(HeapConfig { quarantine: 2, ..HeapConfig::default() });
        let a = h.malloc(32).unwrap();
        h.free(a).unwrap();
        let b = h.malloc(32).unwrap();
        assert_ne!(a, b, "quarantined slot must not be reused yet");
        // Push two more frees through to evict `a` from quarantine.
        let c = h.malloc(32).unwrap();
        h.free(b).unwrap();
        h.free(c).unwrap();
        let d = h.malloc(32).unwrap();
        assert_eq!(d, a, "evicted slot becomes reusable");
    }

    #[test]
    fn double_free_and_invalid_free_are_detected() {
        let mut h = heap();
        let a = h.malloc(8).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::DoubleFree(a)));
        assert_eq!(h.free(Addr(12345)), Err(HeapError::InvalidFree(Addr(12345))));
    }

    #[test]
    fn zero_size_is_rejected() {
        assert_eq!(heap().malloc(0), Err(HeapError::ZeroSize));
    }

    #[test]
    fn stale_data_survives_free_by_default() {
        let mut h = heap();
        let a = h.malloc(16).unwrap();
        h.write_u64(a, 0x4141_4141).unwrap();
        h.free(a).unwrap();
        // The UAF read still sees the old contents.
        assert_eq!(h.read_u64(a).unwrap(), 0x4141_4141);
    }

    #[test]
    fn poison_overwrites_freed_data() {
        let mut h = SimHeap::new(HeapConfig { poison: Some(0xDD), ..HeapConfig::default() });
        let a = h.malloc(16).unwrap();
        h.write_u64(a, 0x4141_4141).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.read(a, 2).unwrap(), &[0xDD, 0xDD]);
    }

    #[test]
    fn zero_on_alloc_clears_recycled_memory() {
        let mut h = SimHeap::new(HeapConfig { zero_on_alloc: true, ..HeapConfig::default() });
        let a = h.malloc(16).unwrap();
        h.write_u64(a, u64::MAX).unwrap();
        h.free(a).unwrap();
        let b = h.malloc(16).unwrap();
        assert_eq!(a, b);
        assert_eq!(h.read_u64(b).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_write_corrupts_neighbour() {
        let mut h = heap();
        let a = h.malloc(16).unwrap();
        let b = h.malloc(16).unwrap();
        h.write_u64(b, 7).unwrap();
        // Overflow from `a`: crosses into `b` silently.
        let delta = b.0 - a.0;
        h.write(a, &vec![0x41; (delta + 8) as usize]).unwrap();
        assert_eq!(h.read_u64(b).unwrap(), 0x4141_4141_4141_4141);
    }

    #[test]
    fn wild_access_faults() {
        let h = heap();
        let err = h.read(Addr(1 << 40), 8).unwrap_err();
        assert!(matches!(err, HeapError::Fault { .. }));
        assert!(matches!(h.read(Addr::NULL, 8).unwrap_err(), HeapError::Fault { .. }));
    }

    #[test]
    fn checked_access_detects_overflow() {
        let mut h = heap();
        let a = h.malloc(16).unwrap();
        let _b = h.malloc(16).unwrap();
        assert!(h.read_in_block(a, 16).is_ok());
        assert!(matches!(
            h.read_in_block(a, 17).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
        assert!(matches!(
            h.write_in_block(a.offset(10), &[0; 8]).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
    }

    #[test]
    fn uint_roundtrip_all_widths() {
        let mut h = heap();
        let a = h.malloc(32).unwrap();
        for (width, value) in [(1usize, 0xABu64), (2, 0xBEEF), (4, 0xDEAD_BEEF), (8, u64::MAX - 3)]
        {
            h.write_uint(a, value, width).unwrap();
            assert_eq!(h.read_uint(a, width).unwrap(), value);
        }
    }

    #[test]
    fn memmove_handles_overlap() {
        let mut h = heap();
        let a = h.malloc(32).unwrap();
        h.write(a, b"abcdefgh").unwrap();
        h.memmove(a.offset(4), a, 8).unwrap();
        assert_eq!(h.read(a, 12).unwrap(), b"abcdabcdefgh");
    }

    #[test]
    fn memset_fills() {
        let mut h = heap();
        let a = h.malloc(16).unwrap();
        h.memset(a, 0x5A, 16).unwrap();
        assert!(h.read(a, 16).unwrap().iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn oom_at_capacity() {
        let mut h = SimHeap::new(HeapConfig { capacity: 1024, ..HeapConfig::default() });
        let mut last = Ok(Addr::NULL);
        for _ in 0..200 {
            last = h.malloc(64);
            if last.is_err() {
                break;
            }
        }
        assert!(matches!(last, Err(HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn large_allocations_use_best_fit_reuse() {
        let mut h = heap();
        let a = h.malloc(10_000).unwrap();
        h.free(a).unwrap();
        let b = h.malloc(9_000).unwrap();
        assert_eq!(a, b, "large freed block should satisfy a smaller large request");
    }

    #[test]
    fn best_fit_picks_the_smallest_covering_span() {
        // Regression: first-fit used to hand a 5 KB request whatever
        // large block it met first, so a 64 KB span could be absorbed
        // by a request an 8 KB span would have covered.
        let mut h = heap();
        let big = h.malloc(64 * 1024).unwrap();
        let small = h.malloc(8 * 1024).unwrap();
        h.free(big).unwrap();
        h.free(small).unwrap();
        let c = h.malloc(5 * 1024).unwrap();
        assert_eq!(c, small, "best fit must prefer the 8 KB span over the 64 KB one");
        assert_eq!(h.block_at(c).unwrap().size, 8 * 1024, "span is reused whole");
        assert_eq!(h.stats().bytes_live, 8 * 1024, "accounting follows the real span");
        // The big span stays available for a request its size.
        let d = h.malloc(60 * 1024).unwrap();
        assert_eq!(d, big);
    }

    #[test]
    fn corrupt_quarantine_index_surfaces_an_error_not_a_panic() {
        // Fault injection: clobber the unit index of a quarantined block,
        // then force its eviction. The old code panicked via
        // `expect("quarantined block has a slot")`.
        let mut h = SimHeap::new(HeapConfig { quarantine: 1, ..HeapConfig::default() });
        let a = h.malloc(32).unwrap();
        let b = h.malloc(32).unwrap();
        h.free(a).unwrap(); // `a` sits in quarantine
        let unit = (a.0 as usize) / ALIGN;
        h.index[unit] = 0; // simulate index corruption
        let err = h.free(b).unwrap_err();
        assert_eq!(err, HeapError::IndexCorrupt(a));
        // The corrupt entry was dropped, not recycled: the heap keeps
        // working and never hands `a` out from a free list.
        let c = h.malloc(32).unwrap();
        assert_ne!(c, a, "corrupt block must not be recycled");
    }

    #[test]
    fn release_class_unifies_the_pool_predicate() {
        // Class-exact spans route to their own class…
        for (class, &size) in SIZE_CLASSES.iter().enumerate() {
            assert_eq!(release_class(size), Some(class));
        }
        // …class-aligned-but-not-exact spans route to the largest class
        // they can still serve (they used to leak onto large_free)…
        assert_eq!(release_class(48), Some(1));
        assert_eq!(release_class(3 * 1024), Some(7));
        // …and spans beyond the largest class stay large.
        assert_eq!(release_class(4096 + 16), None);
        assert_eq!(release_class(64 * 1024), None);
    }

    fn placed(shuffle_depth: usize, offset_bits: u32, gap_bits: u32, seed: u64) -> HeapConfig {
        HeapConfig {
            placement: PlacementPolicy {
                shuffle_depth,
                offset_entropy_bits: offset_bits,
                guard_gap_bits: gap_bits,
                seed,
            },
            ..HeapConfig::default()
        }
    }

    /// Address trace of a fixed malloc/free workload.
    fn trace(config: HeapConfig) -> Vec<u64> {
        let mut h = SimHeap::new(config);
        let mut live = Vec::new();
        let mut out = Vec::new();
        for i in 0..64usize {
            let a = h.malloc(16 + (i * 13) % 100).unwrap();
            out.push(a.0);
            live.push(a);
            if i % 3 == 2 {
                let v = live.remove(i % live.len());
                h.free(v).unwrap();
            }
        }
        out
    }

    #[test]
    fn placement_off_is_bit_identical_to_the_deterministic_heap() {
        // A non-zero seed with all knobs zero must not change a thing.
        let mut off = PlacementPolicy::default();
        off.seed = 0xDEAD_BEEF;
        assert!(!off.enabled());
        assert_eq!(
            trace(HeapConfig::default()),
            trace(HeapConfig { placement: off, ..HeapConfig::default() })
        );
    }

    #[test]
    fn placement_replay_is_a_pure_function_of_the_seed() {
        let a = trace(placed(8, 6, 4, 42));
        let b = trace(placed(8, 6, 4, 42));
        assert_eq!(a, b, "same seed, same ops, same addresses");
        let c = trace(placed(8, 6, 4, 43));
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn shuffle_buffer_breaks_lifo_reuse_order() {
        let mut h = SimHeap::new(placed(8, 0, 0, 7));
        let addrs: Vec<Addr> = (0..16).map(|_| h.malloc(32).unwrap()).collect();
        for &a in &addrs {
            h.free(a).unwrap();
        }
        let reused: Vec<Addr> = (0..16).map(|_| h.malloc(32).unwrap()).collect();
        let lifo: Vec<Addr> = addrs.iter().rev().copied().collect();
        assert_ne!(reused, lifo, "shuffling must not reproduce the LIFO order");
        // Every handed-out block is live, distinct and class-spanned.
        let set: std::collections::HashSet<u64> = reused.iter().map(|a| a.0).collect();
        assert_eq!(set.len(), reused.len());
        for &a in &reused {
            assert_eq!(h.block_at(a).unwrap().state, BlockState::Live);
        }
    }

    #[test]
    fn shuffle_holds_back_at_most_depth_blocks() {
        let depth = 4;
        let mut h = SimHeap::new(placed(depth, 0, 0, 9));
        let addrs: Vec<Addr> = (0..8).map(|_| h.malloc(64).unwrap()).collect();
        for &a in &addrs {
            h.free(a).unwrap();
        }
        let (free_lists, large, buffered) = h.free_pool_snapshot();
        assert_eq!(buffered.len(), depth, "buffer holds exactly depth blocks");
        assert_eq!(free_lists.iter().map(Vec::len).sum::<usize>(), 8 - depth);
        assert!(large.is_empty());
        // Held-back blocks are still freed blocks — and stay reachable:
        // allocating everything back gets all 8 addresses.
        let reused: std::collections::HashSet<u64> =
            (0..8).map(|_| h.malloc(64).unwrap().0).collect();
        assert_eq!(reused, addrs.iter().map(|a| a.0).collect());
    }

    #[test]
    fn guard_gaps_vary_inter_block_distance() {
        let mut h = SimHeap::new(placed(0, 0, 4, 11));
        let addrs: Vec<u64> = (0..16).map(|_| h.malloc(32).unwrap().0).collect();
        let deltas: std::collections::HashSet<u64> =
            addrs.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.len() > 1, "gap entropy must vary spacing: {deltas:?}");
        // Gap units belong to no block and are caught by checked access.
        for w in addrs.windows(2) {
            let block = h.block_at(Addr(w[0])).unwrap();
            let gap_start = w[0] + block.size as u64;
            for probe in (gap_start..w[1]).step_by(ALIGN) {
                assert!(h.block_containing(Addr(probe)).is_none(), "gap unit owned at {probe:#x}");
            }
        }
    }

    #[test]
    fn offset_entropy_slides_the_whole_arena() {
        let first = |seed: u64| SimHeap::new(placed(0, 8, 0, seed)).store.len();
        let a = first(1);
        let b = first(2);
        let c = first(1);
        assert_eq!(a, c, "slide is a pure function of the seed");
        assert_ne!(a, b, "different seeds should slide differently");
        let mut h = SimHeap::new(placed(0, 8, 0, 1));
        let addr = h.malloc(32).unwrap();
        assert_eq!(addr.0 % ALIGN as u64, 0);
        assert_eq!(h.read_u64(addr).unwrap(), 0);
    }

    #[test]
    fn randomized_quarantine_eviction_preserves_the_quarantine_contract() {
        let mut cfg = placed(0, 0, 2, 5);
        cfg.quarantine = 4;
        let mut h = SimHeap::new(cfg);
        // Freed blocks must sit out at least one allocation while the
        // quarantine is below capacity, whatever the eviction order.
        let a = h.malloc(32).unwrap();
        h.free(a).unwrap();
        let b = h.malloc(32).unwrap();
        assert_ne!(a, b, "quarantined block reused immediately");
        // Churn: every op keeps succeeding and stats stay consistent.
        let mut live = vec![b];
        for i in 0..200usize {
            let x = h.malloc(16 + (i % 64)).unwrap();
            live.push(x);
            if live.len() > 6 {
                let v = live.remove(i % live.len());
                h.free(v).unwrap();
            }
        }
        let expect: usize = live.iter().map(|a| h.block_at(*a).unwrap().size).sum();
        assert_eq!(h.stats().bytes_live, expect);
    }

    #[test]
    fn stats_track_live_bytes_and_peak() {
        let mut h = heap();
        let a = h.malloc(100).unwrap(); // class 128
        let b = h.malloc(100).unwrap();
        assert_eq!(h.stats().bytes_live, 256);
        assert_eq!(h.stats().bytes_peak, 256);
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.stats().bytes_live, 0);
        assert_eq!(h.stats().bytes_peak, 256);
        assert_eq!(h.stats().allocs, 2);
        assert_eq!(h.stats().frees, 2);
    }

    #[test]
    fn redzone_gaps_separate_blocks() {
        let mut h = SimHeap::new(HeapConfig { redzone: 16, ..HeapConfig::default() });
        let a = h.malloc(32).unwrap();
        let b = h.malloc(32).unwrap();
        // The gap between the blocks belongs to no block…
        let gap = Addr(a.0 + 32);
        assert!(h.block_containing(gap).is_none());
        assert!(b.0 >= a.0 + 48, "blocks must be separated by the gap");
        // …and checked access into it reports OutOfBlock, not a wild fault.
        assert!(matches!(
            h.read_in_block(gap, 1).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
    }

    #[test]
    fn checked_access_to_freed_blocks_is_poisoned() {
        // Sanitizer semantics: quarantined/freed memory is untouchable
        // through the checked interface.
        let mut h = SimHeap::new(HeapConfig { quarantine: 8, ..HeapConfig::default() });
        let a = h.malloc(32).unwrap();
        h.free(a).unwrap();
        assert!(matches!(
            h.read_in_block(a, 8).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
        assert!(matches!(
            h.write_in_block(a, &[1, 2]).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
    }

    #[test]
    fn slot_ids_are_stable_and_generations_advance() {
        let mut h = heap();
        let a = h.malloc(32).unwrap();
        let (slot_a, gen1) = h.slot_gen(a).unwrap();
        assert_eq!(gen1, 1);
        h.free(a).unwrap();
        // Freed blocks keep their slot and generation.
        assert_eq!(h.slot_gen(a), Some((slot_a, 1)));
        let b = h.malloc(32).unwrap();
        assert_eq!(a, b, "immediate reuse expected");
        // Same slot, next generation: shadow entries recorded under gen 1
        // are now self-invalidated.
        assert_eq!(h.slot_gen(b), Some((slot_a, 2)));
        let c = h.malloc(32).unwrap();
        let (slot_c, _) = h.slot_gen(c).unwrap();
        assert_ne!(slot_a, slot_c);
        assert_eq!(h.slot_count(), 2);
    }

    #[test]
    fn slot_gen_requires_exact_base() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        assert!(h.slot_gen(a).is_some());
        assert!(h.slot_gen(a.offset(16)).is_none(), "interior pointer is not a base");
        assert!(h.slot_gen(Addr(1 << 40)).is_none());
        assert!(h.slot_gen(Addr::NULL).is_none());
    }

    #[test]
    fn based_arena_owns_a_shifted_window() {
        const BASE: u64 = 1 << 32;
        let mut h = SimHeap::new(HeapConfig { arena_base: BASE, ..HeapConfig::default() });
        let a = h.malloc(32).unwrap();
        assert!(a.0 >= BASE + ALIGN as u64, "addresses start past the shifted reserved unit");
        h.write_u64(a, 0xFEED).unwrap();
        assert_eq!(h.read_u64(a).unwrap(), 0xFEED);
        assert_eq!(h.block_at(a).unwrap().base, a);
        assert!(h.slot_gen(a).is_some());
        h.free(a).unwrap();
        let b = h.malloc(32).unwrap();
        assert_eq!(a, b, "immediate reuse works in a based arena");
    }

    #[test]
    fn accesses_below_the_base_fault() {
        const BASE: u64 = 1 << 32;
        let mut h = SimHeap::new(HeapConfig { arena_base: BASE, ..HeapConfig::default() });
        let _a = h.malloc(32).unwrap();
        // Addresses in another shard's window (below this base) are wild.
        let foreign = Addr(4096);
        assert!(matches!(h.read(foreign, 8).unwrap_err(), HeapError::Fault { .. }));
        assert_eq!(h.free(foreign), Err(HeapError::InvalidFree(foreign)));
        assert!(h.slot_gen(foreign).is_none());
        assert!(h.block_containing(foreign).is_none());
        assert!(matches!(
            h.read_in_block(foreign, 1).unwrap_err(),
            HeapError::Fault { .. }
        ));
    }

    #[test]
    fn disjoint_bases_give_disjoint_address_windows() {
        let span = 1u64 << 20;
        let mut shards: Vec<SimHeap> = (0..4)
            .map(|i| {
                SimHeap::new(HeapConfig {
                    capacity: span as usize,
                    arena_base: i * span,
                    ..HeapConfig::default()
                })
            })
            .collect();
        for (i, shard) in shards.iter_mut().enumerate() {
            for _ in 0..16 {
                let a = shard.malloc(64).unwrap();
                assert_eq!(
                    (a.0 / span) as usize,
                    i,
                    "address {a} must route back to shard {i} by division"
                );
            }
        }
    }

    #[test]
    fn published_heap_mirrors_blocks_for_lock_free_readers() {
        let mut h = SimHeap::new_published(HeapConfig::default());
        let a = h.malloc(32).unwrap();
        h.write_u64(a, 0xFACE_FEED).unwrap();
        assert_eq!(h.read_u64(a).unwrap(), 0xFACE_FEED);
        assert_eq!(h.read_vec(a, 8).unwrap(), 0xFACE_FEEDu64.to_le_bytes());
        let p = Arc::clone(h.publisher().unwrap());
        match p.try_snapshot(a.0) {
            SnapshotOutcome::Snap(s) => {
                assert_eq!(s.base, a.0);
                assert_eq!(s.heap_gen, 1);
                assert_eq!(s.state, PUB_STATE_NONE, "no runtime metadata recorded yet");
                assert_eq!(p.read_uint(a.0, 8), Some(0xFACE_FEED));
                assert!(p.recheck(s.slot, s.seq));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        // Reuse bumps the mirrored generation and invalidates rechecks.
        let snap = match p.try_snapshot(a.0) {
            SnapshotOutcome::Snap(s) => s,
            other => panic!("expected snapshot, got {other:?}"),
        };
        h.free(a).unwrap();
        let b = h.malloc(32).unwrap();
        assert_eq!(a, b, "immediate reuse expected");
        match p.try_snapshot(a.0) {
            SnapshotOutcome::Snap(s) => assert_eq!(s.heap_gen, 2),
            other => panic!("expected snapshot, got {other:?}"),
        }
        assert!(!p.recheck(snap.slot, snap.seq), "reuse must invalidate old snapshots");
        assert!(h.check_in_block(b, 32).is_ok());
        assert!(matches!(
            h.check_in_block(b, 33).unwrap_err(),
            HeapError::OutOfBlock { .. }
        ));
    }

    #[test]
    fn published_heap_matches_local_semantics() {
        // The same op sequence on a local and a published heap must
        // produce identical addresses, stats and visible bytes.
        let cfg = HeapConfig { poison: Some(0xDD), zero_on_alloc: true, ..HeapConfig::default() };
        let mut local = SimHeap::new(cfg);
        let mut published = SimHeap::new_published(cfg);
        for h in [&mut local, &mut published] {
            let a = h.malloc(40).unwrap();
            h.write_uint(a.offset(3), 0xAABB_CCDD, 4).unwrap();
            let b = h.malloc(100).unwrap();
            h.memset(b, 0x11, 64).unwrap();
            h.memmove(b.offset(8), b, 16).unwrap();
            h.free(a).unwrap();
            let c = h.malloc(50).unwrap(); // same size class as `a`
            assert_eq!(a, c);
        }
        assert_eq!(local.stats(), published.stats());
        let probe = Addr(local.config().arena_base + ALIGN as u64);
        let len = local.arena_len() - ALIGN;
        assert_eq!(local.arena_len(), published.arena_len());
        assert_eq!(
            local.read_vec(probe, len).unwrap(),
            published.read_vec(probe, len).unwrap()
        );
    }

    #[test]
    fn block_containing_finds_interior_pointers() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let info = h.block_containing(a.offset(10)).unwrap();
        assert_eq!(info.base, a);
        assert!(h.block_containing(Addr(1)).is_none());
    }
}
