//! Ablation bench: layout-plan generation cost across randomization
//! policies, plus the metadata-dedup (interning) fast path.

use polar_bench::micro::{BenchmarkId, Criterion};
use polar_bench::{bench_group, bench_main};
use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_layout::{LayoutEngine, PlanInterner, RandomizationPolicy};
use polar_rng::rngs::StdRng;
use polar_rng::SeedableRng;

fn probe() -> ClassInfo {
    let mut b = ClassDecl::builder("Probe");
    b = b.field("vtable", FieldKind::VtablePtr);
    for i in 0..6 {
        b = b.field(format!("f{i}"), FieldKind::I64);
    }
    ClassInfo::from_decl(b.build())
}

fn bench_plan_generation(c: &mut Criterion) {
    let info = probe();
    let mut group = c.benchmark_group("plan_generation");
    let policies = [
        ("off", RandomizationPolicy::off()),
        ("randstruct-like", RandomizationPolicy::randstruct_like()),
        ("permute-only", RandomizationPolicy::permute_only()),
        ("paper-default", RandomizationPolicy::default()),
    ];
    for (name, policy) in policies {
        let engine = LayoutEngine::new(policy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, engine| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| engine.generate(&info, &mut rng));
        });
    }
    group.finish();
}

fn bench_interning(c: &mut Criterion) {
    let info = probe();
    let engine = LayoutEngine::new(RandomizationPolicy::permute_only());
    c.bench_function("plan_intern", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut interner = PlanInterner::new();
        b.iter(|| interner.intern(engine.generate(&info, &mut rng)));
    });
}

bench_group!(benches, bench_plan_generation, bench_interning);
bench_main!(benches);
