//! Micro-benchmarks of the POLaR runtime's four entry points against
//! their unhardened equivalents — where the Figure 6 overhead actually
//! comes from.

use std::sync::Arc;

use polar_bench::micro::Criterion;
use polar_bench::{bench_group, bench_main};
use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

fn probe() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Probe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

fn big_config() -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    c.heap.capacity = 1 << 30;
    c
}

fn bench_alloc_free(c: &mut Criterion) {
    let info = probe();
    let mut group = c.benchmark_group("alloc_free");
    group.bench_function("raw_malloc_free", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::Native, big_config());
        b.iter(|| {
            let a = rt.malloc_raw(32).expect("alloc");
            rt.free_raw(a).expect("free");
        });
    });
    group.bench_function("olr_malloc_free", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), big_config());
        b.iter(|| {
            let a = rt.olr_malloc(&info).expect("alloc");
            rt.olr_free(a).expect("free");
        });
    });
    group.bench_function("olr_malloc_free_static", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::static_olr(7), big_config());
        b.iter(|| {
            let a = rt.olr_malloc(&info).expect("alloc");
            rt.olr_free(a).expect("free");
        });
    });
    group.finish();
}

fn bench_getptr(c: &mut Criterion) {
    let info = probe();
    let mut group = c.benchmark_group("member_access");
    group.bench_function("olr_getptr_cached", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), big_config());
        let obj = rt.olr_malloc(&info).expect("alloc");
        rt.olr_getptr(obj, info.hash(), 1).expect("warm");
        b.iter(|| rt.olr_getptr(obj, info.hash(), 1).expect("access"));
    });
    group.bench_function("olr_getptr_cold", |b| {
        let mut config = big_config();
        config.offset_cache = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let obj = rt.olr_malloc(&info).expect("alloc");
        b.iter(|| rt.olr_getptr(obj, info.hash(), 1).expect("access"));
    });
    group.finish();
}

fn bench_memcpy(c: &mut Criterion) {
    let info = probe();
    let mut group = c.benchmark_group("object_copy");
    group.bench_function("olr_memcpy", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), big_config());
        let src = rt.olr_malloc(&info).expect("alloc");
        let dst = rt.malloc_raw(128).expect("alloc");
        b.iter(|| rt.olr_memcpy(dst, src, &info).expect("copy"));
    });
    group.bench_function("raw_memmove", |b| {
        let mut rt = ObjectRuntime::new(RandomizeMode::Native, big_config());
        let src = rt.malloc_raw(32).expect("alloc");
        let dst = rt.malloc_raw(32).expect("alloc");
        b.iter(|| rt.heap_mut().memmove(dst, src, 24).expect("copy"));
    });
    group.finish();
}

bench_group!(benches, bench_alloc_free, bench_getptr, bench_memcpy);
bench_main!(benches);
