//! Criterion bench backing Figure 6: native vs POLaR execution of
//! representative mini-SPEC workloads (the full sweep lives in the
//! `tables` binary; this pins the extremes under Criterion's statistics).

use polar_bench::micro::{BenchmarkId, Criterion};
use polar_bench::{bench_group, bench_main};
use polar_instrument::{instrument, InstrumentOptions};
use polar_ir::interp::run;
use polar_ir::trace::NopTracer;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

fn config() -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    c.heap.capacity = 512 << 20;
    c
}

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_overhead");
    group.sample_size(10);
    for name in ["429.mcf", "458.sjeng", "403.gcc"] {
        let w = polar_workloads::spec::by_name(name).expect("workload exists");
        let (hardened, _) = instrument(&w.module, &InstrumentOptions::default());
        group.bench_with_input(BenchmarkId::new("native", name), &w, |b, w| {
            b.iter(|| {
                let mut rt = ObjectRuntime::new(RandomizeMode::Native, config());
                run(&w.module, &mut rt, &w.input, w.limits, &mut NopTracer)
                    .result
                    .expect("native run succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("polar", name), &w, |b, w| {
            b.iter(|| {
                let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config());
                run(&hardened, &mut rt, &w.input, w.limits, &mut NopTracer)
                    .result
                    .expect("polar run succeeds")
            });
        });
    }
    group.finish();
}

bench_group!(benches, bench_spec);
bench_main!(benches);
