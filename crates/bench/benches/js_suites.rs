//! Criterion bench backing Table II / Figure 7: one representative kernel
//! per JS-engine computational shape, native vs POLaR.

use polar_bench::micro::{BenchmarkId, Criterion};
use polar_bench::{bench_group, bench_main};
use polar_instrument::{instrument, InstrumentOptions};
use polar_ir::interp::{run, ExecLimits};
use polar_ir::trace::NopTracer;
use polar_ir::Module;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};
use polar_workloads::js::kernels;

fn config() -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    c.heap.capacity = 256 << 20;
    c
}

fn bench_js(c: &mut Criterion) {
    let cases: Vec<(&str, Module)> = vec![
        ("crypto", kernels::crypto(256, 200)),
        ("fft", kernels::fft(256, 120)),
        ("json", kernels::json(256, 60)),
        ("splay", kernels::tree(96, 3)),
    ];
    let input: Vec<u8> = (0u8..96).collect();
    let limits = ExecLimits::steps(50_000_000);
    let mut group = c.benchmark_group("js_suites");
    group.sample_size(10);
    for (name, module) in &cases {
        let (hardened, _) = instrument(module, &InstrumentOptions::default());
        group.bench_with_input(BenchmarkId::new("default", name), module, |b, m| {
            b.iter(|| {
                let mut rt = ObjectRuntime::new(RandomizeMode::Native, config());
                run(m, &mut rt, &input, limits, &mut NopTracer)
                    .result
                    .expect("native run succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("polar", name), &hardened, |b, m| {
            b.iter(|| {
                let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config());
                run(m, &mut rt, &input, limits, &mut NopTracer)
                    .result
                    .expect("polar run succeeds")
            });
        });
    }
    group.finish();
}

bench_group!(benches, bench_js);
bench_main!(benches);
