//! The `BENCH_runtime.json` schema: entry type, hand-rolled JSON in/out
//! (the workspace is registry-free by policy), and the snapshot-merge
//! rule shared by `bench_json` and its tests.
//!
//! A snapshot file accumulates rows from multiple runs, each tagged with
//! a `snapshot` label and a `quick` flag. The merge rule is
//! *like-for-like replacement*: a full run owns its label outright and
//! evicts every prior row under it, while a `--quick` run (which makes
//! no timing claims — its `ns_per_op` is 0) may only evict prior *quick*
//! rows, never a full-run measurement. Without that distinction a CI
//! smoke run rewriting the file would silently zero out a committed
//! measurement under the same label.

use std::fmt::Write as _;

/// One measurement row of `BENCH_runtime.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Which run produced this row (`"current"` or the baseline label).
    pub snapshot: String,
    /// Benchmark name, e.g. `olr_malloc_free` or `olr_malloc_free_mt4`.
    pub bench: String,
    /// Runtime mode label (`polar`, `static-olr`, `polar-unpooled`, …).
    pub mode: String,
    /// Best-of-samples nanoseconds per operation (0 for quick rows).
    pub ns_per_op: f64,
    /// Offset-cache hit rate over the timed loop, when meaningful.
    pub cache_hit_rate: Option<f64>,
    /// `estimated_metadata_bytes` at the end of the timed loop.
    pub metadata_bytes: usize,
    /// True when the row came from a `--quick` run: the bench body was
    /// executed but not timed, so `ns_per_op` carries no information.
    pub quick: bool,
    /// Hardware parallelism detected when the row was measured
    /// (`std::thread::available_parallelism`). Multi-thread rows only
    /// make scaling claims at or below this count; the regression gate
    /// skips a pinned `_mt*` row when the current machine detects less
    /// parallelism than the pin was measured with. Rows written before
    /// the field existed parse as 1 — the weakest claim, so legacy
    /// single-thread pins still gate everywhere.
    pub parallelism: usize,
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize entries as the `entries` array body (one object per line).
pub fn write_entries(buf: &mut String, entries: &[Entry]) {
    for (i, e) in entries.iter().enumerate() {
        let hit = match e.cache_hit_rate {
            Some(r) => format!("{r:.6}"),
            None => "null".to_owned(),
        };
        let _ = write!(
            buf,
            "    {{\"snapshot\": \"{}\", \"bench\": \"{}\", \"mode\": \"{}\", \
             \"ns_per_op\": {:.2}, \"cache_hit_rate\": {}, \"metadata_bytes\": {}, \
             \"quick\": {}, \"parallelism\": {}}}",
            json_escape(&e.snapshot),
            json_escape(&e.bench),
            json_escape(&e.mode),
            e.ns_per_op,
            hit,
            e.metadata_bytes,
            e.quick,
            e.parallelism
        );
        buf.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
}

/// Parse entries out of a JSON file `bench_json` previously wrote. Only
/// the flat per-entry objects are read; anything else is ignored. Rows
/// written before the `quick` tag existed parse as full measurements
/// (`quick: false`), which errs on the side of preserving them.
pub fn parse_entries(text: &str, default_snapshot: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let obj = match obj.split('}').next() {
            Some(o) => o,
            None => continue,
        };
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let rest = &obj[obj.find(&pat)? + pat.len()..];
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('"') {
                Some(stripped.split('"').next()?.to_owned())
            } else {
                Some(
                    rest.split(|c: char| c == ',' || c == '}')
                        .next()?
                        .trim()
                        .to_owned(),
                )
            }
        };
        let (bench, mode) = match (field("bench"), field("mode")) {
            (Some(b), Some(m)) => (b, m),
            _ => continue,
        };
        let ns: f64 = match field("ns_per_op").and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => continue,
        };
        out.push(Entry {
            snapshot: field("snapshot").unwrap_or_else(|| default_snapshot.to_owned()),
            bench,
            mode,
            ns_per_op: ns,
            cache_hit_rate: field("cache_hit_rate").and_then(|v| v.parse().ok()),
            metadata_bytes: field("metadata_bytes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            quick: field("quick").is_some_and(|v| v == "true"),
            parallelism: field("parallelism").and_then(|v| v.parse().ok()).unwrap_or(1),
        });
    }
    out
}

/// Apply the snapshot-replace rule: which prior rows survive a new run
/// under `label`? A full run (`current_quick == false`) evicts every row
/// with its label; a quick run evicts only the quick ones, so it can
/// never overwrite a full-run measurement.
pub fn retain_prior(prior: Vec<Entry>, label: &str, current_quick: bool) -> Vec<Entry> {
    prior
        .into_iter()
        .filter(|e| e.snapshot != label || (current_quick && !e.quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(snapshot: &str, bench: &str, ns: f64, quick: bool) -> Entry {
        Entry {
            snapshot: snapshot.to_owned(),
            bench: bench.to_owned(),
            mode: "polar".to_owned(),
            ns_per_op: ns,
            cache_hit_rate: if quick { None } else { Some(0.75) },
            metadata_bytes: 4096,
            quick,
            parallelism: 1,
        }
    }

    #[test]
    fn entries_round_trip_through_json() {
        let mut mt = row("lockfree", "olr_getptr_mt4", 9.8, false);
        mt.parallelism = 4;
        let entries = vec![
            row("seed", "olr_malloc_free", 118.9, false),
            row("current", "olr_getptr_cached", 0.0, true),
            mt,
        ];
        let mut buf = String::new();
        write_entries(&mut buf, &entries);
        let parsed = parse_entries(&buf, "fallback");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn legacy_rows_without_quick_parse_as_full() {
        let legacy = "{\"snapshot\": \"seed\", \"bench\": \"olr_malloc_free\", \
                      \"mode\": \"polar\", \"ns_per_op\": 120.00, \
                      \"cache_hit_rate\": null, \"metadata_bytes\": 0}";
        let parsed = parse_entries(legacy, "seed");
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].quick, "pre-tag rows must count as measurements");
        assert_eq!(
            parsed[0].parallelism, 1,
            "pre-field rows were single-threaded: default to the weakest claim"
        );
    }

    #[test]
    fn merge_keeps_legacy_single_thread_rows_beside_mt_rows() {
        // A new "lockfree" full run must evict only its own label; the
        // legacy rows (no parallelism field, parsed as 1) under other
        // labels survive untouched next to the freshly stamped mt rows.
        let legacy = parse_entries(
            "{\"snapshot\": \"sharded\", \"bench\": \"olr_getptr_cached\", \
             \"mode\": \"polar\", \"ns_per_op\": 8.44, \
             \"cache_hit_rate\": null, \"metadata_bytes\": 0, \"quick\": false}",
            "sharded",
        );
        let mut stale = row("lockfree", "olr_getptr_mt4", 23.45, false);
        stale.parallelism = 4;
        let mut prior = legacy;
        prior.push(stale);

        let mut kept = retain_prior(prior, "lockfree", false);
        assert_eq!(kept.len(), 1, "the stale lockfree row is evicted");
        assert_eq!(kept[0].snapshot, "sharded");
        assert_eq!(kept[0].parallelism, 1);

        let mut fresh = row("lockfree", "olr_getptr_mt4", 9.8, false);
        fresh.parallelism = 8;
        kept.push(fresh);
        let mut buf = String::new();
        write_entries(&mut buf, &kept);
        let reread = parse_entries(&buf, "fallback");
        assert_eq!(reread, kept, "mixed legacy + mt rows round-trip");
    }

    #[test]
    fn full_run_evicts_its_whole_label() {
        let prior = vec![
            row("sharded", "olr_malloc_free", 120.0, false),
            row("sharded", "olr_malloc_free", 0.0, true),
            row("seed", "olr_malloc_free", 140.0, false),
        ];
        let kept = retain_prior(prior, "sharded", false);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].snapshot, "seed");
    }

    #[test]
    fn quick_run_cannot_evict_full_measurements() {
        let prior = vec![
            row("sharded", "olr_malloc_free", 120.0, false),
            row("sharded", "olr_getptr_cached", 0.0, true),
            row("seed", "olr_malloc_free", 140.0, false),
        ];
        let kept = retain_prior(prior, "sharded", true);
        // The full sharded row and the foreign-label row survive; only
        // the stale quick row under the same label is replaced.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|e| e.snapshot == "sharded" && !e.quick));
        assert!(kept.iter().any(|e| e.snapshot == "seed"));
    }

    #[test]
    fn escaping_survives_hostile_labels() {
        let mut e = row("odd\"label\\x", "b", 1.0, false);
        e.mode = "m".to_owned();
        let mut buf = String::new();
        write_entries(&mut buf, &[e]);
        assert!(buf.contains("odd\\\"label\\\\x"));
    }
}
