//! The `BENCH_security.json` schema: adaptive-attack scorecard rows,
//! hand-rolled JSON in/out (the workspace is registry-free by policy),
//! and the same like-for-like snapshot-merge rule as
//! [`json`](crate::json) uses for `BENCH_runtime.json`.
//!
//! One row per (scenario × mode) campaign: how often the evolved attack
//! tape bypassed the defense over the evaluation replays, and how often
//! the runtime detected it. Rows are seed-deterministic — the same
//! binary with the same seed writes byte-identical rows — so the file
//! diffs cleanly and `scripts/check.sh` can gate on regressions.

use std::fmt::Write as _;

use crate::json::json_escape;

/// One campaign row of `BENCH_security.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SecEntry {
    /// Which run produced this row (`"current"` or a baseline label).
    pub snapshot: String,
    /// Attack scenario (`heap-groom`, `misaligned-probe`, `type-confuse`).
    pub scenario: String,
    /// Defense mode label (`native`, `static-olr`, `polar`, …).
    pub mode: String,
    /// Evaluation replays the campaign's best tape was run for.
    pub trials: u64,
    /// Replays that bypassed the defense (hijack / secret recovery).
    pub bypasses: u64,
    /// Replays the runtime detected and terminated.
    pub detections: u64,
    /// Search executions the tape was evolved with.
    pub search_execs: u64,
    /// True when the row came from a `--quick` (reduced-budget) run.
    pub quick: bool,
}

impl SecEntry {
    /// Bypass probability over the evaluation replays.
    pub fn bypass_rate(&self) -> f64 {
        self.bypasses as f64 / self.trials.max(1) as f64
    }

    /// Detection probability over the evaluation replays.
    pub fn detection_rate(&self) -> f64 {
        self.detections as f64 / self.trials.max(1) as f64
    }
}

/// Serialize entries as the `entries` array body (one object per line).
pub fn write_sec_entries(buf: &mut String, entries: &[SecEntry]) {
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            buf,
            "    {{\"snapshot\": \"{}\", \"scenario\": \"{}\", \"mode\": \"{}\", \
             \"trials\": {}, \"bypasses\": {}, \"detections\": {}, \
             \"bypass_rate\": {:.6}, \"detection_rate\": {:.6}, \
             \"search_execs\": {}, \"quick\": {}}}",
            json_escape(&e.snapshot),
            json_escape(&e.scenario),
            json_escape(&e.mode),
            e.trials,
            e.bypasses,
            e.detections,
            e.bypass_rate(),
            e.detection_rate(),
            e.search_execs,
            e.quick
        );
        buf.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
}

/// Parse entries out of a file `security_json` previously wrote. Only
/// the flat per-entry objects are read; anything else (the schema
/// header, derived rates) is ignored or recomputed.
pub fn parse_sec_entries(text: &str, default_snapshot: &str) -> Vec<SecEntry> {
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let obj = match obj.split('}').next() {
            Some(o) => o,
            None => continue,
        };
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let rest = &obj[obj.find(&pat)? + pat.len()..];
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('"') {
                Some(stripped.split('"').next()?.to_owned())
            } else {
                Some(
                    rest.split(|c: char| c == ',' || c == '}')
                        .next()?
                        .trim()
                        .to_owned(),
                )
            }
        };
        let (scenario, mode) = match (field("scenario"), field("mode")) {
            (Some(s), Some(m)) => (s, m),
            _ => continue,
        };
        let trials: u64 = match field("trials").and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => continue,
        };
        out.push(SecEntry {
            snapshot: field("snapshot").unwrap_or_else(|| default_snapshot.to_owned()),
            scenario,
            mode,
            trials,
            bypasses: field("bypasses").and_then(|v| v.parse().ok()).unwrap_or(0),
            detections: field("detections").and_then(|v| v.parse().ok()).unwrap_or(0),
            search_execs: field("search_execs").and_then(|v| v.parse().ok()).unwrap_or(0),
            quick: field("quick").is_some_and(|v| v == "true"),
        });
    }
    out
}

/// The snapshot-replace rule, identical in spirit to
/// [`json::retain_prior`](crate::json::retain_prior): a full run evicts
/// every prior row under its label; a quick run evicts only prior quick
/// rows, never a full-budget measurement.
pub fn retain_prior_sec(
    prior: Vec<SecEntry>,
    label: &str,
    current_quick: bool,
) -> Vec<SecEntry> {
    prior
        .into_iter()
        .filter(|e| e.snapshot != label || (current_quick && !e.quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(snapshot: &str, scenario: &str, bypasses: u64, quick: bool) -> SecEntry {
        SecEntry {
            snapshot: snapshot.to_owned(),
            scenario: scenario.to_owned(),
            mode: "polar".to_owned(),
            trials: 48,
            bypasses,
            detections: 10,
            search_execs: 120,
            quick,
        }
    }

    #[test]
    fn entries_round_trip_through_json() {
        let entries = vec![
            row("pinned", "heap-groom", 3, false),
            row("current", "type-confuse", 0, true),
        ];
        let mut buf = String::new();
        write_sec_entries(&mut buf, &entries);
        let parsed = parse_sec_entries(&buf, "fallback");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn rates_are_derived_not_trusted() {
        // A hand-edited bypass_rate in the file cannot survive a round
        // trip: rates come from the counts.
        let text = "{\"snapshot\": \"x\", \"scenario\": \"s\", \"mode\": \"m\", \
                    \"trials\": 10, \"bypasses\": 5, \"detections\": 0, \
                    \"bypass_rate\": 0.999999, \"detection_rate\": 0.0, \
                    \"search_execs\": 1, \"quick\": false}";
        let parsed = parse_sec_entries(text, "x");
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].bypass_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn full_run_evicts_its_whole_label() {
        let prior = vec![
            row("current", "heap-groom", 1, false),
            row("current", "heap-groom", 2, true),
            row("pinned", "heap-groom", 3, false),
        ];
        let kept = retain_prior_sec(prior, "current", false);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].snapshot, "pinned");
    }

    #[test]
    fn quick_run_cannot_evict_full_measurements() {
        let prior = vec![
            row("current", "heap-groom", 1, false),
            row("current", "type-confuse", 2, true),
            row("pinned", "heap-groom", 3, false),
        ];
        let kept = retain_prior_sec(prior, "current", true);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|e| e.snapshot == "current" && !e.quick));
        assert!(kept.iter().any(|e| e.snapshot == "pinned"));
    }
}
