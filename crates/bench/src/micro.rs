//! A tiny wall-clock micro-benchmark timer — the in-tree replacement
//! for Criterion.
//!
//! Deliberately minimal: warm up, calibrate an iteration count per
//! sample, take a handful of samples, report median/min/max. No
//! statistics engine, no HTML reports, no registry dependency. The API
//! keeps Criterion's shape (`Criterion`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `b.iter(..)`) so bench sources
//! read the same as before the migration.
//!
//! Behavior matches Criterion's harness contract too: a bench binary
//! run by `cargo bench` receives `--bench` and measures for real; run
//! by `cargo test` (no `--bench` flag) it executes every body once in
//! *quick mode*, so benches can't bit-rot without failing the tier-1
//! gate — and the gate stays fast.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level bench context (Criterion-shaped).
pub struct Criterion {
    quick: bool,
    benches_run: usize,
}

impl Criterion {
    /// Build from the process arguments: full measurement when invoked
    /// with `--bench` (what `cargo bench` passes), quick smoke mode
    /// otherwise (what `cargo test` does).
    pub fn from_args() -> Self {
        let quick = !std::env::args().any(|a| a == "--bench");
        if quick {
            eprintln!("(quick mode: running each bench body once; use `cargo bench` to measure)");
        }
        Criterion { quick, benches_run: 0 }
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// A standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let quick = self.quick;
        self.run_one(name, 20, quick, f);
    }

    /// Print the closing line (called by [`bench_main!`](crate::bench_main)).
    pub fn final_summary(&self) {
        eprintln!("ran {} benchmarks", self.benches_run);
    }

    fn run_one(&mut self, label: &str, sample_size: usize, quick: bool, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { quick, sample_size, report: None };
        f(&mut bencher);
        self.benches_run += 1;
        match bencher.report {
            Some(report) => eprintln!("{label:<44} {report}"),
            None => eprintln!("{label:<44} (no iter call)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchGroup<'_> {
    /// Samples per benchmark (quick mode ignores this).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        let quick = self.criterion.quick;
        self.criterion.run_one(&label, self.sample_size, quick, |b| f(b, input));
    }

    /// End the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// A benchmark identifier (Criterion-shaped).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to each bench body; [`iter`](Bencher::iter) does the timing.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    report: Option<Report>,
}

struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {} (min {}, max {}; {}×{} iters)",
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns),
            self.samples,
            self.iters
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Bencher {
    /// Time the closure. In quick mode it runs exactly once (smoke
    /// test); otherwise: warm up ~25 ms, size samples to ~10 ms each,
    /// then record `sample_size` samples.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.quick {
            black_box(f());
            self.report =
                Some(Report { median_ns: 0.0, min_ns: 0.0, max_ns: 0.0, samples: 1, iters: 1 });
            return;
        }
        // Warmup + calibration.
        let warmup = Duration::from_millis(25);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = ((10e6 / per_iter.max(0.1)) as u64).clamp(1, 1_000_000);
        // Measurement.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let report = Report {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("sample_size >= 2"),
            samples: samples_ns.len(),
            iters,
        };
        self.report = Some(report);
    }
}

/// Bundle bench functions into one named group runner (the analogue of
/// `criterion_group!`).
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::micro::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `fn main` for a bench binary (the analogue of
/// `criterion_main!`).
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::micro::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
