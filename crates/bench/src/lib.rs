//! Measurement helpers shared by the `tables` binary and the micro
//! benches (see [`micro`] for the in-tree Criterion replacement).
//!
//! Every table and figure of the paper has a `rows`-style function here
//! that produces its data; the binary in `src/bin/tables.rs` formats
//! them. See DESIGN.md §4 for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod micro;
pub mod security;

use std::sync::Arc;
use std::time::{Duration, Instant};

use polar_instrument::{instrument, InstrumentOptions};
use polar_ir::interp::{run, ExecLimits};
use polar_ir::trace::NopTracer;
use polar_ir::Module;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig, RuntimeStats};
use polar_taint::{analyze, TaintConfig};
use polar_workloads::{js, Workload};

/// Wall-clock one execution in the given mode; also returns the final
/// runtime stats.
pub fn time_once(
    module: &Module,
    mode: RandomizeMode,
    mut config: RuntimeConfig,
    input: &[u8],
    limits: ExecLimits,
    seed: u64,
) -> (Duration, RuntimeStats) {
    config.seed = seed;
    config.heap.capacity = 512 << 20;
    let mut rt = ObjectRuntime::new(mode, config);
    let start = Instant::now();
    let report = run(module, &mut rt, input, limits, &mut NopTracer);
    let elapsed = start.elapsed();
    assert!(
        report.result.is_ok(),
        "{} run failed: {:?}",
        mode.label(),
        report.result
    );
    (elapsed, report.stats)
}

/// Best-of-`reps` wall time.
pub fn time_best(
    module: &Module,
    mode: RandomizeMode,
    input: &[u8],
    limits: ExecLimits,
    reps: u32,
) -> Duration {
    (0..reps)
        .map(|r| {
            time_once(module, mode, RuntimeConfig::default(), input, limits, 0xBE5 + u64::from(r))
                .0
        })
        .min()
        .expect("reps >= 1")
}

/// Interleaved A/B timing: alternates the two builds rep by rep (with one
/// untimed warm-up each) so frequency drift and cache state hit both
/// sides equally, and returns the per-build minima.
pub fn time_pair(
    a: (&Module, RandomizeMode),
    b: (&Module, RandomizeMode),
    input: &[u8],
    limits: ExecLimits,
    reps: u32,
) -> (Duration, Duration) {
    let _ = time_once(a.0, a.1, RuntimeConfig::default(), input, limits, 1);
    let _ = time_once(b.0, b.1, RuntimeConfig::default(), input, limits, 2);
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for r in 0..reps.max(1) {
        let seed = 0xBE5 + u64::from(r);
        let ta = time_once(a.0, a.1, RuntimeConfig::default(), input, limits, seed).0;
        let tb = time_once(b.0, b.1, RuntimeConfig::default(), input, limits, seed).0;
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
    }
    (best_a, best_b)
}

/// Relative overhead in percent.
pub fn overhead_pct(base: Duration, hardened: Duration) -> f64 {
    (hardened.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// One Figure 6 row: a SPEC workload timed native vs POLaR.
#[derive(Debug, Clone)]
pub struct SpecRow {
    /// Workload name.
    pub name: &'static str,
    /// Native (uninstrumented) best time.
    pub native: Duration,
    /// POLaR (instrumented, per-allocation) best time.
    pub polar: Duration,
    /// Overhead percentage.
    pub overhead: f64,
}

/// Measure Figure 6: per-app POLaR overhead on the mini-SPEC suite.
pub fn fig6_rows(reps: u32) -> Vec<SpecRow> {
    polar_workloads::fig6_spec()
        .iter()
        .map(|w| spec_row(w, reps))
        .collect()
}

fn spec_row(w: &Workload, reps: u32) -> SpecRow {
    let (hardened, _) = instrument(&w.module, &InstrumentOptions::default());
    let (native, polar) = time_pair(
        (&w.module, RandomizeMode::Native),
        (&hardened, RandomizeMode::per_allocation()),
        &w.input,
        w.limits,
        reps,
    );
    SpecRow { name: w.name, native, polar, overhead: overhead_pct(native, polar) }
}

/// One Table III row: the instrumented run's object-event counters.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Workload name.
    pub name: &'static str,
    /// Final runtime statistics of a POLaR run.
    pub stats: RuntimeStats,
}

/// Measure Table III: allocation/free/memcpy/member-access/cache-hit
/// counts of the POLaR build of every Figure 6 workload.
pub fn table3_rows() -> Vec<Table3Row> {
    polar_workloads::fig6_spec()
        .iter()
        .map(|w| {
            let (hardened, _) = instrument(&w.module, &InstrumentOptions::default());
            let (_, stats) = time_once(
                &hardened,
                RandomizeMode::per_allocation(),
                RuntimeConfig::default(),
                &w.input,
                w.limits,
                7,
            );
            Table3Row { name: w.name, stats }
        })
        .collect()
}

/// One Table I row: the TaintClass object count for an application.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub name: String,
    /// Number of tainted classes discovered.
    pub tainted: usize,
    /// A few sample class names (like the paper's third column).
    pub samples: Vec<String>,
}

/// Measure Table I: TaintClass over every application's canonical input.
pub fn table1_rows() -> Vec<Table1Row> {
    let mut apps: Vec<Workload> = polar_workloads::all_spec();
    apps.push(polar_workloads::minipng::workload());
    apps.push(polar_workloads::minijpeg::workload());
    apps.push(js::engine::workload());
    apps.iter()
        .map(|w| {
            let (report, exec) =
                analyze(&w.module, &w.input, w.limits, &TaintConfig::default());
            assert!(exec.result.is_ok(), "{}: {:?}", w.name, exec.result);
            let samples: Vec<String> = report
                .tainted_classes()
                .into_iter()
                .take(5)
                .filter_map(|c| {
                    w.module.registry.get_checked(c).map(|i| i.name().to_owned())
                })
                .collect();
            Table1Row {
                name: w.name.to_owned(),
                tainted: report.tainted_class_count(),
                samples,
            }
        })
        .collect()
}

/// One JS subtest measurement (Figure 7).
#[derive(Debug, Clone)]
pub struct JsRow {
    /// Suite.
    pub suite: js::Suite,
    /// Subtest name.
    pub name: &'static str,
    /// Default (native) time.
    pub default_time: Duration,
    /// POLaR time.
    pub polar_time: Duration,
}

impl JsRow {
    /// Per-subtest score for score-based suites (work/time; arbitrary
    /// constant, consistent across modes).
    pub fn score(time: Duration) -> f64 {
        100.0 / time.as_secs_f64().max(1e-9)
    }
}

/// Measure one suite's subtests (Figure 7a–d).
pub fn js_rows(suite: js::Suite, reps: u32) -> Vec<JsRow> {
    js::suite(suite)
        .iter()
        .map(|k| {
            let (hardened, _) = instrument(&k.module, &InstrumentOptions::default());
            let (default_time, polar_time) = time_pair(
                (&k.module, RandomizeMode::Native),
                (&hardened, RandomizeMode::per_allocation()),
                &k.input,
                k.limits,
                reps,
            );
            JsRow { suite, name: k.name, default_time, polar_time }
        })
        .collect()
}

/// Table II aggregate for one suite.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Suite.
    pub suite: js::Suite,
    /// Aggregate default result (ms for time suites, score otherwise).
    pub default_result: f64,
    /// Aggregate POLaR result.
    pub polar_result: f64,
}

impl Table2Row {
    /// Difference (POLaR − default).
    pub fn diff(&self) -> f64 {
        self.polar_result - self.default_result
    }

    /// Relative change in percent (sign follows the paper's convention:
    /// positive = slower/worse under POLaR for time suites, negative =
    /// lower score).
    pub fn ratio_pct(&self) -> f64 {
        (self.polar_result / self.default_result - 1.0) * 100.0
    }
}

/// Aggregate subtest rows into the Table II entry for their suite.
pub fn table2_row(rows: &[JsRow]) -> Table2Row {
    let suite = rows.first().expect("non-empty suite").suite;
    if suite.higher_is_better() {
        // Score suites: geometric mean of per-subtest scores.
        let geo = |f: fn(&JsRow) -> f64| {
            let ln_sum: f64 = rows.iter().map(|r| f(r).ln()).sum();
            (ln_sum / rows.len() as f64).exp()
        };
        Table2Row {
            suite,
            default_result: geo(|r| JsRow::score(r.default_time)),
            polar_result: geo(|r| JsRow::score(r.polar_time)),
        }
    } else {
        // Time suites: total milliseconds.
        Table2Row {
            suite,
            default_result: rows.iter().map(|r| r.default_time.as_secs_f64() * 1e3).sum(),
            polar_result: rows.iter().map(|r| r.polar_time.as_secs_f64() * 1e3).sum(),
        }
    }
}

/// One row of the site-density / memory-overhead analysis.
#[derive(Debug, Clone)]
pub struct SitesRow {
    /// Workload name.
    pub name: &'static str,
    /// Static object sites (alloc + gep + copy + free instructions).
    pub object_sites: usize,
    /// Object sites as a fraction of all static instructions.
    pub site_density: f64,
    /// Metadata records after the run (live + retained-freed).
    pub meta_records: usize,
    /// Distinct interned layout plans.
    pub unique_plans: u64,
    /// Metadata records saved by plan dedup.
    pub dedup_saved: u64,
    /// Estimated POLaR bookkeeping bytes at exit.
    pub metadata_bytes: usize,
    /// Peak application heap bytes, for scale.
    pub heap_peak: usize,
}

/// Static site density and runtime metadata footprint for every Figure 6
/// workload (the memory-side companion to the overhead figure).
pub fn sites_rows() -> Vec<SitesRow> {
    polar_workloads::fig6_spec()
        .iter()
        .map(|w| {
            let (hardened, _) = instrument(&w.module, &InstrumentOptions::default());
            let stats = polar_ir::stats::ModuleStats::of(&hardened);
            let mut config = RuntimeConfig::default();
            config.heap.capacity = 512 << 20;
            let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
            let report = run(&hardened, &mut rt, &w.input, w.limits, &mut NopTracer);
            assert!(report.result.is_ok(), "{}: {:?}", w.name, report.result);
            SitesRow {
                name: w.name,
                object_sites: stats.object_sites(),
                site_density: stats.site_density(),
                meta_records: rt.meta_records(),
                unique_plans: report.stats.unique_plans,
                dedup_saved: report.stats.dedup_saved,
                metadata_bytes: rt.estimated_metadata_bytes(),
                heap_peak: rt.heap().stats().bytes_peak,
            }
        })
        .collect()
}

/// Ablation row: a layout policy's entropy and per-operation runtime
/// cost, plus the metadata and trap footprint the mode actually pays
/// (per-mode — stored plans vs derived stateless state).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Policy label.
    pub label: String,
    /// Analytic entropy (bits) on the row's probe class.
    pub entropy_bits: f64,
    /// Mean `olr_malloc` + `olr_free` cost (nanoseconds).
    pub alloc_ns: f64,
    /// Mean cached `olr_getptr` cost (nanoseconds).
    pub access_ns: f64,
    /// Metadata bytes retained with [`ABLATION_LIVE`] objects live.
    pub metadata_bytes: usize,
    /// Mean armed booby-trap slots per live object (canaried dummies
    /// for stored plans, derived virtual traps for stateless plans).
    pub trap_slots: f64,
}

/// Live objects held when an ablation row samples `metadata_bytes`.
pub const ABLATION_LIVE: u32 = 512;

fn ablation_probe() -> Arc<polar_classinfo::ClassInfo> {
    use polar_classinfo::{ClassDecl, FieldKind};
    let mut b = ClassDecl::builder("AblationProbe");
    b = b.field("vtable", FieldKind::VtablePtr);
    for i in 0..14 {
        b = b.field(format!("f{i}"), FieldKind::I64);
    }
    b = b.field("next", FieldKind::Ptr);
    Arc::new(polar_classinfo::ClassInfo::from_decl(b.build()))
}

/// Sweep layout policies: permutation modes and dummy budgets, measuring
/// the runtime's per-operation costs directly (micro-benchmark; the
/// workload-level numbers live in Figure 6).
pub fn ablation_rows(_reps: u32) -> Vec<AblationRow> {
    use polar_layout::{DummyPolicy, PermuteMode, RandomizationPolicy};
    let probe = ablation_probe();

    let mut policies: Vec<(String, RandomizationPolicy)> = vec![
        ("off".into(), RandomizationPolicy::off()),
        ("randstruct-like".into(), RandomizationPolicy::randstruct_like()),
        ("permute-only".into(), RandomizationPolicy::permute_only()),
        ("default (paper)".into(), RandomizationPolicy::default()),
    ];
    for dummies in [0u32, 2, 4, 8] {
        policies.push((
            format!("permute + {dummies} dummies"),
            RandomizationPolicy {
                permute: PermuteMode::Full,
                dummies: DummyPolicy {
                    min: dummies,
                    max: dummies,
                    size: 8,
                    booby_trap: dummies > 0,
                    guard_pointers: false,
                },
            },
        ));
    }

    const ALLOCS: u32 = 30_000;
    const ACCESSES: u32 = 300_000;

    // One measurement body for every row: time the churn and access
    // loops, then hold ABLATION_LIVE objects and sample what the mode
    // actually stores (metadata bytes + armed trap slots per object).
    let measure = |label: String, entropy_bits: f64, probe: &Arc<polar_classinfo::ClassInfo>,
                   mode: RandomizeMode, mut config: RuntimeConfig| {
        config.heap.capacity = 1 << 30;
        let fields = probe.field_count();
        let mut rt = ObjectRuntime::new(mode, config);
        let start = Instant::now();
        for _ in 0..ALLOCS {
            let a = rt.olr_malloc(probe).expect("alloc");
            rt.olr_free(a).expect("free");
        }
        let alloc_ns = start.elapsed().as_nanos() as f64 / f64::from(ALLOCS);
        let obj = rt.olr_malloc(probe).expect("alloc");
        let start = Instant::now();
        for i in 0..ACCESSES {
            rt.olr_getptr(obj, probe.hash(), (i as usize) % fields).expect("access");
        }
        let access_ns = start.elapsed().as_nanos() as f64 / f64::from(ACCESSES);
        let mut live = vec![obj];
        for _ in 1..ABLATION_LIVE {
            live.push(rt.olr_malloc(probe).expect("alloc"));
        }
        let armed: usize = live
            .iter()
            .map(|&o| {
                rt.object_meta(o).map_or(0, |m| {
                    m.plan.dummies().iter().filter(|d| d.canary.is_some()).count()
                })
            })
            .sum();
        AblationRow {
            label,
            entropy_bits,
            alloc_ns,
            access_ns,
            metadata_bytes: rt.estimated_metadata_bytes(),
            trap_slots: armed as f64 / f64::from(ABLATION_LIVE),
        }
    };

    let mut rows: Vec<AblationRow> = policies
        .into_iter()
        .map(|(label, policy)| {
            let entropy_bits = polar_layout::entropy::layout_entropy_bits(&probe, &policy);
            let mut config = RuntimeConfig::default();
            // Stored-plan rows: the stateless path would shadow the
            // policy under test for small classes (and skips the large
            // probe anyway), so pin it off.
            config.stateless = polar_runtime::StatelessPolicy::off();
            measure(label, entropy_bits, &probe, RandomizeMode::PerAllocation { policy }, config)
        })
        .collect();

    // The Section V-B cache ablation: the paper's default policy with the
    // offset-lookup cache disabled.
    {
        let policy = polar_layout::RandomizationPolicy::default();
        let entropy_bits = polar_layout::entropy::layout_entropy_bits(&probe, &policy);
        let mut config = RuntimeConfig::default();
        config.stateless = polar_runtime::StatelessPolicy::off();
        config.offset_cache = false;
        rows.push(measure(
            "default, cache OFF".into(),
            entropy_bits,
            &probe,
            RandomizeMode::PerAllocation { policy },
            config,
        ));
    }

    // The stateless derived path (small classes only): pooled stored
    // plans vs derived-with-traps vs derived permute-only, all on the
    // same ≤8-field probe so metadata_bytes and trap columns compare
    // like for like.
    {
        let small = ablation_small_probe();
        let perm_bits = polar_layout::entropy::layout_entropy_bits(
            &small,
            &polar_layout::RandomizationPolicy::permute_only(),
        );
        let stored_bits = polar_layout::entropy::layout_entropy_bits(
            &small,
            &polar_layout::RandomizationPolicy::default(),
        );
        for (label, bits, stateless) in [
            ("small: pooled stored", stored_bits, polar_runtime::StatelessPolicy::off()),
            ("small: stateless+traps", perm_bits, polar_runtime::StatelessPolicy::on()),
            (
                "small: stateless-notraps",
                perm_bits,
                polar_runtime::StatelessPolicy::permute_only(),
            ),
        ] {
            let mut config = RuntimeConfig::default();
            config.stateless = stateless;
            rows.push(measure(
                label.into(),
                bits,
                &small,
                RandomizeMode::per_allocation(),
                config,
            ));
        }
    }
    rows
}

/// A ≤8-field probe the stateless path applies to.
fn ablation_small_probe() -> Arc<polar_classinfo::ClassInfo> {
    use polar_classinfo::{ClassDecl, FieldKind};
    Arc::new(polar_classinfo::ClassInfo::from_decl(
        ClassDecl::builder("AblationSmall")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers_work() {
        let w = polar_workloads::spec::by_name("429.mcf").unwrap();
        let t = time_best(&w.module, RandomizeMode::Native, &w.input, w.limits, 1);
        assert!(t.as_nanos() > 0);
        assert!(overhead_pct(Duration::from_millis(100), Duration::from_millis(105)) > 4.9);
    }

    #[test]
    fn table2_aggregation_shapes() {
        let rows = vec![
            JsRow {
                suite: js::Suite::Kraken,
                name: "a",
                default_time: Duration::from_millis(10),
                polar_time: Duration::from_millis(11),
            },
            JsRow {
                suite: js::Suite::Kraken,
                name: "b",
                default_time: Duration::from_millis(20),
                polar_time: Duration::from_millis(20),
            },
        ];
        let t2 = table2_row(&rows);
        assert!((t2.default_result - 30.0).abs() < 1e-6);
        assert!(t2.diff() > 0.0);
        assert!(t2.ratio_pct() > 0.0);
    }

    #[test]
    fn score_suites_aggregate_geometrically() {
        let rows = vec![JsRow {
            suite: js::Suite::Octane,
            name: "x",
            default_time: Duration::from_millis(10),
            polar_time: Duration::from_millis(20),
        }];
        let t2 = table2_row(&rows);
        assert!(t2.polar_result < t2.default_result, "score drops when slower");
        assert!(t2.ratio_pct() < 0.0);
    }
}
