//! Machine-readable security scorecard: emits `BENCH_security.json`.
//!
//! Runs the adaptive attacker of `polar_attacks::search` — four attack
//! scenarios × seven defense modes — and writes one JSON entry per
//! campaign:
//!
//! ```json
//! {"scenario": "heap-groom", "mode": "polar", "trials": 160,
//!  "bypasses": 12, "detections": 95, "bypass_rate": 0.075, ...}
//! ```
//!
//! Everything is seed-deterministic: the same binary with the same
//! `--seed` writes byte-identical entries, so the snapshot diffs cleanly
//! across commits. `--baseline FILE` merges prior rows in under the same
//! like-for-like rule as `bench_json` (a `--quick` run can never evict a
//! full-budget row).
//!
//! `--gate FILE` reruns the reduced (`--quick`) budget at the pinned
//! gate seed and compares each campaign against the pinned row for its
//! (scenario, mode): exit 1 when any mode's bypass rate climbed more
//! than the tolerance above its pin, or its detection rate fell more
//! than the tolerance below. `scripts/check.sh` runs this against
//! `scripts/security_baseline.json`. `--write-pin FILE` produces that
//! pin file.

use std::fmt::Write as _;

use polar_attacks::search::{scorecard, CampaignBudget, CampaignReport};
use polar_bench::security::{
    parse_sec_entries, retain_prior_sec, write_sec_entries, SecEntry,
};

/// The seed the CI gate (and its pin file) always runs with — the gate
/// compares like against like.
const GATE_SEED: u64 = 0x5EC5_CA4D;

/// How far a bypass rate may climb above its pin (absolute probability)
/// before the gate fails, and how far a detection rate may fall below.
const TOLERANCE: f64 = 0.10;

fn to_entry(r: &CampaignReport, snapshot: &str, quick: bool) -> SecEntry {
    SecEntry {
        snapshot: snapshot.to_owned(),
        scenario: r.scenario.to_owned(),
        mode: r.mode.label().to_owned(),
        trials: r.trials,
        bypasses: r.bypasses,
        detections: r.detections,
        search_execs: r.search_execs,
        quick,
    }
}

fn run_scorecard(quick: bool, seed: u64, snapshot: &str) -> Vec<SecEntry> {
    let budget = if quick { CampaignBudget::quick() } else { CampaignBudget::full() };
    scorecard(budget, seed)
        .iter()
        .map(|r| to_entry(r, snapshot, quick))
        .collect()
}

/// `--gate FILE`: fail (exit 1) when any (scenario, mode) campaign's
/// bypass rate regressed past its pinned value, or a defense mode's
/// detection rate dropped. Exit 2 when the pin file is unreadable.
fn run_gate(pin_path: &str) -> i32 {
    let text = match std::fs::read_to_string(pin_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read pin file {pin_path}: {e}");
            return 2;
        }
    };
    let pins = parse_sec_entries(&text, "pinned");
    let current = run_scorecard(true, GATE_SEED, "gate");
    let mut failed = false;
    let mut compared = 0usize;
    for e in &current {
        let pin = pins
            .iter()
            .find(|p| p.scenario == e.scenario && p.mode == e.mode);
        let pin = match pin {
            Some(p) => p,
            None => {
                eprintln!(
                    "gate: no pinned entry for {}/{} in {pin_path}, skipping",
                    e.scenario, e.mode
                );
                continue;
            }
        };
        compared += 1;
        let bypass_limit = pin.bypass_rate() + TOLERANCE;
        let detect_floor = (pin.detection_rate() - TOLERANCE).max(0.0);
        let bypass_bad = e.bypass_rate() > bypass_limit;
        let detect_bad = e.detection_rate() < detect_floor;
        let verdict = if bypass_bad || detect_bad { "FAIL" } else { "ok" };
        eprintln!(
            "gate: {}/{}: bypass {:.3} (pinned {:.3}, limit {:.3}), \
             detect {:.3} (pinned {:.3}, floor {:.3}) {verdict}",
            e.scenario,
            e.mode,
            e.bypass_rate(),
            pin.bypass_rate(),
            bypass_limit,
            e.detection_rate(),
            pin.detection_rate(),
            detect_floor,
        );
        if bypass_bad || detect_bad {
            failed = true;
        }
    }
    if compared == 0 {
        eprintln!("gate: nothing to compare against {pin_path}");
        return 2;
    }
    if failed {
        eprintln!("gate: security regression vs {pin_path}");
        1
    } else {
        0
    }
}

fn render(entries: &[SecEntry], quick: bool) -> String {
    let mut buf = String::new();
    buf.push_str("{\n");
    let _ = writeln!(
        buf,
        "  \"schema\": \"polar-bench/security/v1 \
         {{scenario, mode, trials, bypasses, detections, bypass_rate, \
         detection_rate, search_execs}}\","
    );
    let _ = writeln!(buf, "  \"quick\": {quick},");
    buf.push_str("  \"entries\": [\n");
    write_sec_entries(&mut buf, entries);
    buf.push_str("  ]\n}\n");
    buf
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut baseline: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut snapshot = "current".to_owned();
    let mut gate: Option<String> = None;
    let mut write_pin: Option<String> = None;
    let mut seed = GATE_SEED;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--baseline" => {
                i += 1;
                baseline = Some(args[i].clone());
            }
            "--gate" => {
                i += 1;
                gate = Some(args[i].clone());
            }
            "--write-pin" => {
                i += 1;
                write_pin = Some(args[i].clone());
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            "--snapshot" => {
                i += 1;
                snapshot = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("numeric --seed");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: security_json [--quick] [--seed N] [--snapshot LABEL] \
                     [--baseline FILE] [--out FILE] [--gate PINFILE] \
                     [--write-pin FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(pin) = gate {
        std::process::exit(run_gate(&pin));
    }

    if let Some(path) = write_pin {
        // The pin is always the quick budget at the gate seed: exactly
        // what `--gate` will rerun.
        let entries = run_scorecard(true, GATE_SEED, "pinned");
        std::fs::write(&path, render(&entries, true)).expect("write pin");
        eprintln!("wrote pin {path}");
        return;
    }

    let current = run_scorecard(quick, seed, &snapshot);

    let mut all: Vec<SecEntry> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                retain_prior_sec(parse_sec_entries(&text, "seed"), &snapshot, quick)
            }
            Err(e) => {
                eprintln!("warning: cannot read baseline {path}: {e}");
                Vec::new()
            }
        },
        None => Vec::new(),
    };
    all.extend(current);

    let buf = render(&all, quick);
    match out_path {
        Some(path) => {
            std::fs::write(&path, &buf).expect("write output");
            eprintln!("wrote {path}");
        }
        None => print!("{buf}"),
    }
}
