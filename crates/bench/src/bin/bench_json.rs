//! Machine-readable runtime-ops benchmark: emits `BENCH_runtime.json`.
//!
//! Measures the POLaR runtime's hot paths (`olr_malloc`/`olr_getptr`/
//! `olr_memcpy`/`olr_free` plus an interpreter member-access loop) and
//! writes one JSON entry per measurement:
//!
//! ```json
//! {"bench": "olr_getptr_cached", "mode": "polar", "ns_per_op": 12.3,
//!  "cache_hit_rate": 0.999, "metadata_bytes": 4096}
//! ```
//!
//! With `--baseline FILE` the entries of an earlier snapshot (same
//! schema, produced by this binary) are merged in under their recorded
//! snapshot label, and the headline `olr_getptr_cached` speedup between
//! the baseline and the current run is computed. This is how the repo
//! records its perf trajectory: `scripts/bench.sh` passes the committed
//! seed-era baseline so every rerun reports progress against PR 1.
//!
//! `--quick` runs every bench body once (no timing claims) so CI can
//! smoke-test that the benches still execute without paying for a full
//! measurement (`scripts/check.sh` uses this).
//!
//! `--gate FILE` runs a reduced-iteration timed measurement of the
//! gated `(bench, mode)` rows (`olr_malloc_free` and
//! `olr_getptr_cached`, each in stateful `polar` and derived
//! `polar-stateless` mode, `olr_malloc_free` with the placement
//! randomization policy armed, the lock-free `olr_getptr_mt4`, and the
//! magazine-path `olr_malloc_free_mt1`/`_mt4`), compares each against
//! the fastest pinned entry for that row in FILE, and exits non-zero
//! on a >25% regression. It also re-measures the pooled/stateless
//! `metadata_bytes` ratio (the Table III claim) and fails if it
//! shrinks >25% below the pinned ratio, re-runs the full-scale
//! session-store workload against its pinned `session_store_p99`
//! (1.5× band — tail latency is scheduler-noisy on shared hosts) and
//! `session_store_meta_per_live` (1.25×) rows, and — on machines that detect
//! ≥4 hardware threads — requires the `olr_malloc_free_mt4` aggregate
//! to stay within 1.5× of `olr_malloc_free_mt1` (the magazine scaling
//! claim; narrower machines print a skip notice instead). This keeps
//! the allocation fast path honest without paying for a full bench
//! run.
//!
//! The `_mtN` rows drive a [`ShardedRuntime`] with N threads; their
//! `ns_per_op` is *aggregate* (wall time ÷ total ops across threads), so
//! on a multi-core host it drops below the single-thread figure as the
//! shards scale, and on a single-vCPU host it reports the facade's
//! serialization cost honestly. Every entry records the machine's
//! detected parallelism (`std::thread::available_parallelism`) at
//! measurement time; the gate refuses to compare an `_mt*` pin measured
//! on a wider machine than the current one (it prints a skip notice
//! instead of a meaningless FAIL).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use polar_bench::json::{parse_entries, retain_prior, write_entries, Entry};
use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_ir::interp::{run, ExecLimits};
use polar_ir::trace::NopTracer;
use polar_ir::Inst;
use polar_runtime::{
    ObjectRuntime, PoolPolicy, RandomizeMode, RuntimeConfig, ShardedRuntime, SiteCache,
    StatelessPolicy,
};
use polar_workloads::contend::{run_contend, ContendConfig};
use polar_workloads::session_store::{run_session_store, SessionConfig};

/// Hardware threads the OS reports; 1 when detection fails (a container
/// with no affinity information makes no scaling claims).
fn detected_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn probe() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Probe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

/// Default-policy config (stateless derivation on for small classes).
fn big_config() -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    c.heap.capacity = 1 << 30;
    c
}

/// Stateful pooled config: the pre-stateless "polar" rows. Pinned
/// snapshots label these `mode: "polar"`, so the ablation rows that
/// measure the derived path must not leak into them.
fn pooled_config() -> RuntimeConfig {
    let mut c = big_config();
    c.stateless = StatelessPolicy::off();
    c
}

/// The session-store benchmark scale: ≥1M live vtable'd sessions under
/// Zipf-skewed traffic on 8 threads/8 shards (every shard's arena slice
/// is reachable, so the 512 MiB capacity covers the 256 MiB live set
/// with magazine slack). `--quick` shrinks it to a smoke run.
fn session_bench_config(quick: bool) -> SessionConfig {
    if quick {
        SessionConfig {
            threads: 2,
            sessions: 2_000,
            ops_per_thread: 500,
            shards: 2,
            heap_capacity: 32 << 20,
            ..Default::default()
        }
    } else {
        SessionConfig {
            threads: 8,
            sessions: 1 << 20,
            ops_per_thread: 50_000,
            shards: 8,
            heap_capacity: 512 << 20,
            ..Default::default()
        }
    }
}

/// Default config plus the placement-randomization policy the
/// `polar+placement` security column runs with (shuffle buffers, guard
/// gaps, arena offset entropy) — what address randomization costs on
/// the allocation path.
fn placement_config() -> RuntimeConfig {
    let mut c = big_config();
    c.heap.placement = polar_simheap::PlacementPolicy {
        shuffle_depth: 16,
        offset_entropy_bits: 8,
        guard_gap_bits: 6,
        seed: 0,
    };
    c
}

/// Best-of-`samples` time for `iters` runs of `op`, in ns per op.
fn time_loop(quick: bool, iters: u64, samples: u32, mut op: impl FnMut()) -> f64 {
    if quick {
        op();
        return 0.0;
    }
    // Warmup.
    for _ in 0..iters / 10 + 1 {
        op();
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn entry(
    bench: &str,
    mode: &str,
    ns_per_op: f64,
    rt: &ObjectRuntime,
) -> Entry {
    Entry {
        snapshot: "current".to_owned(),
        bench: bench.to_owned(),
        mode: mode.to_owned(),
        ns_per_op,
        cache_hit_rate: rt.stats().cache_hit_ratio(),
        metadata_bytes: rt.estimated_metadata_bytes(),
        quick: false,
        parallelism: detected_parallelism(),
    }
}

/// An `_mtN`-style entry over a sharded runtime.
fn mt_entry(bench: String, ns_per_op: f64, rt: &ShardedRuntime) -> Entry {
    Entry {
        snapshot: "current".to_owned(),
        bench,
        mode: "polar".to_owned(),
        ns_per_op,
        cache_hit_rate: rt.stats().cache_hit_ratio(),
        metadata_bytes: rt.estimated_metadata_bytes(),
        quick: false,
        parallelism: detected_parallelism(),
    }
}

/// Best-of-`samples` aggregate ns/op for `threads` workers each running
/// `body(thread, iters)` concurrently against a shared runtime.
fn time_mt(
    quick: bool,
    threads: u64,
    iters: u64,
    samples: u32,
    body: &(dyn Fn(u64, u64) + Sync),
) -> f64 {
    let run_once = |n: u64| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || body(t, n));
            }
        });
        t0.elapsed().as_nanos() as f64 / (threads * n) as f64
    };
    if quick {
        run_once(1);
        return 0.0;
    }
    run_once(iters / 10 + 1); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        best = best.min(run_once(iters));
    }
    best
}

fn run_benches(quick: bool) -> Vec<Entry> {
    let info = probe();
    let mut out = Vec::new();
    let samples = 5;

    // alloc + free pair, per-allocation (stateful pooled) and static
    // OLR.
    for (mode, label) in [
        (RandomizeMode::per_allocation(), "polar"),
        (RandomizeMode::static_olr(7), "static-olr"),
    ] {
        let mut rt = ObjectRuntime::new(mode, pooled_config());
        let ns = time_loop(quick, 200_000, samples, || {
            let a = rt.olr_malloc(&info).expect("alloc");
            rt.olr_free(a).expect("free");
        });
        out.push(entry("olr_malloc_free", label, ns, &rt));
    }

    // Ablations of the allocation fast path: pool disabled (every
    // allocation regenerates its stored plan), the derived stateless
    // path with virtual traps (the small-class default), and the
    // permute-only variant (no traps, pure Feistel layout).
    for (label, cfg) in [
        ("polar-unpooled", {
            let mut c = pooled_config();
            c.pool = PoolPolicy::disabled();
            c
        }),
        ("polar-stateless", {
            let mut c = big_config();
            c.stateless = StatelessPolicy::on();
            c
        }),
        ("stateless-notraps", {
            let mut c = big_config();
            c.stateless = StatelessPolicy::permute_only();
            c
        }),
        ("polar-placement", placement_config()),
    ] {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), cfg);
        let ns = time_loop(quick, 200_000, samples, || {
            let a = rt.olr_malloc(&info).expect("alloc");
            rt.olr_free(a).expect("free");
        });
        out.push(entry("olr_malloc_free", label, ns, &rt));
    }

    // The headline: cache-warm member access on a single hot object —
    // stateful pooled plans, then the derived stateless plan (same op,
    // plan cached in the SiteCache/PubSlot mirror after the first
    // access, so warm cost must land within a few percent).
    for (label, cfg) in [
        ("polar", pooled_config()),
        ("polar-stateless", big_config()),
    ] {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), cfg);
        let obj = rt.olr_malloc(&info).expect("alloc");
        rt.olr_getptr(obj, info.hash(), 1).expect("warm");
        let hash = info.hash();
        let ns = time_loop(quick, 2_000_000, samples, || {
            rt.olr_getptr(obj, hash, 1).expect("access");
        });
        out.push(entry("olr_getptr_cached", label, ns, &rt));
    }

    // Offset cache disabled (the paper's Section V-B ablation).
    {
        let mut config = pooled_config();
        config.offset_cache = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let obj = rt.olr_malloc(&info).expect("alloc");
        let hash = info.hash();
        let ns = time_loop(quick, 2_000_000, samples, || {
            rt.olr_getptr(obj, hash, 1).expect("access");
        });
        out.push(entry("olr_getptr_cold", "polar", ns, &rt));
    }

    // Member access round-robin over many live objects: stresses the
    // metadata *lookup* structure rather than one hot entry.
    {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), pooled_config());
        let objs: Vec<_> = (0..256)
            .map(|_| rt.olr_malloc(&info).expect("alloc"))
            .collect();
        for &o in &objs {
            rt.olr_getptr(o, info.hash(), 1).expect("warm");
        }
        let hash = info.hash();
        let mut i = 0usize;
        let ns = time_loop(quick, 2_000_000, samples, || {
            let o = objs[i & 255];
            i = i.wrapping_add(1);
            rt.olr_getptr(o, hash, 1).expect("access");
        });
        out.push(entry("olr_getptr_many_objects", "polar", ns, &rt));
    }

    // read_field: getptr + metadata width lookup + heap load.
    {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), pooled_config());
        let obj = rt.olr_malloc(&info).expect("alloc");
        rt.write_field(obj, info.hash(), 1, 42).expect("write");
        let hash = info.hash();
        let ns = time_loop(quick, 2_000_000, samples, || {
            rt.read_field(obj, hash, 1).expect("read");
        });
        out.push(entry("read_field_cached", "polar", ns, &rt));
    }

    // Object copy with re-randomization.
    {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), pooled_config());
        let src = rt.olr_malloc(&info).expect("alloc");
        let dst = rt.malloc_raw(128).expect("alloc");
        let ns = time_loop(quick, 200_000, samples, || {
            rt.olr_memcpy(dst, src, &info).expect("copy");
        });
        out.push(entry("olr_memcpy", "polar", ns, &rt));
    }

    // Interpreter loop: OlrGetptr + Load per iteration, through the IR
    // machine — exercises the per-GEP-site inline caches.
    {
        let (module, inner_iters) = interp_loop_module();
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), pooled_config());
        let quick_iters = if quick { 1 } else { 20 };
        let mut best = f64::INFINITY;
        for _ in 0..quick_iters {
            let t0 = Instant::now();
            let report = run(&module, &mut rt, &[], ExecLimits::default(), &mut NopTracer);
            let dt = t0.elapsed().as_nanos() as f64;
            assert!(report.result.is_ok(), "interp loop failed: {:?}", report.result);
            best = best.min(dt / inner_iters as f64);
        }
        out.push(entry(
            "interp_getptr_loop",
            "polar",
            if quick { 0.0 } else { best },
            &rt,
        ));
    }

    // Sharded runtime, N threads of malloc+free on their own handles —
    // the magazine front-end's home turf: pops and lock-free free
    // claims in the loop, the shard mutex only every `batch` ops. The
    // mt1 row anchors the speedup-vs-threads curve (and the gate's
    // mt4 ≤ 1.5 × mt1 scaling claim); each handle's home shard is
    // distinct, so the only shared state is the striped locks and the
    // atomic stats facade.
    for threads in [1u64, 2, 4, 8] {
        let rt = ShardedRuntime::new(
            RandomizeMode::per_allocation(),
            pooled_config(),
            threads as usize,
        );
        let ns = time_mt(quick, threads, 50_000, samples, &|t, n| {
            let mut h = rt.handle(t);
            for _ in 0..n {
                let a = h.olr_malloc(&info).expect("alloc");
                h.olr_free(a).expect("free");
            }
        });
        out.push(mt_entry(format!("olr_malloc_free_mt{threads}"), ns, &rt));
    }

    // The speedup-vs-threads curve: N threads each hammering cached
    // member access on their own hot object through a per-thread
    // [`ShardHandle`] with a per-site inline cache — the shape
    // instrumented GEP sites actually execute (the interpreter calls
    // `olr_getptr_ic` with a per-site cache from a thread handle). The
    // handle counts shapes into a plain per-thread sheet (flushed when
    // it drops, inside the timed region), so the loop carries no
    // per-op atomic RMW; the reads resolve on the optimistic seqlock
    // path and adding threads must not serialize on the shard mutexes —
    // the curve is the evidence (read it next to each row's recorded
    // `parallelism`).
    for threads in [1u64, 2, 4, 8] {
        let rt = ShardedRuntime::new(
            RandomizeMode::per_allocation(),
            pooled_config(),
            threads.max(2) as usize,
        );
        let objs: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = rt.handle(t);
                let obj = h.olr_malloc(&info).expect("alloc");
                rt.olr_getptr(obj, info.hash(), 1).expect("warm");
                obj
            })
            .collect();
        let hash = info.hash();
        let ns = time_mt(quick, threads, 500_000, samples, &|t, n| {
            let mut h = rt.handle(t);
            let obj = objs[t as usize];
            let mut ic = SiteCache::empty();
            for _ in 0..n {
                h.olr_getptr_ic(obj, hash, 1, &mut ic).expect("access");
            }
        });
        out.push(mt_entry(format!("olr_getptr_mt{threads}"), ns, &rt));
    }

    // Same shape through read_field: snapshot + validated heap load.
    {
        let threads = 4u64;
        let rt = ShardedRuntime::new(
            RandomizeMode::per_allocation(),
            pooled_config(),
            threads as usize,
        );
        let objs: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = rt.handle(t);
                let obj = h.olr_malloc(&info).expect("alloc");
                h.write_field(obj, info.hash(), 1, 42).expect("init");
                obj
            })
            .collect();
        let hash = info.hash();
        let ns = time_mt(quick, threads, 500_000, samples, &|t, n| {
            let mut h = rt.handle(t);
            let obj = objs[t as usize];
            for _ in 0..n {
                h.read_field(obj, hash, 1).expect("read");
            }
        });
        out.push(mt_entry("read_field_mt4".to_owned(), ns, &rt));
    }

    // Mixed 90/10 read/write contention over one shared object set (the
    // polar-workloads contend mix): readers race the writers' seqlock
    // windows, so this row includes genuine retry/fallback traffic.
    {
        let threads = 4u64;
        let ops = if quick { 100 } else { 100_000 };
        let cfg = ContendConfig {
            threads,
            ops_per_thread: ops,
            write_pct: 10,
            ..Default::default()
        };
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..if quick { 1 } else { samples } {
            let t0 = Instant::now();
            let report = run_contend(RandomizeMode::per_allocation(), cfg);
            let dt = t0.elapsed().as_nanos() as f64;
            best = best.min(dt / (threads * ops) as f64);
            last = Some(report);
        }
        let report = last.expect("contend ran");
        out.push(Entry {
            snapshot: "current".to_owned(),
            bench: "mixed_rw_mt4".to_owned(),
            mode: "polar".to_owned(),
            ns_per_op: if quick { 0.0 } else { best },
            cache_hit_rate: report.stats.cache_hit_ratio(),
            metadata_bytes: report.metadata_bytes,
            quick: false,
            parallelism: detected_parallelism(),
        });
    }

    // Session store: ≥1M live objects, Zipf-keyed read/write/refresh
    // traffic, oracle-verified reads. One full run yields the latency
    // distribution and the footprint, reported as four rows:
    // `session_store_p{50,99,999}` carry the traffic-op latency
    // percentile in `ns_per_op`, and `session_store_meta_per_live`
    // carries POLaR bookkeeping **bytes per live session** in
    // `ns_per_op` (the units are bytes, not nanoseconds — the field is
    // just the gated scalar; the pinned gate fails if it grows >25%).
    // `cache_hit_rate` on these rows is the magazine hit rate.
    {
        let cfg = session_bench_config(quick);
        let live = cfg.sessions;
        let r = run_session_store(RandomizeMode::per_allocation(), cfg);
        assert_eq!(r.live_objects, live, "session store lost sessions");
        let total_meta = (r.metadata_bytes_per_live * r.live_objects as f64) as usize;
        for (bench, value) in [
            ("session_store_p50", r.p50_ns as f64),
            ("session_store_p99", r.p99_ns as f64),
            ("session_store_p999", r.p999_ns as f64),
            ("session_store_meta_per_live", r.metadata_bytes_per_live),
        ] {
            out.push(Entry {
                snapshot: "current".to_owned(),
                bench: bench.to_owned(),
                mode: "polar".to_owned(),
                ns_per_op: if quick { 0.0 } else { value },
                cache_hit_rate: Some(r.magazine_hit_rate),
                metadata_bytes: total_meta,
                quick: false,
                parallelism: detected_parallelism(),
            });
        }
    }

    out
}

/// Reduced-iteration timed measurements of the gated hot paths.
/// Cheaper than `run_benches` (seconds, not minutes) but still real
/// measurements, unlike `--quick`. Each closure is only invoked when
/// the gate decides the pin is comparable on this machine.
fn gate_measurements() -> Vec<(&'static str, &'static str, Box<dyn FnOnce() -> f64>)> {
    // Best-of-8 over short loops: cheap (tens of ms total) but stable
    // enough that scheduler noise doesn't trip the 25% tolerance.
    let samples = 8;

    let malloc_free = |cfg: RuntimeConfig| {
        Box::new(move || {
            let info = probe();
            let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), cfg);
            time_loop(false, 40_000, samples, || {
                let a = rt.olr_malloc(&info).expect("alloc");
                rt.olr_free(a).expect("free");
            })
        })
    };

    let getptr_cached = |cfg: RuntimeConfig| {
        Box::new(move || {
            let info = probe();
            let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), cfg);
            let obj = rt.olr_malloc(&info).expect("alloc");
            let hash = info.hash();
            rt.olr_getptr(obj, hash, 1).expect("warm");
            time_loop(false, 500_000, samples, || {
                rt.olr_getptr(obj, hash, 1).expect("access");
            })
        })
    };

    // The lock-free read path, same shape as the olr_getptr_mt4 bench
    // row but with reduced iterations.
    let getptr_mt4 = Box::new(move || {
        let info = probe();
        let threads = 4u64;
        let rt = ShardedRuntime::new(
            RandomizeMode::per_allocation(),
            pooled_config(),
            threads as usize,
        );
        let objs: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = rt.handle(t);
                let obj = h.olr_malloc(&info).expect("alloc");
                rt.olr_getptr(obj, info.hash(), 1).expect("warm");
                obj
            })
            .collect();
        let hash = info.hash();
        // Full bench-row iteration count and double the samples: at
        // reduced iterations the thread spawn/join overhead dominates
        // the ~8 ns op, and on a shared single-vCPU host whole samples
        // get stolen by ambient load — best-of-16 only needs one clean
        // window to measure the true cost.
        time_mt(false, threads, 500_000, samples * 2, &|t, n| {
            let mut h = rt.handle(t);
            let obj = objs[t as usize];
            let mut ic = SiteCache::empty();
            for _ in 0..n {
                h.olr_getptr_ic(obj, hash, 1, &mut ic).expect("access");
            }
        })
    });

    let stateless_cfg = || {
        let mut c = big_config();
        c.stateless = StatelessPolicy::on();
        c
    };
    vec![
        (
            "olr_malloc_free",
            "polar",
            malloc_free(pooled_config()) as Box<dyn FnOnce() -> f64>,
        ),
        ("olr_malloc_free", "polar-stateless", malloc_free(stateless_cfg())),
        ("olr_malloc_free", "polar-placement", malloc_free(placement_config())),
        ("olr_getptr_cached", "polar", getptr_cached(pooled_config())),
        ("olr_getptr_cached", "polar-stateless", getptr_cached(stateless_cfg())),
        ("olr_getptr_mt4", "polar", getptr_mt4),
        (
            "olr_malloc_free_mt1",
            "polar",
            Box::new(|| measure_malloc_free_mt(1)),
        ),
        (
            "olr_malloc_free_mt4",
            "polar",
            Box::new(|| measure_malloc_free_mt(4)),
        ),
    ]
}

/// The magazine-path malloc/free aggregate at the bench rows' own
/// iteration count (the loop is the measurement; spawn/join overhead
/// amortizes over 50k pairs). Used both for the generic pin-compares
/// and the mt4-vs-mt1 scaling ratio.
fn measure_malloc_free_mt(threads: u64) -> f64 {
    let info = probe();
    let rt = ShardedRuntime::new(
        RandomizeMode::per_allocation(),
        pooled_config(),
        threads as usize,
    );
    time_mt(false, threads, 50_000, 16, &|t, n| {
        let mut h = rt.handle(t);
        for _ in 0..n {
            let a = h.olr_malloc(&info).expect("alloc");
            h.olr_free(a).expect("free");
        }
    })
}

/// The Table III claim, measured: metadata bytes under the stateful
/// pooled config vs the derived stateless config, after the *same*
/// malloc/free churn the pinned `olr_malloc_free` rows ran (the
/// `time_loop(.., 200_000, 5, ..)` shape: warmup plus 5 samples —
/// 1,020,001 alloc/free pairs). Methodology matters here: under churn
/// the pooled interner keeps absorbing fresh pool plans while the
/// stateless interner is capped at the class's `n!` derived layouts, so
/// the pinned ratio is only reproducible by churning the same amount —
/// a live-population measurement would be dominated by the shadow slab
/// both modes share and gate nothing. Returns (pooled, stateless).
fn gate_metadata_bytes() -> (usize, usize) {
    const CHURN: usize = 200_000 / 10 + 1 + 5 * 200_000;
    let info = probe();
    let run = |cfg: RuntimeConfig| -> usize {
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), cfg);
        for _ in 0..CHURN {
            let a = rt.olr_malloc(&info).expect("alloc");
            rt.olr_free(a).expect("free");
        }
        rt.estimated_metadata_bytes()
    };
    let mut stateless = big_config();
    stateless.stateless = StatelessPolicy::on();
    (run(pooled_config()), run(stateless))
}

/// `--gate FILE`: fail (exit 1) if any gated bench regresses >25%
/// against the fastest pinned polar-mode entry for it in FILE. A pin
/// measured with more hardware parallelism than this machine detects is
/// skipped with a notice — an `_mt*` scaling claim from a wider box
/// cannot be honestly re-checked on a narrower one.
fn run_gate(pin_path: &str) -> i32 {
    const TOLERANCE: f64 = 1.25;
    let text = match std::fs::read_to_string(pin_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read pin file {pin_path}: {e}");
            return 2;
        }
    };
    let pins = parse_entries(&text, "pinned");
    let here = detected_parallelism();
    let mut failed = false;
    for (bench, mode, measure) in gate_measurements() {
        let pinned = pins
            .iter()
            .filter(|e| e.bench == bench && e.mode == mode && e.ns_per_op > 0.0)
            .min_by(|a, b| a.ns_per_op.total_cmp(&b.ns_per_op));
        let Some(pin) = pinned else {
            eprintln!("gate: no pinned {mode} entry for {bench} in {pin_path}, skipping");
            continue;
        };
        if pin.parallelism > here {
            eprintln!(
                "gate: {bench}/{mode}: pin measured with parallelism {}, this machine \
                 detects {here} — skipping (scaling claim not comparable)",
                pin.parallelism
            );
            continue;
        }
        let measured = measure();
        let limit = pin.ns_per_op * TOLERANCE;
        let verdict = if measured > limit { "FAIL" } else { "ok" };
        eprintln!(
            "gate: {bench}/{mode}: {measured:.2} ns/op (pinned {:.2}, limit {limit:.2}) {verdict}",
            pin.ns_per_op
        );
        if measured > limit {
            failed = true;
        }
    }
    // Metadata gate: the stateless path's raison d'être is the Table III
    // metadata reduction. Re-measure the pooled/stateless byte ratio
    // under the pinned rows' own churn workload and require it to stay
    // within TOLERANCE of the ratio those rows recorded.
    let pin_meta = |mode: &str| {
        pins.iter()
            .find(|e| e.bench == "olr_malloc_free" && e.mode == mode && e.metadata_bytes > 0)
            .map(|e| e.metadata_bytes as f64)
    };
    match (pin_meta("polar"), pin_meta("polar-stateless")) {
        (Some(pool_pin), Some(sl_pin)) => {
            let pinned_ratio = pool_pin / sl_pin;
            let (pool_now, sl_now) = gate_metadata_bytes();
            let ratio = pool_now as f64 / sl_now.max(1) as f64;
            let floor = pinned_ratio / TOLERANCE;
            let verdict = if ratio < floor { "FAIL" } else { "ok" };
            eprintln!(
                "gate: metadata_bytes ratio pooled/stateless: {ratio:.1}x \
                 ({pool_now}/{sl_now} B; pinned {pinned_ratio:.1}x, floor {floor:.1}x) {verdict}"
            );
            if ratio < floor {
                failed = true;
            }
        }
        _ => eprintln!(
            "gate: no pinned metadata_bytes for olr_malloc_free polar+polar-stateless, \
             skipping metadata ratio check"
        ),
    }
    // Magazine scaling claim: with ≥4 hardware threads the mt4
    // aggregate must stay within 1.5× of mt1 — the front-end's whole
    // point is that adding threads costs magazine pops and lock-free
    // claims, not shard-mutex convoys. A narrower machine cannot
    // re-check the claim (4 workers on 1 vCPU measure the scheduler,
    // not the allocator), so it skips with a notice, same as an
    // over-pinned `_mt*` row.
    if here >= 4 {
        let mt1 = measure_malloc_free_mt(1);
        let mt4 = measure_malloc_free_mt(4);
        let limit = mt1 * 1.5;
        let verdict = if mt4 > limit { "FAIL" } else { "ok" };
        eprintln!(
            "gate: olr_malloc_free_mt4 scaling: {mt4:.2} ns/op aggregate vs mt1 \
             {mt1:.2} (limit 1.5x = {limit:.2}) {verdict}"
        );
        if mt4 > limit {
            failed = true;
        }
    } else {
        eprintln!(
            "gate: olr_malloc_free_mt4 scaling: this machine detects parallelism \
             {here} < 4 — skipping the mt4 <= 1.5x mt1 check (scaling claim not \
             measurable here)"
        );
    }
    // Session-store gate: one full-scale run (≥1M live sessions) checked
    // against the pinned p99 latency and metadata-bytes-per-live rows.
    // Both scalars ride in `ns_per_op` (the meta row's units are bytes);
    // both fail on >25% growth. Skipped with a notice when the pin was
    // measured on a wider machine or no pin exists yet.
    {
        fn comparable_pin<'a>(
            pins: &'a [Entry],
            bench: &str,
            here: usize,
            pin_path: &str,
        ) -> Option<&'a Entry> {
            let pin = pins
                .iter()
                .filter(|e| e.bench == bench && e.mode == "polar" && e.ns_per_op > 0.0)
                .min_by(|a, b| a.ns_per_op.total_cmp(&b.ns_per_op));
            match pin {
                None => {
                    eprintln!("gate: no pinned polar entry for {bench} in {pin_path}, skipping");
                    None
                }
                Some(p) if p.parallelism > here => {
                    eprintln!(
                        "gate: {bench}: pin measured with parallelism {}, this machine \
                         detects {here} — skipping (latency claim not comparable)",
                        p.parallelism
                    );
                    None
                }
                some => some,
            }
        }
        let p99_pin = comparable_pin(&pins, "session_store_p99", here, pin_path);
        let meta_pin = comparable_pin(&pins, "session_store_meta_per_live", here, pin_path);
        if p99_pin.is_some() || meta_pin.is_some() {
            let r = run_session_store(RandomizeMode::per_allocation(), session_bench_config(false));
            // The p99 gets a looser 1.5× tolerance than the throughput
            // rows: a tail-latency percentile on a shared host is
            // scheduler-dominated (observed run-to-run spread ~1.4× on
            // a single vCPU), so the 25% band would flake. The
            // metadata-per-live figure is deterministic per seed and
            // keeps the tight band.
            const P99_TOLERANCE: f64 = 1.5;
            for (pin, bench, measured, tolerance) in [
                (p99_pin, "session_store_p99", r.p99_ns as f64, P99_TOLERANCE),
                (meta_pin, "session_store_meta_per_live", r.metadata_bytes_per_live, TOLERANCE),
            ] {
                let Some(pin) = pin else { continue };
                let limit = pin.ns_per_op * tolerance;
                let verdict = if measured > limit { "FAIL" } else { "ok" };
                eprintln!(
                    "gate: {bench}: {measured:.2} (pinned {:.2}, limit {limit:.2}) {verdict}",
                    pin.ns_per_op
                );
                if measured > limit {
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("gate: perf regression >25% vs {pin_path}");
        1
    } else {
        0
    }
}

/// Build a module whose entry allocates one object and then runs a tight
/// loop of `OlrGetptr` + `Load` on it; returns the loop trip count.
fn interp_loop_module() -> (polar_ir::Module, u64) {
    use polar_ir::builder::ModuleBuilder;
    use polar_ir::{BinOp, CmpOp};

    const ITERS: u64 = 1_000_000;
    let mut mb = ModuleBuilder::new("bench_interp_loop");
    let class = mb
        .add_class(
            ClassDecl::builder("Probe")
                .field("vtable", FieldKind::VtablePtr)
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I32)
                .field("c", FieldKind::I32)
                .build(),
        )
        .expect("class");
    let mut f = mb.function("main", 0);
    let bb = f.entry_block();
    let body = f.block();
    let done = f.block();
    let obj = f.reg();
    f.push(bb, Inst::OlrMalloc { dst: obj, class });
    let i = f.const_(bb, 0);
    let acc = f.const_(bb, 0);
    f.jmp(bb, body);
    let one = f.const_(body, 1);
    let h = f.reg();
    f.push(body, Inst::OlrGetptr { dst: h, obj, class, field: 1 });
    let v = f.load(body, h, 8);
    let acc2 = f.bin(body, BinOp::Add, acc, v);
    f.mov_to(body, acc, acc2);
    let i2 = f.bin(body, BinOp::Add, i, one);
    f.mov_to(body, i, i2);
    let cond = f.cmpi(body, CmpOp::Lt, i, ITERS);
    f.br(body, cond, body, done);
    f.ret(done, Some(acc));
    mb.finish_function(f);
    (mb.build().expect("module"), ITERS)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut baseline: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut snapshot = "current".to_owned();
    let mut gate: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--baseline" => {
                i += 1;
                baseline = Some(args[i].clone());
            }
            "--gate" => {
                i += 1;
                gate = Some(args[i].clone());
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            "--snapshot" => {
                i += 1;
                snapshot = args[i].clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_json [--quick] [--snapshot LABEL] \
                     [--baseline FILE] [--out FILE] [--gate PINFILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(pin) = gate {
        std::process::exit(run_gate(&pin));
    }

    let mut current = run_benches(quick);
    for e in &mut current {
        e.snapshot = snapshot.clone();
        e.quick = quick;
    }

    // Merge in prior snapshots under the like-for-like rule: a full run
    // replaces all rows with its label, a quick run replaces only prior
    // quick rows (it must never clobber a real measurement).
    let baseline_entries: Vec<Entry> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => retain_prior(parse_entries(&text, "seed"), &snapshot, quick),
            Err(e) => {
                eprintln!("warning: cannot read baseline {path}: {e}");
                Vec::new()
            }
        },
        None => Vec::new(),
    };

    // Headline: speedup of the cache-warm getptr loop vs the baseline.
    let headline = |entries: &[Entry]| -> Option<f64> {
        entries
            .iter()
            .find(|e| e.bench == "olr_getptr_cached" && e.mode == "polar" && !e.quick)
            .map(|e| e.ns_per_op)
    };
    let speedup = match (headline(&baseline_entries), headline(&current)) {
        (Some(before), Some(after)) if after > 0.0 && !quick => Some(before / after),
        _ => None,
    };

    let mut buf = String::new();
    buf.push_str("{\n");
    let _ = writeln!(
        buf,
        "  \"schema\": \"polar-bench/runtime-ops/v2 \
         {{bench, mode, ns_per_op, cache_hit_rate, metadata_bytes, quick, parallelism}}\","
    );
    let _ = writeln!(buf, "  \"quick\": {quick},");
    match speedup {
        Some(s) => {
            let _ = writeln!(buf, "  \"speedup_olr_getptr_cached\": {s:.2},");
        }
        None => {
            let _ = writeln!(buf, "  \"speedup_olr_getptr_cached\": null,");
        }
    }
    buf.push_str("  \"entries\": [\n");
    let mut all = baseline_entries;
    all.extend(current);
    write_entries(&mut buf, &all);
    buf.push_str("  ]\n}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &buf).expect("write output");
            eprintln!("wrote {path}");
            if let Some(s) = speedup {
                eprintln!("olr_getptr_cached speedup vs baseline: {s:.2}x");
            }
        }
        None => print!("{buf}"),
    }
}
