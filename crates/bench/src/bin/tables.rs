//! Regenerate every table and figure of the POLaR paper.
//!
//! ```text
//! cargo run --release -p polar-bench --bin tables -- all
//! cargo run --release -p polar-bench --bin tables -- fig6 table2 ...
//! ```
//!
//! Experiments: `fig2 table1 fig6 table2 fig7 table3 table4 compat
//! security adaptive placement ablation` (or `all`). See EXPERIMENTS.md
//! for the paper-vs-measured discussion.

use std::collections::HashSet;
use std::time::Duration;

use polar_attacks::harness::{trials, Attacker, Defense};
use polar_attacks::search::{scorecard, CampaignBudget, SecMode};
use polar_attacks::{cve, diversity, scenarios};
use polar_bench::{
    ablation_rows, fig6_rows, js_rows, sites_rows, table1_rows, table2_row, table3_rows,
    JsRow,
};
use polar_instrument::{check_compatibility, instrument, InstrumentOptions};
use polar_ir::interp::{run_native, run_with_mode, ExecLimits};
use polar_runtime::{RandomizeMode, RuntimeConfig, RuntimeError, ShardedRuntime};
use polar_workloads::{gc, js};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn fig2() {
    heading("Figure 2 — layout diversity: native vs compile-time OLR vs POLaR");
    println!("(64 instances of one class, two simulated executions)\n");
    for row in diversity::figure2(64) {
        println!("  {row}");
    }
    println!("\n  native:     one layout, always (Figure 1's fixed constants)");
    println!("  static OLR: one layout per binary, identical on re-execution");
    println!("  POLaR:      fresh layout per allocation AND per execution");
}

fn table1() {
    heading("Table I — objects reported by TaintClass");
    println!("{:<22} {:>10}   sample tainted classes", "App", "# tainted");
    println!("{}", "-".repeat(72));
    for row in table1_rows() {
        println!(
            "{:<22} {:>10}   {}",
            row.name,
            row.tainted,
            if row.samples.is_empty() { "-".to_owned() } else { row.samples.join(", ") }
        );
    }
}

fn fig6(reps: u32) {
    heading("Figure 6 — SPEC2006 performance overhead of POLaR");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "App", "native (ms)", "POLaR (ms)", "overhead"
    );
    println!("{}", "-".repeat(54));
    let rows = fig6_rows(reps);
    for r in &rows {
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>9.1}%",
            r.name,
            ms(r.native),
            ms(r.polar),
            r.overhead
        );
    }
    let worst = rows.iter().max_by(|a, b| a.overhead.total_cmp(&b.overhead)).unwrap();
    let mean = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
    println!("{}", "-".repeat(54));
    println!("mean overhead {:.1}%; worst: {} at {:.1}%", mean, worst.name, worst.overhead);
}

fn js_tables(reps: u32) -> Vec<Vec<JsRow>> {
    [js::Suite::Sunspider, js::Suite::Kraken, js::Suite::Octane, js::Suite::Jetstream]
        .into_iter()
        .map(|s| js_rows(s, reps))
        .collect()
}

fn table2(all_rows: &[Vec<JsRow>]) {
    heading("Table II — ChakraCore benchmark aggregate (default vs POLaR)");
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>8}",
        "Benchmark", "Default", "POLaR", "DIFF", "Ratio"
    );
    println!("{}", "-".repeat(62));
    for rows in all_rows {
        let t2 = table2_row(rows);
        let unit = if t2.suite.higher_is_better() { "(score)" } else { "(ms)" };
        println!(
            "{:<12} {:>12.1} {} {:>9.1} {} {:>10.1} {:>7.2}%",
            t2.suite.name(),
            t2.default_result,
            unit,
            t2.polar_result,
            unit,
            t2.diff(),
            t2.ratio_pct()
        );
    }
    println!("\n* Sunspider, Kraken: smaller is better (time); Octane, JetStream: score");
}

fn fig7(all_rows: &[Vec<JsRow>]) {
    heading("Figure 7 — per-subtest JS benchmark results (default vs POLaR)");
    for rows in all_rows {
        let suite = rows[0].suite;
        println!("\n-- {} --", suite.name());
        if suite.higher_is_better() {
            println!("{:<28} {:>12} {:>12}", "subtest", "default", "POLaR");
            for r in rows {
                println!(
                    "{:<28} {:>12.1} {:>12.1}",
                    r.name,
                    JsRow::score(r.default_time),
                    JsRow::score(r.polar_time)
                );
            }
        } else {
            println!("{:<28} {:>12} {:>12}", "subtest", "default ms", "POLaR ms");
            for r in rows {
                println!(
                    "{:<28} {:>12.2} {:>12.2}",
                    r.name,
                    ms(r.default_time),
                    ms(r.polar_time)
                );
            }
        }
    }
}

fn table3() {
    heading("Table III — object events against randomized objects (POLaR build)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>7} {:>10} {:>8}",
        "App", "Alloc", "Free", "Memcpy", "Member acc", "Cache hit", "hit %", "Pool hit", "refills"
    );
    println!("{}", "-".repeat(104));
    for row in table3_rows() {
        let s = row.stats;
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>6.1}% {:>10} {:>8}",
            row.name,
            s.allocations,
            s.frees,
            s.memcpys,
            s.member_accesses,
            s.cache_hits,
            s.cache_hit_ratio().unwrap_or(0.0) * 100.0,
            s.pool_hits,
            s.pool_refills
        );
    }
}

fn table4() {
    heading("Table IV — TaintClass discovery of exploit-related libpng objects");
    println!("(six planted minipng CVEs; ground truth = objects each exploit abuses)\n");
    for row in cve::table4() {
        println!("  {row}");
    }
    println!("\nExploit outcomes (native vs POLaR build):");
    for eval in cve::evaluate_all(0xD511) {
        println!("  {eval}");
    }
}

fn compat() {
    heading("Compatibility (Section V-A) — mark-sweep GC works, Orinoco-style fails");
    for (name, module) in
        [("chakra-style mark-sweep", gc::mark_sweep()), ("v8-style orinoco", gc::orinoco_like())]
    {
        let warnings = check_compatibility(&module);
        let native = run_native(&module, &[], ExecLimits::default());
        let (hardened, _) = instrument(&module, &InstrumentOptions::default());
        let polar = run_with_mode(
            &hardened,
            RandomizeMode::per_allocation(),
            RuntimeConfig::default(),
            &[],
            ExecLimits::default(),
        );
        let compatible = match (&native.result, &polar.result) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
        println!(
            "  {:<26} {:>3} pass warnings; instrumented run {}",
            name,
            warnings.len(),
            if compatible { "MATCHES native (compatible)" } else { "DIVERGES (incompatible)" }
        );
    }
}

fn security() {
    heading("Security (Section III) — attack trials across defenses");
    println!(
        "{:<16} {:<18} {:<14} {:>9} {:>9} {:>12}",
        "attack", "defense", "attacker", "hijack %", "detect %", "determinism"
    );
    println!("{}", "-".repeat(84));
    for s in scenarios::all() {
        let configs: Vec<(&str, Box<dyn Fn(u64) -> Defense>, Attacker)> = vec![
            ("native", Box::new(|_| Defense::Native), Attacker::BinaryAware),
            (
                "static-olr",
                Box::new(|_| Defense::StaticOlr { binary_seed: 0xB1A5 }),
                Attacker::NaturalLayout,
            ),
            (
                "static-olr",
                Box::new(|_| Defense::StaticOlr { binary_seed: 0xB1A5 }),
                Attacker::BinaryAware,
            ),
            ("polar", Box::new(|t| Defense::polar(0x9000 + t)), Attacker::BinaryAware),
            (
                "polar(no-detect)",
                Box::new(|t| Defense::Polar { process_seed: 0xA000 + t, detect: false }),
                Attacker::BinaryAware,
            ),
            (
                "polar-stateless",
                Box::new(|t| Defense::polar_stateless(0xB000 + t)),
                Attacker::BinaryAware,
            ),
            (
                "stateless-notraps",
                Box::new(|t| Defense::polar_stateless_notraps(0xB800 + t)),
                Attacker::BinaryAware,
            ),
            ("sharded", Box::new(|t| Defense::sharded(0xC000 + t)), Attacker::BinaryAware),
            ("redzone", Box::new(|_| Defense::Redzone), Attacker::BinaryAware),
        ];
        for (label, factory, attacker) in configs {
            let stats = trials(&s, factory, attacker, 40);
            println!(
                "{:<16} {:<18} {:<14} {:>8.1}% {:>8.1}% {:>12.2}",
                s.kind.label(),
                label,
                match attacker {
                    Attacker::NaturalLayout => "binary hidden",
                    Attacker::BinaryAware => "binary known",
                },
                stats.hijack_rate() * 100.0,
                stats.detection_rate() * 100.0,
                stats.determinism()
            );
        }
    }
}

fn adaptive() {
    let budget = CampaignBudget::quick();
    heading("Adaptive attacker — evolved attack tapes, bypass probability per mode");
    println!(
        "(each campaign: {} search execs, then {} fresh-seed replays of the best",
        budget.search_execs, budget.eval_trials
    );
    println!(" evolved tape; seed-deterministic — full budget in BENCH_security.json)\n");
    println!(
        "{:<18} {:<16} {:>11} {:>9} {:>9} {:>9}",
        "scenario", "defense", "search hits", "tape len", "bypass %", "detect %"
    );
    println!("{}", "-".repeat(78));
    for r in scorecard(budget, 0x5EC5_CA4D) {
        println!(
            "{:<18} {:<16} {:>11} {:>9} {:>8.1}% {:>8.1}%",
            r.scenario,
            r.mode.label(),
            r.successes_during_search,
            r.tape_len,
            r.bypass_rate() * 100.0,
            r.detection_rate() * 100.0
        );
    }
    println!("\n  (the attacker evolves allocation/free/spray/probe tapes per mode;");
    println!("   native and static-OLR fall once searched, POLaR stays probabilistic)");
}

fn sharded_detect() {
    use std::sync::Arc;

    use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};

    heading("Sharded runtime — attack-detection counters folded across shards");
    let threads = 4u64;
    let mut config = RuntimeConfig::default();
    config.heap.capacity = 64 << 20;
    let rt = ShardedRuntime::new(RandomizeMode::per_allocation(), config, threads as usize);
    let victim = Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("DetectVictim")
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I64)
            .field("fp", FieldKind::FnPtr)
            .build(),
    ));
    let confused = Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("DetectConfused")
            .field("x", FieldKind::I64)
            .field("y", FieldKind::I64)
            .build(),
    ));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rt = &rt;
            let victim = &victim;
            let confused = &confused;
            scope.spawn(move || {
                let mut h = rt.handle(t);
                for _ in 0..50 {
                    // Use-after-free.
                    let a = h.olr_malloc(victim).expect("alloc");
                    h.olr_free(a).expect("free");
                    assert!(matches!(
                        h.read_field(a, victim.hash(), 0),
                        Err(RuntimeError::UseAfterFree { .. })
                    ));
                    // Type confusion.
                    let b = h.olr_malloc(victim).expect("alloc");
                    assert!(matches!(
                        h.read_field(b, confused.hash(), 0),
                        Err(RuntimeError::ClassMismatch { .. })
                    ));
                    h.olr_free(b).expect("free");
                    // Double free.
                    let c = h.olr_malloc(victim).expect("alloc");
                    h.olr_free(c).expect("free");
                    assert!(matches!(
                        h.olr_free(c),
                        Err(RuntimeError::DoubleFree(_))
                    ));
                    // Overflow into a booby trap, caught on free.
                    let d = h.olr_malloc(victim).expect("alloc");
                    let canaried = rt
                        .object_meta(d)
                        .and_then(|m| {
                            m.plan.dummies().iter().find(|x| x.canary.is_some()).cloned()
                        });
                    match canaried {
                        Some(dummy) => {
                            let slot = d.offset(u64::from(dummy.offset));
                            let cur = rt.heap_read_uint(slot, 1).expect("read");
                            rt.heap_write_uint(slot, !cur & 0xFF, 1).expect("write");
                            assert!(matches!(
                                h.olr_free(d),
                                Err(RuntimeError::TrapTriggered(_))
                            ));
                        }
                        None => h.olr_free(d).expect("free"),
                    }
                }
            });
        }
    });
    let stats = rt.stats();
    println!("({threads} threads, 50 rounds each of UAF / confusion / double-free /");
    println!(" trap-corrupting overflow against a {}-shard runtime)\n", threads);
    println!("  uaf_detected         {:>8}", stats.uaf_detected);
    println!("  mismatch_detected    {:>8}", stats.mismatch_detected);
    println!("  double_free_detected {:>8}", stats.double_free_detected);
    println!("  traps_triggered      {:>8}", stats.traps_triggered);
    println!("  trap_scans           {:>8}", stats.trap_scans);
    println!("  dummy_touches        {:>8}", stats.dummy_touches);
    println!("  total_detections     {:>8}", stats.total_detections());
    println!("\n  (folded from the per-shard atomic stats; before this table only the");
    println!("   single-shard facade surfaced its detection counters)");
}

fn sites() {
    heading("Site density & metadata footprint (POLaR build of each workload)");
    println!(
        "{:<16} {:>7} {:>9} {:>10} {:>7} {:>10} {:>11} {:>10}",
        "App", "sites", "density", "meta recs", "plans", "dedup", "meta bytes", "heap peak"
    );
    println!("{}", "-".repeat(88));
    for r in sites_rows() {
        println!(
            "{:<16} {:>7} {:>8.1}% {:>10} {:>7} {:>10} {:>11} {:>10}",
            r.name,
            r.object_sites,
            r.site_density * 100.0,
            r.meta_records,
            r.unique_plans,
            r.dedup_saved,
            r.metadata_bytes,
            r.heap_peak
        );
    }
    println!("\n(sites = static alloc/gep/copy/free instructions; dedup = metadata");
    println!(" records collapsed by plan interning, the Section V-B optimization)");
}

fn probing() {
    heading("Reproduction problem (Section III-B2) — probing attacker, no binary");
    println!("(heap-overflow target; attacker enumerates pointer placements run by run,");
    println!(" demanding 5 consecutive successes before shipping the exploit)\n");
    for result in polar_attacks::probing::reproduction_problem(200) {
        println!("  {result}");
    }
}

fn metadata() {
    heading("Metadata exposure (Section VI-A) — POLaR needs its metadata secret");
    let report = polar_attacks::metadata_leak::experiment(40);
    println!("  attacker with arbitrary-read over the metadata table:");
    println!(
        "    hijack {:>5.1}%   traps tripped {:>5.1}%",
        report.with_leak_hijack * 100.0,
        report.with_leak_trapped * 100.0
    );
    println!("  same attacker without the leak (natural-offset guess):");
    println!(
        "    hijack {:>5.1}%   traps tripped {:>5.1}%",
        report.without_leak_hijack * 100.0,
        report.without_leak_trapped * 100.0
    );
    let protected_rate = polar_attacks::metadata_leak::experiment_protected(40);
    println!("  leak attacker vs MPK/SGX-shielded metadata (§VI-A future work):");
    println!("    hijack {:>5.1}%", protected_rate * 100.0);
    println!("\n  (the paper defers metadata protection to MPX/SGX/MPK/TrustZone)");
}

fn placement() {
    use polar_rng::{Rng, SplitMix64};
    use polar_simheap::{HeapConfig, PlacementPolicy, SimHeap};

    heading("Placement randomization — measured address entropy per allocation");
    let policy = PlacementPolicy {
        shuffle_depth: 16,
        offset_entropy_bits: 8,
        guard_gap_bits: 6,
        seed: 0,
    };
    const SEEDS: usize = 256;
    const ALLOCS: usize = 24;
    // One fixed grooming prologue (allocs + a few frees), then ALLOCS
    // observed allocations; repeated under SEEDS placement seeds. The
    // estimator is log2(#distinct addresses) at each position — what an
    // attacker predicting the k-th address is actually up against.
    let run = |placement_seed: u64| -> Vec<u64> {
        let mut config = HeapConfig::default();
        config.placement = PlacementPolicy { seed: placement_seed, ..policy };
        if placement_seed == 0 {
            config.placement = PlacementPolicy::default(); // the off row
        }
        let mut heap = SimHeap::new(config);
        let mut groom: Vec<_> =
            (0..12).map(|_| heap.malloc(32).expect("groom")).collect();
        for k in [1usize, 4, 7, 10] {
            heap.free(groom.remove(k % groom.len())).expect("free");
        }
        (0..ALLOCS).map(|_| heap.malloc(32).expect("alloc").0).collect()
    };
    let mut seed_rng = SplitMix64::new(0x9_1ACE);
    let on: Vec<Vec<u64>> = (0..SEEDS).map(|_| run(seed_rng.next_u64() | 1)).collect();
    let off = run(0);
    let bits_at = |k: usize| -> (f64, f64) {
        let addrs: HashSet<u64> = on.iter().map(|t| t[k]).collect();
        let deltas: HashSet<u64> =
            on.iter().map(|t| t[k].wrapping_sub(t[k.saturating_sub(1)])).collect();
        ((addrs.len() as f64).log2(), (deltas.len() as f64).log2())
    };
    println!("(policy: shuffle {}, offset bits {}, gap bits {} = {:.1} analytic bits;",
        policy.shuffle_depth, policy.offset_entropy_bits, policy.guard_gap_bits,
        policy.entropy_bits());
    println!(" {SEEDS} placement seeds, identical groom + {ALLOCS} allocations each)\n");
    println!(
        "{:<14} {:>16} {:>18} {:>18}",
        "allocation", "off (addr bits)", "on (addr bits)", "on (delta bits)"
    );
    println!("{}", "-".repeat(70));
    for k in [0usize, 1, 7, 15, 23] {
        let (addr_bits, delta_bits) = bits_at(k);
        println!("{:<14} {:>16.1} {:>18.1} {:>18.1}", format!("#{}", k + 1), 0.0, addr_bits,
            delta_bits);
        let _ = off[k]; // the off trace is one deterministic sequence: 0 bits by construction
    }
    println!("\n  (addr bits = log2 distinct k-th addresses across seeds, capped at");
    println!("   log2({SEEDS}) = {:.0} by the sample; the deterministic heap scores 0 —",
        (SEEDS as f64).log2());
    println!("   every seed replays the same sequence)");

    // The isolating ablation: the adaptive attacker (quick budget)
    // against layout randomization alone, placement alone, and both.
    // `placement-only` is deliberately absent from the gated scorecard;
    // this table is its home.
    let budget = CampaignBudget::quick();
    println!(
        "\nAdaptive attacker, layout vs placement vs both (quick budget: {} search",
        budget.search_execs
    );
    println!(" execs, {} fresh-seed replays per cell; bypass %)\n", budget.eval_trials);
    let modes =
        [SecMode::Polar, SecMode::PlacementOnly, SecMode::PolarPlacement];
    println!(
        "{:<18} {:>14} {:>16} {:>17}",
        "scenario", "layout-only", "placement-only", "both (+placement)"
    );
    println!("{}", "-".repeat(70));
    for scenario in ["heap-groom", "place-groom"] {
        let rates: Vec<f64> = modes
            .iter()
            .map(|&m| {
                polar_attacks::search::run_campaign(scenario, m, budget, 0x5EC5_CA4D)
                    .bypass_rate()
                    * 100.0
            })
            .collect();
        println!(
            "{:<18} {:>13.1}% {:>15.1}% {:>16.1}%",
            scenario, rates[0], rates[1], rates[2]
        );
    }
    println!("\n  (heap-groom corrupts a neighbor — layout entropy already caps it,");
    println!("   placement drives it to zero; place-groom only predicts addresses —");
    println!("   layout randomization is irrelevant there, placement is the defense)");
}

fn ablation(reps: u32) {
    heading("Ablation — layout policy vs entropy, per-op cost, and metadata footprint");
    println!(
        "{:<24} {:>14} {:>16} {:>12} {:>11} {:>10}",
        "policy", "entropy (bits)", "alloc+free (ns)", "getptr (ns)", "meta bytes", "traps/obj"
    );
    println!("{}", "-".repeat(92));
    for row in ablation_rows(reps) {
        println!(
            "{:<24} {:>14.2} {:>16.0} {:>12.1} {:>11} {:>10.2}",
            row.label,
            row.entropy_bits,
            row.alloc_ns,
            row.access_ns,
            row.metadata_bytes,
            row.trap_slots
        );
    }
    println!(
        "\n(meta bytes with {} objects live; traps/obj = armed booby-trap slots",
        polar_bench::ABLATION_LIVE
    );
    println!(" per object — stored canaried dummies, or derived virtual trap slots");
    println!(" for the stateless rows, which store no per-object plan at all)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: HashSet<&str> = args.iter().map(|s| s.as_str()).collect();
    if wanted.is_empty() || wanted.contains("all") {
        wanted = ["fig2", "table1", "fig6", "table2", "fig7", "table3", "table4", "compat",
            "security", "adaptive", "sharded-detect", "sites", "probing", "metadata",
            "placement", "ablation"]
            .into_iter()
            .collect();
    }
    let reps: u32 = if wanted.contains("quick") { 1 } else { 5 };

    if wanted.contains("fig2") {
        fig2();
    }
    if wanted.contains("table1") {
        table1();
    }
    if wanted.contains("fig6") {
        fig6(reps);
    }
    let need_js = wanted.contains("table2") || wanted.contains("fig7");
    if need_js {
        let rows = js_tables(reps);
        if wanted.contains("table2") {
            table2(&rows);
        }
        if wanted.contains("fig7") {
            fig7(&rows);
        }
    }
    if wanted.contains("table3") {
        table3();
    }
    if wanted.contains("table4") {
        table4();
    }
    if wanted.contains("compat") {
        compat();
    }
    if wanted.contains("security") {
        security();
    }
    if wanted.contains("adaptive") {
        adaptive();
    }
    if wanted.contains("sharded-detect") {
        sharded_detect();
    }
    if wanted.contains("sites") {
        sites();
    }
    if wanted.contains("probing") {
        probing();
    }
    if wanted.contains("metadata") {
        metadata();
    }
    if wanted.contains("placement") {
        placement();
    }
    if wanted.contains("ablation") {
        ablation(reps);
    }
    println!();
}
