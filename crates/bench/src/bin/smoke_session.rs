//! Session-store smoke: a reduced run of the million-object workload
//! with the oracle checks armed (`scripts/check.sh` stage).
//!
//! The full-scale benchmark (8 threads, ≥1M live sessions, 512 MiB
//! heap) is a measurement; this is a correctness gate. It runs the
//! same populate → Zipf-traffic shape at ~2% scale — small enough for
//! CI, large enough that every thread refills magazines many times and
//! cross-shard frees exercise the remote-free queues — and asserts the
//! invariants the workload is designed to witness:
//!
//! * the live set survives intact (populate count == final live count);
//! * every read was oracle-verified against the session's model values
//!   (a wrong plan, torn read, or misrouted free fails inside the run);
//! * the magazine front-end actually fronted the traffic (hit rate
//!   ≥ 90%, every allocation served by a pop);
//! * the remote-free queues quiesced (every lock-free claim drained);
//! * refresh churn recycled blocks instead of fragmenting (peak/live
//!   stays near 1.0);
//! * no false-positive detections.

use polar_runtime::RandomizeMode;
use polar_workloads::session_store::{run_session_store, SessionConfig};

fn main() {
    let cfg = SessionConfig {
        threads: 8,
        sessions: 20_000,
        ops_per_thread: 5_000,
        shards: 8,
        heap_capacity: 64 << 20,
        ..Default::default()
    };
    let sessions = cfg.sessions;
    let expected_ops = cfg.threads * cfg.ops_per_thread;
    let r = run_session_store(RandomizeMode::per_allocation(), cfg);

    assert_eq!(r.live_objects, sessions, "live set shrank: {} of {sessions}", r.live_objects);
    assert_eq!(r.ops, expected_ops, "traffic short-counted: {} of {expected_ops}", r.ops);
    assert!(r.reads_verified > 0, "no reads reached the oracle");
    assert!(
        r.magazine_hit_rate >= 0.90,
        "magazine hit rate {:.4} below the 90% floor",
        r.magazine_hit_rate
    );
    assert_eq!(
        r.stats.magazine_hits + r.stats.magazine_refills,
        r.stats.allocations,
        "allocations bypassed the magazine front-end"
    );
    assert_eq!(
        r.stats.remote_drained, r.stats.fast_frees,
        "remote-free queues did not quiesce: {} drained of {} claims",
        r.stats.remote_drained, r.stats.fast_frees
    );
    assert_eq!(r.stats.total_detections(), 0, "false positives: {:?}", r.stats);
    assert!(
        r.fragmentation < 1.5,
        "refresh churn fragmented the heap: peak/live {:.3}",
        r.fragmentation
    );
    assert!(
        r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns,
        "latency percentiles out of order: p50={} p99={} p999={}",
        r.p50_ns,
        r.p99_ns,
        r.p999_ns
    );

    println!(
        "session smoke: live={} ops={} verified={} maghit={:.4} frag={:.3} \
         p50={}ns p99={}ns p999={}ns meta/live={:.1}B",
        r.live_objects,
        r.ops,
        r.reads_verified,
        r.magazine_hit_rate,
        r.fragmentation,
        r.p50_ns,
        r.p99_ns,
        r.p999_ns,
        r.metadata_bytes_per_live
    );
    println!("ok: session-store invariants hold at smoke scale");
}
