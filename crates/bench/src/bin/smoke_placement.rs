//! CI smoke for placement randomization (`scripts/check.sh`).
//!
//! Boots the sim heap and the runtime with the placement policy the
//! `polar+placement` security column uses (shuffle depth 16, 8 offset
//! bits, 6 guard-gap bits) and checks the three things the layer
//! promises:
//!
//! 1. Allocator invariants survive randomized placement: live blocks
//!    never overlap, every aligned unit of a live block resolves back to
//!    its owning block, guard gaps stay unowned, and the free pools
//!    (class free lists + shuffle buffers vs `large_free`) are disjoint.
//! 2. Placement is replayable: the same placement seed and op sequence
//!    yields a byte-identical address trace; a different seed does not.
//! 3. Placement actually moves addresses: the placement-on trace differs
//!    from the deterministic placement-off trace, and the runtime's
//!    derived placement stream replays under one process seed.
//!
//! Exits non-zero (panics) on any violation.

use std::collections::HashSet;
use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_rng::{Rng, SplitMix64};
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};
use polar_simheap::{Addr, BlockState, HeapConfig, PlacementPolicy, SimHeap};

/// The allocator's alignment quantum (every block base is a multiple).
const ALIGN: u64 = 16;

fn policy(seed: u64) -> PlacementPolicy {
    PlacementPolicy { shuffle_depth: 16, offset_entropy_bits: 8, guard_gap_bits: 6, seed }
}

/// Deterministic churn workload on a bare heap: mixed-size allocs with
/// periodic frees, driven by a seeded RNG disjoint from the heap's own
/// placement stream. Returns the address trace of every allocation.
fn churn(heap: &mut SimHeap, op_seed: u64, ops: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(op_seed);
    let mut live: Vec<(Addr, usize)> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..ops {
        let roll = rng.next_u64();
        if roll % 3 != 0 || live.is_empty() {
            // Sizes spanning small classes and the oversize path.
            let size = match roll % 7 {
                0 => 16,
                1 => 24,
                2 => 64,
                3 => 200,
                4 => 1024,
                5 => 4096,
                _ => 5000,
            };
            let a = heap.malloc(size).expect("alloc");
            assert_eq!(a.0 % ALIGN, 0, "block base must stay aligned");
            trace.push(a.0);
            live.push((a, size));
        } else {
            let idx = (roll as usize / 3) % live.len();
            let (a, _) = live.swap_remove(idx);
            heap.free(a).expect("free");
        }
    }
    trace
}

/// Check the allocator invariants the placement layer must preserve.
fn check_invariants(heap: &SimHeap) {
    // 1a: live blocks are disjoint.
    let mut spans: Vec<(u64, u64)> = heap
        .blocks()
        .filter(|b| b.state == BlockState::Live)
        .map(|b| (b.base.0, b.base.0 + b.size as u64))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(w[0].1 <= w[1].0, "live blocks overlap: {:?} vs {:?}", w[0], w[1]);
    }
    // 1b: every aligned unit inside a live block resolves to that block;
    // the unit just *before* each block (a guard gap or foreign block)
    // never resolves into it.
    for b in heap.blocks().filter(|b| b.state == BlockState::Live) {
        let mut u = b.base.0;
        while u < b.base.0 + b.size as u64 {
            let owner = heap.block_containing(Addr(u)).expect("unit owned");
            assert_eq!(owner.base, b.base, "index unit {u:#x} maps to the wrong block");
            u += ALIGN;
        }
        if b.base.0 >= ALIGN {
            if let Some(before) = heap.block_containing(Addr(b.base.0 - ALIGN)) {
                assert_ne!(before.base, b.base, "unit before base leaked into the block");
            }
        }
    }
    // 1c: free pools are disjoint — no address is simultaneously in a
    // class free list / shuffle buffer and in `large_free`.
    let (free_lists, large_free, shuffled) = heap.free_pool_snapshot();
    let mut classed: HashSet<u64> = HashSet::new();
    for list in free_lists.iter() {
        for &a in list {
            assert!(classed.insert(a), "address {a:#x} pooled twice");
        }
    }
    for &a in &shuffled {
        assert!(classed.insert(a), "address {a:#x} in free list and shuffle buffer");
    }
    for &(a, _) in &large_free {
        assert!(!classed.contains(&a), "address {a:#x} in both class pool and large_free");
    }
}

fn probe_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("PlacementProbe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

/// Address trace of a seeded runtime run with placement armed (seed 0 →
/// the runtime derives the placement stream from its process seed).
fn runtime_trace(process_seed: u64) -> Vec<u64> {
    let info = probe_class();
    let mut config = RuntimeConfig::default();
    config.seed = process_seed;
    config.heap.capacity = 64 << 20;
    config.heap.placement = policy(0);
    let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
    let mut live = Vec::new();
    let mut trace = Vec::new();
    for i in 0..256usize {
        let obj = rt.olr_malloc(&info).expect("alloc");
        trace.push(obj.0);
        live.push(obj);
        if live.len() > 6 {
            let victim = live.swap_remove((i * 5) % live.len());
            rt.olr_free(victim).expect("free");
        }
    }
    trace
}

fn main() {
    // 1: invariants under randomized placement (with quarantine in the
    // mix so the randomized eviction order is exercised too).
    let mut config = HeapConfig::default();
    config.placement = policy(0x9_1ACE);
    config.quarantine = 8;
    let mut heap = SimHeap::new(config);
    churn(&mut heap, 0x0D75, 4000);
    check_invariants(&heap);
    println!(
        "ok: invariants {} allocs / {} frees with {:.1} placement bits",
        heap.stats().allocs,
        heap.stats().frees,
        config.placement.entropy_bits()
    );

    // 2: placement replays as a pure function of its seed.
    let run = |placement_seed: u64| {
        let mut c = HeapConfig::default();
        c.placement = policy(placement_seed);
        let mut h = SimHeap::new(c);
        churn(&mut h, 0x0D75, 2000)
    };
    let a = run(41);
    assert_eq!(a, run(41), "same placement seed must replay addresses exactly");
    assert_ne!(a, run(42), "different placement seed must move addresses");

    // 3: placement-on differs from the deterministic heap, and the
    // runtime's derived placement stream replays under one process seed.
    let mut h_off = SimHeap::new(HeapConfig::default());
    let off = churn(&mut h_off, 0x0D75, 2000);
    assert_ne!(a, off, "placement must perturb the deterministic address sequence");
    let t = runtime_trace(0xCAFE);
    assert_eq!(t, runtime_trace(0xCAFE), "runtime placement must replay per process seed");
    assert_ne!(t, runtime_trace(0xCAFF), "runtime placement must vary across process seeds");
    println!("ok: replay     {} placed allocations replay byte-exact under one seed", t.len());
    println!("ok: placement smoke green");
}
