//! CI smoke for the stateless small-class default (`scripts/check.sh`).
//!
//! Boots the runtime with the stock config — no overrides — and checks
//! the three things the default flip promises:
//!
//! 1. Small classes (≤8 fields) are served by the derived stateless
//!    path, with virtual traps armed; large classes keep the stored
//!    pooled path. The split is exact, per the runtime's own counters.
//! 2. Selection is per class size, not per runtime: one runtime serves
//!    both modes side by side.
//! 3. A mixed-mode allocation/free run replays exactly under the same
//!    seed: same addresses, same plan hashes, same field offsets.
//!
//! Exits non-zero (panics) on any violation.

use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

fn small_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("SmokeSmall")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

fn large_class() -> Arc<ClassInfo> {
    let mut b = ClassDecl::builder("SmokeLarge");
    b = b.field("vtable", FieldKind::VtablePtr);
    for i in 0..9 {
        b = b.field(format!("f{i}"), FieldKind::I64);
    }
    Arc::new(ClassInfo::from_decl(b.build()))
}

/// One deterministic mixed-mode run: interleaved small/large allocs
/// with periodic frees. Returns the observable trace — (base address,
/// plan hash, every field offset) per surviving allocation.
fn mixed_run(seed: u64) -> (Vec<(u64, u64, Vec<u32>)>, polar_runtime::RuntimeStats) {
    let small = small_class();
    let large = large_class();
    let mut config = RuntimeConfig::default();
    config.seed = seed;
    config.heap.capacity = 64 << 20;
    let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
    let mut trace = Vec::new();
    let mut live = Vec::new();
    for i in 0..512u32 {
        let info = if i % 3 == 0 { &large } else { &small };
        let obj = rt.olr_malloc(info).expect("alloc");
        let meta = rt.object_meta(obj).expect("meta");
        let offsets: Vec<u32> =
            (0..info.field_count()).map(|idx| meta.plan.offset(idx)).collect();
        trace.push((obj.0, meta.plan.plan_hash().0, offsets));
        live.push(obj);
        // Churn: free every third object to force slot reuse (fresh
        // generations → fresh derived layouts on the stateless side).
        if i % 3 == 2 {
            let victim = live.swap_remove((i as usize * 7) % live.len());
            rt.olr_free(victim).expect("free");
        }
    }
    (trace, rt.stats())
}

fn main() {
    let small = small_class();
    let large = large_class();

    // 1+2: per-class-size selection inside one default-config runtime.
    let mut config = RuntimeConfig::default();
    assert!(
        config.stateless.enabled && config.stateless.virtual_traps,
        "the default config must enable the stateless path with traps"
    );
    assert!(
        config.stateless.applies_to(small.field_count())
            && !config.stateless.applies_to(large.field_count()),
        "selection boundary must sit at 8 fields"
    );
    config.heap.capacity = 64 << 20;
    let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
    const N: u64 = 200;
    for _ in 0..N {
        let s = rt.olr_malloc(&small).expect("alloc small");
        let meta = rt.object_meta(s).expect("meta");
        assert!(
            meta.plan.dummies().iter().any(|d| d.canary.is_some()),
            "stateless default must arm virtual traps on small classes"
        );
        let l = rt.olr_malloc(&large).expect("alloc large");
        assert!(rt.object_meta(l).is_some(), "large object must carry stored metadata");
    }
    let stats = rt.stats();
    assert_eq!(stats.allocations, 2 * N, "every allocation counted");
    assert_eq!(
        stats.stateless_allocs, N,
        "exactly the small-class allocations take the stateless path"
    );
    println!(
        "ok: selection  {} allocs = {} stateless (small) + {} stored (large)",
        stats.allocations,
        stats.stateless_allocs,
        stats.allocations - stats.stateless_allocs
    );

    // 3: exact seeded replay of a mixed-mode run.
    let (run1, stats1) = mixed_run(0x5EED_CAFE);
    let (run2, _) = mixed_run(0x5EED_CAFE);
    assert_eq!(run1, run2, "same seed must replay addresses, plans, and offsets exactly");
    assert!(stats1.stateless_allocs > 0, "mixed run exercised the stateless path");
    assert!(
        stats1.stateless_allocs < stats1.allocations,
        "mixed run exercised the stored path too"
    );
    let (run3, _) = mixed_run(0x0DD5_EED5);
    assert_ne!(
        run1, run3,
        "a different seed must not reproduce the same layouts (entropy smoke)"
    );
    println!(
        "ok: replay     {} allocations ({} stateless) replay byte-exact under one seed",
        stats1.allocations, stats1.stateless_allocs
    );
    println!("ok: stateless default smoke green");
}
