//! Scratch profiler (not wired into CI).
use std::sync::Arc;
use std::time::Instant;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_layout::{EpochKey, PermBlock, RoundKeys, StatelessPolicy};
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

fn probe() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Probe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I32)
            .field("c", FieldKind::I32)
            .build(),
    ))
}

fn time(label: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    println!("{label:<32} {best:>8.2} ns/op");
}

fn main() {
    let info = probe();
    let mk = |st: StatelessPolicy| {
        let mut c = RuntimeConfig::default();
        c.heap.capacity = 1 << 30;
        c.stateless = st;
        ObjectRuntime::new(RandomizeMode::per_allocation(), c)
    };

    {
        let mut rt = mk(StatelessPolicy::off());
        time("pooled malloc+free", 200_000, || {
            let a = rt.olr_malloc(&info).unwrap();
            rt.olr_free(a).unwrap();
        });
    }
    {
        let mut rt = mk(StatelessPolicy::on());
        time("stateless+traps malloc+free", 200_000, || {
            let a = rt.olr_malloc(&info).unwrap();
            rt.olr_free(a).unwrap();
        });
    }
    {
        let mut rt = mk(StatelessPolicy::permute_only());
        time("stateless-notraps malloc+free", 200_000, || {
            let a = rt.olr_malloc(&info).unwrap();
            rt.olr_free(a).unwrap();
        });
    }
    {
        let mut rt = mk(StatelessPolicy::off());
        time("raw malloc+free (no olr)", 200_000, || {
            let a = rt.malloc_raw(48).unwrap();
            rt.free_raw(a).unwrap();
        });
    }
    {
        let keys = RoundKeys::new(EpochKey(0x1234_5678));
        let mut block = PermBlock::empty();
        let mut gen = 0u64;
        let mut acc = 0u32;
        time("code_for same slot, gen++", 200_000, || {
            gen += 1;
            acc ^= block.code_for(&keys, 7, gen, 4);
        });
        std::hint::black_box(acc);
    }
    {
        let keys = RoundKeys::new(EpochKey(0x1234_5678));
        let mut gen = 0u64;
        let mut acc = 0u32;
        time("perm_code unbuffered", 200_000, || {
            gen += 1;
            acc ^= keys.perm_code(gen, 7, 4);
        });
        std::hint::black_box(acc);
    }

    {
        let keys = RoundKeys::new(EpochKey(0x1234_5678));
        let mut gen = 0u64;
        let mut acc = 0u8;
        time("mapping alone", 200_000, || {
            gen += 1;
            acc ^= keys.mapping(gen, 7)[3];
        });
        std::hint::black_box(acc);
    }
}
