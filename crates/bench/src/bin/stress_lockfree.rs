//! `check.sh`'s lock-free stress smoke: a short, release-mode run of
//! the `polar-workloads::contend` mix (shared object set, seeded
//! per-thread drivers, torn-read oracle on every read) sized to the
//! machine it runs on.
//!
//! The thread count is clamped to the detected parallelism (minimum 2,
//! so a single-vCPU container still interleaves writer windows with
//! reader snapshots through preemption) and printed alongside the
//! results, so a CI log always shows what the smoke actually
//! exercised. Exit is non-zero when any invariant fails:
//!
//! * no torn read (the workload panics on one — unequal 32-bit halves),
//! * zero detections (the shared set is never misused),
//! * exact counting partition: every facade read resolved as exactly
//!   one lock-free hit or one mutex fallback,
//! * a pure-reader pass stays entirely on the optimistic path.

use std::process::ExitCode;

use polar_runtime::RandomizeMode;
use polar_workloads::contend::{run_contend, ContendConfig};

fn main() -> ExitCode {
    let detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Clamp to the hardware: more threads than cores only re-measures
    // the scheduler. Keep at least two so seqlock windows and snapshots
    // genuinely interleave.
    let threads = detected.clamp(2, 8) as u64;
    println!("stress_lockfree: detected parallelism {detected}, running {threads} threads");

    let mixed = ContendConfig { threads, ops_per_thread: 200_000, ..ContendConfig::default() };
    let report = run_contend(RandomizeMode::per_allocation(), mixed);
    let attempts = report.stats.lockfree_reads + report.stats.lockfree_fallbacks;
    println!(
        "  mixed 90/10: {} reads, {} writes, lock-free share {:.4}, {} fallbacks",
        report.reads,
        report.writes,
        report.lockfree_share().unwrap_or(0.0),
        report.stats.lockfree_fallbacks,
    );
    if report.stats.total_detections() != 0 {
        eprintln!("FAIL: {} spurious detections", report.stats.total_detections());
        return ExitCode::FAILURE;
    }
    if attempts != report.reads {
        eprintln!(
            "FAIL: counting partition broken: {} hits + {} fallbacks != {} reads",
            report.stats.lockfree_reads, report.stats.lockfree_fallbacks, report.reads,
        );
        return ExitCode::FAILURE;
    }

    let pure = ContendConfig {
        threads,
        ops_per_thread: 100_000,
        write_pct: 0,
        ..ContendConfig::default()
    };
    let report = run_contend(RandomizeMode::per_allocation(), pure);
    println!(
        "  pure readers: {} reads, {} fallbacks",
        report.reads, report.stats.lockfree_fallbacks
    );
    if report.stats.lockfree_fallbacks != 0 || report.stats.lockfree_reads != report.reads {
        eprintln!(
            "FAIL: pure readers left the fast path: {} hits, {} fallbacks, {} reads",
            report.stats.lockfree_reads, report.stats.lockfree_fallbacks, report.reads,
        );
        return ExitCode::FAILURE;
    }

    println!("ok: no torn reads, no detections, counting partition exact");
    ExitCode::SUCCESS
}
