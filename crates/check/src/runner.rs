//! The case runner: pinned seeds first, fresh cases after, greedy tape
//! shrinking on failure.

use std::fmt::{self, Debug};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use polar_rng::{Rng, SplitMix64};

use crate::regressions::pinned_seeds;
use crate::source::DataSource;
use crate::strategy::Strategy;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of fresh cases to generate (pinned regression seeds run
    /// in addition, before any fresh case).
    pub cases: u32,
    /// Master seed; per-case seeds derive from it deterministically.
    pub seed: u64,
    /// Budget for shrink candidate evaluations after a failure.
    pub max_shrink_steps: u32,
    /// Regression-seed file consulted for pinned cases (and named in
    /// the failure report as the place to pin new seeds).
    pub regressions: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("POLAR_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96);
        let seed = std::env::var("POLAR_CHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x504F_4C41_5243_4B31); // "POLARCK1"
        Config { cases, seed, max_shrink_steps: 4096, regressions: None }
    }
}

impl Config {
    /// Set the fresh-case count.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use (and advertise) a regression-seed file.
    pub fn regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }
}

/// Parse `0x…`-or-decimal seed spellings.
pub(crate) fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

/// A successful run.
#[derive(Debug, Clone)]
pub struct Pass {
    /// Fresh cases executed.
    pub cases: u32,
    /// Pinned regression seeds replayed first.
    pub pinned: u32,
}

/// A failed (and shrunk) property.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The property's name.
    pub property: String,
    /// The case seed that found the failure — pin this to reproduce.
    pub seed: u64,
    /// Debug rendering of the shrunk counterexample.
    pub value: String,
    /// The property's error (or panic payload).
    pub error: String,
    /// Shrink candidates evaluated.
    pub shrink_steps: u32,
    /// Where to pin the seed, if the config named a regressions file.
    pub regressions: Option<PathBuf>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property `{}` failed", self.property)?;
        writeln!(f, "  seed = {:#018x}", self.seed)?;
        writeln!(f, "  shrunk counterexample ({} steps): {}", self.shrink_steps, self.value)?;
        writeln!(f, "  error: {}", self.error)?;
        let target = self
            .regressions
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "the regressions file".to_owned());
        write!(
            f,
            "  to pin this case, add the line below to {target}:\n  {} seed = {:#018x}",
            self.property, self.seed
        )
    }
}

enum Outcome {
    Pass,
    Fail(String),
}

/// Run a property, panicking with a replay recipe on failure.
///
/// `prop` returns `Ok(())` for a pass and `Err(message)` for a failure;
/// panics inside the property also count as failures (and shrink).
pub fn check<S, F>(name: &str, strategy: &S, prop: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(&S::Value) -> Result<(), String>,
{
    check_with(Config::default(), name, strategy, prop)
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<S, F>(config: Config, name: &str, strategy: &S, prop: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(&S::Value) -> Result<(), String>,
{
    if let Err(failure) = evaluate(&config, name, strategy, &prop) {
        panic!("{failure}");
    }
}

/// The non-panicking runner: pinned seeds, fresh cases, shrink on the
/// first failure. This is what tooling (and the harness's own tests)
/// call.
pub fn evaluate<S, F>(config: &Config, name: &str, strategy: &S, prop: &F) -> Result<Pass, Failure>
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let pinned: Vec<u64> = match &config.regressions {
        Some(path) => pinned_seeds(path, name),
        None => Vec::new(),
    };
    for &seed in &pinned {
        run_case(config, name, strategy, prop, seed)?;
    }
    let mut deriver = SplitMix64::new(config.seed ^ hash_name(name));
    for _ in 0..config.cases {
        let case_seed = deriver.next_u64();
        run_case(config, name, strategy, prop, case_seed)?;
    }
    Ok(Pass { cases: config.cases, pinned: pinned.len() as u32 })
}

/// Distinct properties sharing a master seed should not share case
/// seeds; fold the name in.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_case<S, F>(
    config: &Config,
    name: &str,
    strategy: &S,
    prop: &F,
    seed: u64,
) -> Result<(), Failure>
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let mut src = DataSource::fresh(seed);
    let outcome = eval_once(strategy, prop, &mut src);
    let Outcome::Fail(first_error) = outcome else {
        return Ok(());
    };
    let tape = src.into_tape();
    let (shrunk_tape, shrink_steps) = shrink(strategy, prop, tape, config.max_shrink_steps);
    let mut replay = DataSource::replay(&shrunk_tape);
    let value = strategy.generate(&mut replay);
    let error = match run_prop(prop, &value) {
        Outcome::Fail(e) => e,
        // Greedy shrinking only keeps failing tapes, so the final tape
        // must still fail; defend against non-determinism anyway.
        Outcome::Pass => first_error,
    };
    Err(Failure {
        property: name.to_owned(),
        seed,
        value: format!("{value:?}"),
        error,
        shrink_steps,
        regressions: config.regressions.clone(),
    })
}

fn eval_once<S, F>(strategy: &S, prop: &F, src: &mut DataSource<'_>) -> Outcome
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let value = strategy.generate(src);
    run_prop(prop, &value)
}

fn run_prop<V, F: Fn(&V) -> Result<(), String>>(prop: &F, value: &V) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(message)) => Outcome::Fail(message),
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "property panicked".to_owned());
            Outcome::Fail(format!("panic: {message}"))
        }
    }
}

/// Greedy tape shrinking: repeatedly try simpler tapes, keeping any
/// candidate that still fails, until a fixpoint or the step budget.
///
/// Passes, in order of aggressiveness:
/// 1. delete chunks of 8/4/2/1 entries (shorter tape ⇒ fewer/smaller
///    components, since strategies read length draws first and missing
///    draws replay as 0);
/// 2. zero chunks (0 is every strategy's simplest choice);
/// 3. halve, then decrement, individual entries (smaller draw ⇒ smaller
///    value within a component).
fn shrink<S, F>(strategy: &S, prop: &F, tape: Vec<u64>, budget: u32) -> (Vec<u64>, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let mut best = tape;
    let mut steps: u32 = 0;
    let still_fails = |candidate: &[u64], steps: &mut u32| -> bool {
        *steps += 1;
        let mut src = DataSource::replay(candidate);
        matches!(eval_once(strategy, prop, &mut src), Outcome::Fail(_))
    };
    loop {
        let mut improved = false;
        // Pass 1: chunk deletion.
        for chunk in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + chunk <= best.len() && steps < budget {
                let mut candidate = best.clone();
                candidate.drain(i..i + chunk);
                if still_fails(&candidate, &mut steps) {
                    best = candidate;
                    improved = true;
                } else {
                    i += 1;
                }
            }
        }
        // Pass 2: chunk zeroing.
        for chunk in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + chunk <= best.len() && steps < budget {
                if best[i..i + chunk].iter().all(|&x| x == 0) {
                    i += 1;
                    continue;
                }
                let mut candidate = best.clone();
                candidate[i..i + chunk].iter_mut().for_each(|x| *x = 0);
                if still_fails(&candidate, &mut steps) {
                    best = candidate;
                    improved = true;
                }
                i += 1;
            }
        }
        // Pass 3: halve then decrement entries.
        for i in 0..best.len() {
            while best[i] > 0 && steps < budget {
                let mut candidate = best.clone();
                candidate[i] /= 2;
                if still_fails(&candidate, &mut steps) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
            while best[i] > 0 && steps < budget {
                let mut candidate = best.clone();
                candidate[i] -= 1;
                if still_fails(&candidate, &mut steps) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }
        if !improved || steps >= budget {
            return (best, steps);
        }
    }
}
