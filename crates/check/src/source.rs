//! The choice tape: where strategies get their randomness from.

use polar_rng::rngs::StdRng;
use polar_rng::{Rng, SeedableRng};

/// A stream of `u64` choices feeding a [`Strategy`](crate::Strategy).
///
/// In *fresh* mode the draws come from a seeded generator and are
/// recorded onto a tape; in *replay* mode they come back off a tape
/// (reading past the end yields `0`, which every strategy maps to its
/// simplest value — that is what makes tape truncation a valid shrink).
#[derive(Debug)]
pub struct DataSource<'a> {
    mode: Mode<'a>,
    cursor: usize,
}

#[derive(Debug)]
enum Mode<'a> {
    Fresh { rng: StdRng, tape: Vec<u64> },
    Replay { tape: &'a [u64] },
}

impl DataSource<'static> {
    /// A recording source whose stream is a pure function of `seed`.
    pub fn fresh(seed: u64) -> Self {
        DataSource {
            mode: Mode::Fresh { rng: StdRng::seed_from_u64(seed), tape: Vec::new() },
            cursor: 0,
        }
    }
}

impl<'a> DataSource<'a> {
    /// A replaying source that reads `tape` back.
    pub fn replay(tape: &'a [u64]) -> Self {
        DataSource { mode: Mode::Replay { tape }, cursor: 0 }
    }

    /// The next choice.
    pub fn draw(&mut self) -> u64 {
        self.cursor += 1;
        match &mut self.mode {
            Mode::Fresh { rng, tape } => {
                let value = rng.next_u64();
                tape.push(value);
                value
            }
            Mode::Replay { tape } => tape.get(self.cursor - 1).copied().unwrap_or(0),
        }
    }

    /// The next choice, scaled into `lo..=hi` so that draw `0` maps to
    /// `lo` and smaller draws map to smaller offsets (the contract the
    /// shrinker relies on).
    pub fn draw_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let draw = self.draw();
        let span = hi - lo;
        if span == u64::MAX {
            return draw;
        }
        lo + draw % (span + 1)
    }

    /// How many choices have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// The recorded tape (fresh mode) or the replayed slice.
    pub fn tape(&self) -> &[u64] {
        match &self.mode {
            Mode::Fresh { tape, .. } => tape,
            Mode::Replay { tape } => tape,
        }
    }

    /// Consume the source, returning the recorded tape.
    pub fn into_tape(self) -> Vec<u64> {
        match self.mode {
            Mode::Fresh { tape, .. } => tape,
            Mode::Replay { tape } => tape.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_records_and_replay_reproduces() {
        let mut fresh = DataSource::fresh(7);
        let drawn: Vec<u64> = (0..10).map(|_| fresh.draw()).collect();
        let tape = fresh.into_tape();
        assert_eq!(drawn, tape);
        let mut replay = DataSource::replay(&tape);
        let replayed: Vec<u64> = (0..10).map(|_| replay.draw()).collect();
        assert_eq!(drawn, replayed);
    }

    #[test]
    fn replay_past_end_is_zero() {
        let tape = [5u64];
        let mut replay = DataSource::replay(&tape);
        assert_eq!(replay.draw(), 5);
        assert_eq!(replay.draw(), 0);
        assert_eq!(replay.draw(), 0);
    }

    #[test]
    fn draw_in_honours_bounds_and_zero_minimality() {
        let zeros = [0u64; 4];
        let mut replay = DataSource::replay(&zeros);
        assert_eq!(replay.draw_in(3, 9), 3, "zero draw must map to the range floor");
        let mut fresh = DataSource::fresh(1);
        for _ in 0..1000 {
            let v = fresh.draw_in(10, 13);
            assert!((10..=13).contains(&v));
        }
    }
}
