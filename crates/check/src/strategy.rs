//! Strategies: recipes that turn a choice tape into a test value.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::source::DataSource;

/// A recipe for producing values of one type from a [`DataSource`].
///
/// Generation must be a pure function of the draw stream: same tape,
/// same value. Strategies should also map the all-zero tape to their
/// *simplest* value (range floors, empty-ish collections, first
/// `one_of` alternative) — the shrinker pushes tapes toward zero.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Build one value, consuming draws from `src`.
    fn generate(&self, src: &mut DataSource<'_>) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, src: &mut DataSource<'_>) -> Self::Value {
        (**self).generate(src)
    }
}

/// A heap-allocated, type-erased strategy (what [`one_of`] stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        (**self).generate(src)
    }
}

/// Integers that strategies can scale a raw draw into.
pub trait TapeInt: Copy {
    /// Map a draw into `lo..=hi` (caller guarantees `lo <= hi`), with
    /// draw `0` landing on `lo`.
    fn from_draw(src: &mut DataSource<'_>, lo: Self, hi: Self) -> Self;

    /// Map a draw into `lo..hi` (caller guarantees `lo < hi`).
    fn from_draw_open(src: &mut DataSource<'_>, lo: Self, hi: Self) -> Self;
}

macro_rules! tape_int_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl TapeInt for $t {
            fn from_draw(src: &mut DataSource<'_>, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let offset = src.draw_in(0, span);
                (lo as $u).wrapping_add(offset as $u) as $t
            }

            fn from_draw_open(src: &mut DataSource<'_>, lo: Self, hi: Self) -> Self {
                let pred = ((hi as $u).wrapping_sub(1)) as $t;
                Self::from_draw(src, lo, pred)
            }
        }
    )*};
}

tape_int_impl!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl<T: TapeInt + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::from_draw_open(src, self.start, self.end)
    }
}

impl<T: TapeInt + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        T::from_draw(src, lo, hi)
    }
}

/// A strategy that always yields a clone of one value (proptest's
/// `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _src: &mut DataSource<'_>) -> T {
        self.0.clone()
    }
}

/// Shorthand for [`Just`].
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just(value)
}

/// The result of [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        (self.f)(self.inner.generate(src))
    }
}

/// Combinator methods on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f` (shrinking happens on the
    /// underlying tape, so mapped strategies shrink for free).
    ///
    /// Named `prop_map` (proptest's spelling) rather than `map`: range
    /// strategies also implement `Iterator`, and a method literally
    /// called `map` would be ambiguous at every range call site.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Erase the concrete type (for heterogeneous [`one_of`] lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Uniform choice between alternatives (proptest's `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        assert!(!self.options.is_empty(), "one_of with no alternatives");
        // Draw 0 selects the first alternative: list simplest first.
        let idx = src.draw_in(0, self.options.len() as u64 - 1) as usize;
        self.options[idx].generate(src)
    }
}

/// Choose uniformly among `options` per generated value.
pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    OneOf { options }
}

/// `one_of![a, b, c]`: sugar that boxes each alternative.
#[macro_export]
macro_rules! one_of {
    ($($option:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::StrategyExt::boxed($option)),+])
    };
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, src: &mut DataSource<'_>) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let len = usize::from_draw_open(src, self.len.start, self.len.end);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.elem.generate(src));
        }
        out
    }
}

/// A `Vec` whose length is drawn from `len` and whose elements come
/// from `elem` (proptest's `collection::vec`).
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// Types with a canonical whole-domain strategy (proptest's `any`).
pub trait Arbitrary: Sized {
    /// Build one value from the tape.
    fn arbitrary(src: &mut DataSource<'_>) -> Self;
}

macro_rules! arbitrary_int_impl {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut DataSource<'_>) -> Self {
                src.draw() as $t
            }
        }
    )*};
}

arbitrary_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(src: &mut DataSource<'_>) -> Self {
        src.draw() & 1 == 1
    }
}

/// The result of [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, src: &mut DataSource<'_>) -> T {
        T::arbitrary(src)
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! tuple_strategy_impl {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, src: &mut DataSource<'_>) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    )+};
}

tuple_strategy_impl!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);
