//! Regression-seed files: previously-found counterexamples, pinned.
//!
//! The format replaces `proptest-regressions` files. One line per
//! pinned case:
//!
//! ```text
//! # comments and blank lines are ignored
//! <property-name> seed = 0x6256bade428eb0d7
//! ```
//!
//! Because polar-check's generation *and* shrinking are deterministic,
//! a pinned seed reproduces not just the failure but the identical
//! shrunk counterexample — the seed is the whole bug report.

use std::path::Path;

use crate::runner::parse_seed;

/// All `(property, seed)` pairs in the file. A missing file is an empty
/// list (the file is only created once something fails).
pub fn load_regressions(path: &Path) -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut pinned = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, seed)) = parse_line(line) else {
            panic!(
                "{}:{}: malformed regression line {line:?} \
                 (expected `<property> seed = 0x…`)",
                path.display(),
                lineno + 1
            );
        };
        pinned.push((name.to_owned(), seed));
    }
    pinned
}

fn parse_line(line: &str) -> Option<(&str, u64)> {
    let (name, rest) = line.split_once(char::is_whitespace)?;
    let (keyword, value) = rest.split_once('=')?;
    if keyword.trim() != "seed" {
        return None;
    }
    Some((name, parse_seed(value)?))
}

/// The pinned seeds for one property, in file order.
pub fn pinned_seeds(path: &Path, property: &str) -> Vec<u64> {
    load_regressions(path)
        .into_iter()
        .filter(|(name, _)| name == property)
        .map(|(_, seed)| seed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        assert_eq!(parse_line("my_prop seed = 0xff"), Some(("my_prop", 255)));
        assert_eq!(parse_line("my_prop seed = 17"), Some(("my_prop", 17)));
        assert_eq!(parse_line("my_prop  seed  =  0x10"), Some(("my_prop", 16)));
        assert_eq!(parse_line("my_prop speed = 0x10"), None);
        assert_eq!(parse_line("lonely"), None);
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(load_regressions(Path::new("/nonexistent/polar.regressions")).is_empty());
    }
}
