//! # polar-check — a minimal, deterministic property-testing harness
//!
//! The offline replacement for proptest that the whole workspace tests
//! with. Three ideas, all in service of deterministic replay:
//!
//! 1. **Choice tapes.** A [`Strategy`] builds its value from a stream
//!    of `u64` draws pulled from a [`DataSource`]. In fresh mode the
//!    draws come from a seeded [`polar_rng`] generator and are recorded;
//!    in replay mode they come back off the recorded tape. A value is
//!    therefore a pure function of its tape.
//! 2. **Tape shrinking.** When a property fails, the harness shrinks
//!    the *tape* (delete chunks, zero chunks, halve and decrement
//!    entries) and regenerates the value each time — so shrinking works
//!    through [`prop_map`](StrategyExt::prop_map), [`one_of!`], tuples and
//!    collections with no per-type shrinker code. Draws map to values
//!    so that a smaller draw means a simpler value.
//! 3. **Regression seeds.** A failure prints a single `u64` seed.
//!    Pinned in a regressions file (`<property> seed = 0x…`), that seed
//!    re-runs first on every future run and — because generation and
//!    shrinking are both deterministic — reproduces the *same shrunk
//!    counterexample* forever.
//!
//! ```
//! use polar_check::{check_with, ensure, vec, Config};
//!
//! #[allow(clippy::ptr_arg)]
//! fn sums_fit(v: &Vec<u32>) -> Result<(), String> {
//!     let sum: u64 = v.iter().map(|&x| u64::from(x)).sum();
//!     ensure!(sum <= 100 * v.len() as u64, "sum {sum} too large for {v:?}");
//!     Ok(())
//! }
//!
//! check_with(Config::default().cases(32), "sums_fit", &vec(0u32..=100, 0..10), sums_fit);
//! ```

#![forbid(unsafe_code)]

mod regressions;
mod runner;
mod source;
mod strategy;

pub use regressions::{load_regressions, pinned_seeds};
pub use runner::{check, check_with, evaluate, Config, Failure, Pass};
pub use source::DataSource;
pub use strategy::{
    any, just, one_of, vec, AnyStrategy, Arbitrary, BoxedStrategy, Just, Map, OneOf, Strategy,
    StrategyExt, VecStrategy,
};

/// Fail the property unless `cond` holds.
///
/// Inside a property function (returning `Result<(), String>`) this is
/// the analogue of `prop_assert!`: it returns an `Err` instead of
/// panicking, which gives the shrinker a clean failure signal.
#[macro_export]
macro_rules! ensure {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the property unless `left == right` (analogue of
/// `prop_assert_eq!`).
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}\n {}",
                format!($($fmt)+)
            ));
        }
    }};
}
