//! The harness's core contract, tested end to end: a forced failure
//! yields a seed; pinning that seed in a regressions file reproduces
//! the identical shrunk counterexample.

use std::path::PathBuf;

use polar_check::{any, evaluate, one_of, vec, Config, StrategyExt};

fn config() -> Config {
    // Fixed explicitly so the test is immune to POLAR_CHECK_* env vars.
    Config { cases: 64, seed: 0xD15EA5E, max_shrink_steps: 4096, regressions: None }
}

/// A property that fails whenever any element reaches 100.
fn no_big_elements(v: &Vec<u32>) -> Result<(), String> {
    if let Some(&big) = v.iter().find(|&&x| x >= 100) {
        Err(format!("element {big} >= 100"))
    } else {
        Ok(())
    }
}

#[test]
fn forced_failure_shrinks_to_the_minimal_counterexample() {
    let strategy = vec(0u32..1000, 0..20);
    let failure = evaluate(&config(), "no_big", &strategy, &no_big_elements)
        .expect_err("property must fail");
    // Greedy tape shrinking must reach the unique minimal input: one
    // element, exactly at the failure threshold.
    assert_eq!(failure.value, "[100]", "shrink got stuck at {}", failure.value);
    assert!(failure.error.contains(">= 100"));
}

#[test]
fn pinned_seed_reproduces_the_same_shrunk_counterexample() {
    let strategy = vec(0u32..1000, 0..20);
    let first = evaluate(&config(), "no_big", &strategy, &no_big_elements)
        .expect_err("property must fail");

    // Pin the printed seed in a real regressions file, exactly the way
    // the failure report tells a developer to.
    let path = temp_file("pinned");
    std::fs::write(&path, format!("# pinned by test\nno_big seed = {:#018x}\n", first.seed))
        .unwrap();
    let pinned_config = Config { cases: 0, ..config() }.regressions(&path);
    let replayed = evaluate(&pinned_config, "no_big", &strategy, &no_big_elements)
        .expect_err("pinned seed must still fail");
    std::fs::remove_file(&path).ok();

    assert_eq!(replayed.seed, first.seed, "replay must run the pinned seed");
    assert_eq!(
        replayed.value, first.value,
        "pinned replay must deterministically reproduce the shrunk counterexample"
    );
    assert_eq!(replayed.error, first.error);
}

#[test]
fn pinned_seeds_for_other_properties_are_ignored() {
    let path = temp_file("other");
    std::fs::write(&path, "some_other_property seed = 0x1\n").unwrap();
    let cfg = Config { cases: 8, ..config() }.regressions(&path);
    let strategy = 0u32..10;
    let pass = evaluate(&cfg, "always_ok", &strategy, &|_| Ok(())).expect("must pass");
    std::fs::remove_file(&path).ok();
    assert_eq!(pass.pinned, 0);
    assert_eq!(pass.cases, 8);
}

#[test]
fn passing_properties_pass() {
    let strategy = (any::<u64>(), 1u32..=8);
    let pass = evaluate(&config(), "in_bounds", &strategy, &|&(_, n)| {
        if (1..=8).contains(&n) {
            Ok(())
        } else {
            Err(format!("{n} out of bounds"))
        }
    })
    .expect("bounds hold");
    assert_eq!(pass.cases, 64);
}

#[test]
fn panics_inside_properties_shrink_like_errors() {
    let strategy = vec(0u32..1000, 0..20);
    let failure = evaluate(&config(), "panics", &strategy, &|v: &Vec<u32>| {
        assert!(v.iter().all(|&x| x < 100), "saw a big element");
        Ok(())
    })
    .expect_err("assert must trip");
    assert_eq!(failure.value, "[100]");
    assert!(failure.error.contains("panic"), "error was: {}", failure.error);
}

#[test]
fn one_of_shrinks_toward_the_first_alternative() {
    // one_of draws index 0 on a zero tape, so failures should shrink to
    // the first alternative that can still fail.
    let strategy = one_of![(0u32..10).prop_map(|x| x + 100), (500u32..600).boxed()];
    let failure =
        evaluate(&config(), "one_of_min", &strategy, &|&x| {
            if x >= 100 {
                Err("too big".into())
            } else {
                Ok(())
            }
        })
        .expect_err("everything fails");
    assert_eq!(failure.value, "100");
}

#[test]
fn distinct_properties_draw_distinct_cases() {
    // The master seed is shared but cases derive from the property
    // name; two trivially-failing properties should report different
    // case seeds (they are different streams).
    let strategy = any::<u64>();
    let a = evaluate(&config(), "prop_a", &strategy, &|_| Err("x".into())).unwrap_err();
    let b = evaluate(&config(), "prop_b", &strategy, &|_| Err("x".into())).unwrap_err();
    assert_ne!(a.seed, b.seed);
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("polar-check-{}-{tag}.regressions", std::process::id()))
}
