//! Seeded property: the magazine front-end keeps the mutex path's
//! generation discipline (the deterministic half of the recycling
//! torture tests in `sharded.rs`).
//!
//! A generated malloc/free tape is replayed twice — once with the
//! magazine front-end on (batched reservations, lock-free frees) and
//! once with `MagazinePolicy::disabled()` (every op through the shard
//! mutex) — and both replays must satisfy the same record-generation
//! invariants:
//!
//! * **Fresh slots start at generation 1.** The first record a heap
//!   address ever carries is generation 1, magazine-armed or not.
//! * **Recycling bumps by exactly one.** When an address the tape
//!   freed comes back from a later malloc, its record generation is
//!   exactly the freed generation plus one — the re-arm bumped it once,
//!   whether that re-arm happened under the mutex or in a batched
//!   magazine refill. No skips (a slot silently cycling through extra
//!   lives) and no stalls (a stale generation surviving reuse, which
//!   would let a dangling pointer's generation check pass).
//! * **Freeing never bumps.** Immediately after a free the record is
//!   `Freed` and keeps the generation it was allocated with; the bump
//!   belongs to the *next* occupant.
//! * **Mutex-path freed records are inert.** With magazines disabled,
//!   every model-freed address keeps its `Freed` record bit-stable
//!   until reuse. (With magazines on, this sweep is deliberately
//!   skipped: a refill may legitimately re-arm a freed block into a
//!   parked capsule — `Live`, generation bumped — before the tape pops
//!   it, so freed records are only point-checked at the free itself.)
//! * **Counter parity at quiescence.** Both replays execute the same
//!   allocations and frees; the magazine replay must serve every
//!   allocation from the magazine and every free from the lock-free
//!   claim path (`fast_frees == frees`, all claims drained), while the
//!   disabled replay must leave every magazine counter at zero.
//!
//! Violations shrink on the op tape, so a failure reports a minimal
//! malloc/free sequence plus a replayable seed.

use std::collections::HashMap;

use polar_check::{just, one_of, vec as vec_of, Config, StrategyExt};
use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_runtime::{
    Addr, MagazinePolicy, ObjectState, RandomizeMode, RuntimeConfig, ShardedRuntime,
};
use std::sync::Arc;

/// One tape op. Free indices are reduced modulo the live set at
/// execution time so every generated value stays executable while the
/// shrinker deletes earlier ops.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate one more tracked object.
    Malloc,
    /// Free the `i % live`-th live object.
    Free(usize),
}

fn test_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Recycled")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I64)
            .build(),
    ))
}

/// Replay `ops` on a fresh single-shard runtime with the given magazine
/// batch, checking the generation discipline after every op.
fn replay(ops: &[Op], batch: usize) -> Result<(), String> {
    let mut config = RuntimeConfig::default();
    // Small arena so tapes actually recycle blocks instead of streaming
    // through fresh ones.
    config.heap.capacity = 1 << 16;
    config.seed = 0xB00C_5EED;
    config.magazine = MagazinePolicy { batch };
    let rt = ShardedRuntime::new(RandomizeMode::per_allocation(), config, 1);
    let info = test_class();
    let mut h = rt.handle(0);

    let mut live: Vec<Addr> = Vec::new();
    // Latest generation observed per address, across lives.
    let mut last_gen: HashMap<u64, u64> = HashMap::new();
    // Model-freed addresses (not yet reused) and their frozen generation.
    let mut freed_gen: HashMap<u64, u64> = HashMap::new();
    let (mut mallocs, mut frees) = (0u64, 0u64);

    for op in ops {
        match op {
            Op::Malloc => {
                let obj = h.olr_malloc(&info).map_err(|e| format!("malloc failed: {e}"))?;
                mallocs += 1;
                let meta = rt
                    .object_meta(obj)
                    .ok_or_else(|| format!("fresh {obj:?} has no record (batch {batch})"))?;
                if meta.state != ObjectState::Live {
                    return Err(format!("fresh {obj:?} is {:?}, not Live", meta.state));
                }
                match last_gen.get(&obj.0) {
                    None if meta.generation != 1 => {
                        return Err(format!(
                            "first record of {obj:?} starts at generation {} (batch {batch})",
                            meta.generation
                        ));
                    }
                    Some(&g) if meta.generation != g + 1 => {
                        return Err(format!(
                            "recycled {obj:?} went generation {g} -> {} (batch {batch}); \
                             recycling must bump by exactly one",
                            meta.generation
                        ));
                    }
                    _ => {}
                }
                last_gen.insert(obj.0, meta.generation);
                freed_gen.remove(&obj.0);
                live.push(obj);
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue; // index op on an empty live set: no-op
                }
                let obj = live.remove(i % live.len());
                h.olr_free(obj).map_err(|e| format!("free failed: {e}"))?;
                frees += 1;
                let meta = rt
                    .object_meta(obj)
                    .ok_or_else(|| format!("freed {obj:?} lost its record (batch {batch})"))?;
                if meta.state != ObjectState::Freed {
                    return Err(format!("just-freed {obj:?} is {:?}, not Freed", meta.state));
                }
                if meta.generation != last_gen[&obj.0] {
                    return Err(format!(
                        "free of {obj:?} moved its generation {} -> {} (batch {batch}); \
                         the bump belongs to the next occupant",
                        last_gen[&obj.0], meta.generation
                    ));
                }
                freed_gen.insert(obj.0, meta.generation);
            }
        }
        if batch == 0 {
            // Mutex-path freed records are inert until reuse. (Skipped
            // with magazines on: a refill may have parked a re-armed
            // capsule on a freed block, legitimately Live and bumped.)
            for (&a, &g) in &freed_gen {
                let meta = rt
                    .object_meta(Addr(a))
                    .ok_or_else(|| format!("freed {a:#x} lost its record"))?;
                if meta.state != ObjectState::Freed || meta.generation != g {
                    return Err(format!(
                        "freed {a:#x} drifted to ({:?}, gen {}) while unreused",
                        meta.state, meta.generation
                    ));
                }
            }
        }
    }

    h.flush_stats();
    let stats = rt.stats();
    if stats.allocations != mallocs || stats.frees != frees {
        return Err(format!(
            "counter drift (batch {batch}): {mallocs} mallocs / {frees} frees executed, \
             stats say {} / {}",
            stats.allocations, stats.frees
        ));
    }
    if batch > 0 {
        if stats.magazine_hits + stats.magazine_refills != mallocs {
            return Err(format!(
                "magazine served {} of {mallocs} allocations",
                stats.magazine_hits + stats.magazine_refills
            ));
        }
        if stats.fast_frees != frees {
            return Err(format!("{} of {frees} frees fell back to the mutex", stats.fast_frees));
        }
        if stats.remote_drained != stats.fast_frees {
            return Err(format!(
                "{} claims drained of {} fast frees at quiescence",
                stats.remote_drained, stats.fast_frees
            ));
        }
    } else if stats.magazine_hits + stats.magazine_refills + stats.magazine_returns
        + stats.fast_frees
        + stats.remote_drained
        != 0
    {
        return Err(format!(
            "disabled magazines still counted: hits {} refills {} returns {} fast {} drained {}",
            stats.magazine_hits,
            stats.magazine_refills,
            stats.magazine_returns,
            stats.fast_frees,
            stats.remote_drained
        ));
    }
    Ok(())
}

/// Same tape through the magazine front-end (small batch so refills
/// recycle within short tapes) and through the mutex-only baseline.
#[allow(clippy::ptr_arg)]
fn generation_discipline(ops: &Vec<Op>) -> Result<(), String> {
    replay(ops, 4)?;
    replay(ops, 0)
}

#[test]
fn magazine_recycling_matches_mutex_generation_discipline() {
    let op = one_of![just(Op::Malloc), (0usize..64).prop_map(Op::Free)];
    let ops = vec_of(op, 0..48);
    // Fixed config: deterministic in CI regardless of POLAR_CHECK_* env.
    let config = Config { cases: 64, seed: 0x4E0C_9C1E, max_shrink_steps: 4096, regressions: None };
    polar_check::check_with(config, "magazine_generation_discipline", &ops, generation_discipline);
}
