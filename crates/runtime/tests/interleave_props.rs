//! Seeded single-thread interleaving property for the seqlock read
//! path (the deterministic half of the torture suite in `sharded.rs`).
//!
//! A generated tape of writer mutations — malloc, free, field writes,
//! in-place rerandomization — is stepped one op at a time, and after
//! every op the property probes the publication mirror of every address
//! the model has ever seen, asserting the invariants the lock-free
//! readers depend on:
//!
//! * **Quiescent stability.** With no writer window open (we are the
//!   only thread), two back-to-back probes of a slot return bit-equal
//!   snapshots with an even sequence — a probe is genuinely read-only.
//! * **Sequence monotonicity.** A slot's sequence never decreases, and
//!   every mutation of a live object (write, free, rerandomize)
//!   strictly advances it, so readers can always order their snapshots
//!   against writer windows.
//! * **Model agreement.** A snapshot of an address the model holds
//!   live is `PUB_STATE_LIVE`, generation-current and carries the
//!   object's class hash; a freed (not yet reused) address never
//!   snapshots live.
//! * **Plan coherence.** A live snapshot's plan id resolves in the
//!   shared registry to a plan whose hash matches the published one,
//!   and the addresses `olr_getptr` hands out equal `base +
//!   plan.access(field).offset` — the offsets the lock-free path
//!   computes from the snapshot are exactly the locked path's.
//!
//! Violations shrink on the op tape (delete, zero, halve), so a
//! failure reports a minimal op sequence plus a replayable seed.

use std::collections::HashMap;

use polar_check::{any, just, one_of, vec as vec_of, Config, StrategyExt};
use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_runtime::{Addr, RandomizeMode, RuntimeConfig, ShardedRuntime};
use polar_simheap::{PubSnapshot, SnapshotOutcome, PUB_STATE_LIVE};
use std::sync::Arc;

/// One injected writer mutation. Indices are reduced modulo the live
/// set at execution time so every generated value is executable (and
/// stays executable as the shrinker deletes earlier ops).
#[derive(Debug, Clone)]
enum Op {
    /// Allocate one more tracked object.
    Malloc,
    /// Free the `i % live`-th live object.
    Free(usize),
    /// Write `value` to field `1 + (f % 3)` of the `i % live`-th
    /// live object.
    Write(usize, usize, u64),
    /// Rerandomize the `i % live`-th live object in place
    /// (`olr_memcpy(obj, obj)`): the riskiest publication window, the
    /// field offsets move while the address stays.
    Remalloc(usize),
}

fn test_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Interleaved")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I64)
            .field("c", FieldKind::I64)
            .build(),
    ))
}

/// Probe `addr` twice and require quiescent stability: identical
/// snapshots (or identically no snapshot) with an even sequence.
fn stable_probe(rt: &ShardedRuntime, addr: Addr) -> Result<Option<PubSnapshot>, String> {
    let fst = rt.publish_probe(addr);
    let snd = rt.publish_probe(addr);
    match (fst, snd) {
        (Some(SnapshotOutcome::Snap(a)), Some(SnapshotOutcome::Snap(b))) => {
            if a.seq % 2 != 0 {
                return Err(format!("quiescent probe of {addr:?} saw odd seq {}", a.seq));
            }
            let same = a.seq == b.seq
                && a.base == b.base
                && a.heap_gen == b.heap_gen
                && a.meta_gen == b.meta_gen
                && a.class_hash == b.class_hash
                && a.plan_hash == b.plan_hash
                && a.plan_id == b.plan_id
                && a.state == b.state
                && a.warmed == b.warmed;
            if !same {
                return Err(format!(
                    "back-to-back quiescent probes of {addr:?} differ: {a:?} vs {b:?}"
                ));
            }
            Ok(Some(a))
        }
        (Some(SnapshotOutcome::Untracked), Some(SnapshotOutcome::Untracked)) | (None, None) => {
            Ok(None)
        }
        (a, b) => Err(format!(
            "quiescent probes of {addr:?} disagree or are unstable: {a:?} then {b:?}"
        )),
    }
}

/// Step the op tape on a fresh runtime, checking every invariant after
/// every op.
#[allow(clippy::ptr_arg)]
fn seqlock_interleaving(ops: &Vec<Op>) -> Result<(), String> {
    let mut config = RuntimeConfig::default();
    config.heap.capacity = 1 << 20;
    config.seed = 0x1EA7_5EED;
    let rt = ShardedRuntime::new(RandomizeMode::per_allocation(), config, 2);
    let info = test_class();
    let hash = info.hash();

    let mut live: Vec<Addr> = Vec::new();
    let mut freed: Vec<Addr> = Vec::new();
    // Highest sequence ever observed per address (slot reuse keeps the
    // same slot for the same base in this workload).
    let mut last_seq: HashMap<u64, u64> = HashMap::new();

    for op in ops {
        // Apply the mutation; `touched` is the address whose slot must
        // strictly advance its sequence.
        let touched = match op {
            Op::Malloc => {
                let obj = rt
                    .handle(0)
                    .olr_malloc(&info)
                    .map_err(|e| format!("malloc failed: {e}"))?;
                freed.retain(|&a| a != obj);
                live.push(obj);
                Some(obj)
            }
            Op::Free(i) if !live.is_empty() => {
                let obj = live.remove(i % live.len());
                rt.olr_free(obj).map_err(|e| format!("free failed: {e}"))?;
                freed.push(obj);
                Some(obj)
            }
            Op::Write(i, f, v) if !live.is_empty() => {
                let obj = live[i % live.len()];
                rt.write_field(obj, hash, 1 + f % 3, *v)
                    .map_err(|e| format!("write failed: {e}"))?;
                Some(obj)
            }
            Op::Remalloc(i) if !live.is_empty() => {
                let obj = live[i % live.len()];
                rt.olr_memcpy(obj, obj, &info)
                    .map_err(|e| format!("rerandomize failed: {e}"))?;
                Some(obj)
            }
            _ => None, // index op on an empty live set: no-op
        };

        for &addr in live.iter().chain(freed.iter()) {
            let Some(snap) = stable_probe(&rt, addr)? else {
                continue;
            };
            // Monotonicity, with strict advance for the touched slot.
            if let Some(&prev) = last_seq.get(&addr.0) {
                if snap.seq < prev {
                    return Err(format!(
                        "seq of {addr:?} went backwards: {prev} -> {}",
                        snap.seq
                    ));
                }
                if touched == Some(addr) && snap.seq == prev {
                    return Err(format!(
                        "{op:?} mutated {addr:?} without advancing its seq ({prev})"
                    ));
                }
            }
            last_seq.insert(addr.0, snap.seq);

            let model_live = live.contains(&addr);
            let snap_live =
                snap.base == addr.0 && snap.state == PUB_STATE_LIVE && snap.meta_gen == snap.heap_gen;
            if model_live != snap_live {
                return Err(format!(
                    "model says {addr:?} live={model_live} but snapshot says {snap:?}"
                ));
            }
            if !snap_live {
                continue;
            }
            if snap.class_hash != hash.0 {
                return Err(format!(
                    "live snapshot of {addr:?} carries class {:#x}, expected {:#x}",
                    snap.class_hash, hash.0
                ));
            }
            // Plan coherence: published id -> registry plan -> the very
            // offsets the public API serves.
            let Some(id) = snap.plan_id else {
                return Err(format!("live snapshot of {addr:?} has no registered plan"));
            };
            let plan = rt
                .registry_plan(id)
                .ok_or_else(|| format!("plan id {id} of {addr:?} does not resolve"))?;
            if plan.plan_hash().0 != snap.plan_hash {
                return Err(format!(
                    "plan id {id} resolves to hash {:#x}, snapshot says {:#x}",
                    plan.plan_hash().0,
                    snap.plan_hash
                ));
            }
            for field in 1..info.field_count() {
                let served = rt
                    .olr_getptr(addr, hash, field)
                    .map_err(|e| format!("getptr({addr:?}, {field}) failed on live object: {e}"))?;
                let access = plan
                    .access(field)
                    .ok_or_else(|| format!("plan of {addr:?} lacks field {field}"))?;
                let expected = Addr(addr.0 + u64::from(access.offset));
                if served != expected {
                    return Err(format!(
                        "getptr({addr:?}, {field}) served {served:?}, plan offset says {expected:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[test]
fn interleaved_mutations_keep_published_snapshots_coherent() {
    let op = one_of![
        just(Op::Malloc),
        (0usize..64).prop_map(Op::Free),
        ((0usize..64), (0usize..3), any::<u64>()).prop_map(|(i, f, v)| Op::Write(i, f, v)),
        (0usize..64).prop_map(Op::Remalloc),
    ];
    let ops = vec_of(op, 0..24);
    // Fixed config: deterministic in CI regardless of POLAR_CHECK_* env.
    let config = Config { cases: 48, seed: 0x5EC_10CC, max_shrink_steps: 4096, regressions: None };
    polar_check::check_with(config, "seqlock_interleaving", &ops, seqlock_interleaving);
}
