//! The concurrent sharded runtime: POLaR for multi-threaded programs.
//!
//! [`ObjectRuntime`] is deliberately `&mut self` — one heap, one shadow
//! index, one RNG. This module scales it across threads without touching
//! that hot path:
//!
//! * **Shards.** A [`ShardedRuntime`] owns N complete `ObjectRuntime`s,
//!   each behind its own mutex (lock striping) and each given a disjoint
//!   arena window `[i·span, (i+1)·span)` via
//!   [`HeapConfig::arena_base`](polar_simheap::HeapConfig). Any address
//!   names its owning shard by one division, so frees, member accesses
//!   and copies route without consulting shared state.
//! * **Per-thread plan state.** Each thread obtains a [`ShardHandle`]
//!   carrying its *own* [`PlanPools`], [`PlanInterner`], [`LayoutEngine`]
//!   and [`BufferedRng`], seeded from disjoint [`SplitMix64`] jump
//!   streams of the root seed. Plans are drawn outside any lock; the
//!   home shard only mallocs, seeds traps and records metadata. Streams
//!   are per-thread, so the plan sequence a thread sees is a pure
//!   function of `(root seed, thread index)` — independent of scheduling
//!   and of every other thread (the cross-thread determinism the tests
//!   pin down, and the independence Heelan-style heap-shaping attacks
//!   are meant to be starved by).
//! * **Atomic stats.** Handle-side pool and interner counters fold into
//!   an [`AtomicRuntimeStats`] with relaxed adds;
//!   [`ShardedRuntime::stats`] combines that snapshot with each shard's
//!   counters read under the shard lock.
//! * **Lock-free reads.** Every shard's heap is *published*
//!   ([`SimHeap::new_published`](polar_simheap::SimHeap::new_published)):
//!   block identity and object metadata are mirrored into per-slot
//!   seqlocked publication slots, plans are interned into a shared
//!   [`PlanRegistry`] resolvable by integer id, and
//!   [`ShardedRuntime::olr_getptr`], [`ShardedRuntime::olr_getptr_ic`]
//!   and [`ShardedRuntime::read_field`] first attempt the access with
//!   **no lock at all**: snapshot the slot, validate
//!   `(base, live, generation, class)`, resolve the field through the
//!   registry plan, and — for `read_field` — load the value from the
//!   shared arena and re-check the sequence. Any condition the fast
//!   path cannot classify (a miss, a detection, a contended writer
//!   window after a few retries, an unpublished slot) falls back to the
//!   shard mutex, whose path does all of its own counting and error
//!   construction; the fast path therefore only ever *adds* the
//!   success-shape counters, keeping the two paths' statistics
//!   semantics identical.
//! * **Magazine front-end + remote frees.** With
//!   [`RuntimeConfig::magazine`] enabled (the default), each
//!   [`ShardHandle`] keeps per-size-class **magazines** of pre-reserved
//!   allocation capsules — fully armed objects (block allocated,
//!   canaries seeded, metadata recorded and published) — refilled
//!   `batch` at a time under one home-shard lock acquisition, so the
//!   common-case `olr_malloc` is a lock-free pop. The matching free
//!   fast path validates the published snapshot (and scans traps
//!   through the shared arena when configured), claims the slot with a
//!   generation-exact CAS on the publication's packed life word, and
//!   pushes the slot onto the owning shard's **MPSC remote-free stack**
//!   (a Treiber stack threaded through the publication slots). Every
//!   shard-lock acquisition drains that shard's stack first, so mutex
//!   paths always observe completed frees — double frees and dangling
//!   accesses keep being classified by the one locked path that owns
//!   detection semantics.
//!
//! Handles round-robin their **home shard** (`thread % shards`) for
//! allocations; accesses to any address still work from any thread
//! because routing is by address, not by handle.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use polar_classinfo::{ClassHash, ClassInfo};
use polar_layout::{
    LayoutEngine, LayoutPlan, PlanHash, PlanInterner, PlanPools, PlanRegistry,
    RandomizationPolicy,
};
use polar_rng::{BufferedRng, Rng, SeedableRng, SplitMix64, Xoshiro256StarStar};
use polar_simheap::{
    Addr, HeapError, HeapPublisher, SnapshotOutcome, PUB_STATE_FREED, PUB_STATE_LIVE,
};

use crate::error::RuntimeError;
use crate::runtime::{
    canary_width, truncate, Capsule, ObjectMeta, ObjectRuntime, RandomizeMode, RuntimeConfig,
    SiteCache,
};
use crate::stats::{AtomicRuntimeStats, RuntimeStats};

/// Smallest per-shard arena the constructor accepts: a shard must at
/// least fit its reserved alignment unit plus a few blocks.
const MIN_SHARD_CAPACITY: usize = 4096;

/// Salt folded into the root seed before deriving per-shard runtime
/// seeds, so shard-internal RNG streams (plan fitting, unpooled draws)
/// never coincide with the per-thread handle streams derived from the
/// unsalted root.
const SHARD_SEED_SALT: u64 = 0x5348_4152; // "SHAR"

/// Optimistic snapshot attempts before an access gives up on the
/// seqlock and takes the shard mutex. Writer windows are a handful of
/// relaxed stores, so a couple of spins almost always suffice; the cap
/// bounds reader latency when a writer is descheduled mid-window.
const FAST_RETRIES: usize = 8;

// Shape indices for the per-shard lock-free counters: `_COLD` is the
// object's first counted access since its record was (re)written, the
// `+ 1` "warm" sibling is every later one (the offset-cache hit).
const SHAPE_PLAIN_COLD: usize = 0;
const SHAPE_IC_HIT_COLD: usize = 2;
const SHAPE_IC_MISS_COLD: usize = 4;
const SHAPE_FALLBACK: usize = 6;

/// Per-shard success/fallback counters for the lock-free read path, on
/// their own cache line so hot shards do not false-share. One relaxed
/// `fetch_add` per fast access; [`FastCounters::fold_into`] expands the
/// shapes into the ordinary [`RuntimeStats`] columns with exactly the
/// locked path's semantics.
#[repr(align(64))]
#[derive(Debug, Default)]
struct FastCounters([AtomicU64; 8]);

impl FastCounters {
    #[inline]
    fn bump(&self, shape: usize) {
        self.0[shape].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a handle's plain pending sheet in (one `fetch_add` per
    /// non-zero shape, instead of one per operation).
    fn bump_many(&self, pending: &[u64; 8]) {
        for (cell, &n) in self.0.iter().zip(pending) {
            if n != 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn fold_into(&self, total: &mut RuntimeStats) {
        let c: Vec<u64> = self.0.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let hits: u64 = c[..6].iter().sum();
        // Every fast success is a member access served from the
        // (published mirror of the) shadow index; warm shapes are
        // offset-cache hits and the ic shapes feed the site-cache
        // columns — the same accounting getptr_core does under the lock.
        total.member_accesses += hits;
        total.shadow_hits += hits;
        total.cache_hits += c[SHAPE_PLAIN_COLD + 1] + c[SHAPE_IC_HIT_COLD + 1] + c[SHAPE_IC_MISS_COLD + 1];
        total.site_ic_hits += c[SHAPE_IC_HIT_COLD] + c[SHAPE_IC_HIT_COLD + 1];
        total.site_ic_misses += c[SHAPE_IC_MISS_COLD] + c[SHAPE_IC_MISS_COLD + 1];
        total.lockfree_reads += hits;
        total.lockfree_fallbacks += c[SHAPE_FALLBACK];
    }
}

/// Head of one shard's MPSC remote-free stack, on its own cache line so
/// concurrent pushers to different shards do not false-share. The value
/// is `slot id + 1` (`0` = empty); links are threaded through the
/// publication slots' `remote_next` words, so the stack costs no
/// allocation and no extra table. Pushers are the lock-free free path
/// (any thread); the single consumer is whoever next takes the shard's
/// mutex ([`ShardedRuntime::drain_remote`] runs at every acquisition).
#[repr(align(64))]
#[derive(Debug, Default)]
struct RemoteHead(AtomicU32);

/// Outcome of one optimistic snapshot-and-resolve attempt.
enum FastAttempt {
    /// Resolved: `addr`/`width` are the access, `(slot, seq)` validate
    /// any later arena load, `shape` is the cold shape index to count
    /// (the commit adds the warm bit), `warmed` is the published warm
    /// flag at snapshot time (a `true` skips the commit's probe-and-set).
    Hit { addr: Addr, width: usize, slot: u32, seq: u64, shape: usize, warmed: bool },
    /// A condition the fast path does not classify (miss, detection,
    /// unpublished slot): take the mutex, which owns those outcomes.
    Fallback,
    /// A writer window overlapped the snapshot: worth retrying.
    Contended,
}

/// A thread-safe POLaR runtime: N address-partitioned [`ObjectRuntime`]
/// shards behind striped locks, shared by reference across threads.
///
/// The existing single-thread API is untouched — `ShardedRuntime` is a
/// facade over ordinary `ObjectRuntime`s, and single-threaded code keeps
/// using `ObjectRuntime` directly.
#[derive(Debug)]
pub struct ShardedRuntime {
    shards: Vec<Mutex<ObjectRuntime>>,
    /// Each shard's publication side-table (same index as `shards`),
    /// readable without the shard's mutex.
    pubs: Vec<Arc<HeapPublisher>>,
    /// Shared plan storage for published metadata: readers resolve the
    /// small ids carried by publication slots here, lock-free.
    registry: Arc<PlanRegistry>,
    /// Per-shard lock-free read counters (same index as `shards`).
    fast: Vec<FastCounters>,
    /// Per-shard remote-free stack heads (same index as `shards`).
    remote: Vec<RemoteHead>,
    /// Arena bytes per shard; shard of `addr` = `addr / span`.
    span: u64,
    /// `log2(span)` when the span is a power of two, letting the
    /// per-access routing divide be a shift (the common case: capacities
    /// and shard counts are powers of two in practice, and a 64-bit
    /// divide is tens of cycles on the read hot path).
    span_shift: Option<u32>,
    mode: RandomizeMode,
    config: RuntimeConfig,
    /// Handle-side counters (pool hits/refills, interner dedup) folded in
    /// with relaxed atomics.
    facade: AtomicRuntimeStats,
}

impl ShardedRuntime {
    /// Create a runtime with `shards` address-partitioned shards.
    ///
    /// `config.heap.capacity` is the *total* arena budget, split evenly;
    /// `config.heap.arena_base` must be 0 (the facade assigns bases).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`, when the per-shard capacity would fall
    /// below a usable minimum, or when `config.heap.arena_base != 0`.
    pub fn new(mode: RandomizeMode, config: RuntimeConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded runtime needs at least one shard");
        assert_eq!(
            config.heap.arena_base, 0,
            "the facade owns arena partitioning; leave arena_base at 0"
        );
        // Round the per-shard span down to an alignment-friendly boundary
        // so every shard window starts on a block-aligned address.
        let per = (config.heap.capacity / shards) & !(MIN_SHARD_CAPACITY - 1);
        assert!(
            per >= MIN_SHARD_CAPACITY,
            "capacity {} is too small for {} shards",
            config.heap.capacity,
            shards
        );
        let registry = Arc::new(PlanRegistry::new());
        let mut pubs = Vec::with_capacity(shards);
        let shards: Vec<Mutex<ObjectRuntime>> = (0..shards)
            .map(|i| {
                let mut shard_config = config;
                shard_config.heap.capacity = per;
                shard_config.heap.arena_base = i as u64 * per as u64;
                // Distinct per-shard seeds keep shard-internal streams
                // (plan fitting, unpooled draws, epoch keys) independent.
                shard_config.seed =
                    SplitMix64::stream(config.seed ^ SHARD_SEED_SALT, i as u64).next_u64();
                // Every shard also gets its own placement stream: block
                // addresses in one shard window reveal nothing about
                // placement in another, yet the whole arrangement
                // replays from the one root seed.
                if shard_config.heap.placement.enabled()
                    && shard_config.heap.placement.seed == 0
                {
                    shard_config.heap.placement.seed =
                        SplitMix64::stream(config.seed ^ crate::runtime::PLACEMENT_SALT, i as u64)
                            .next_u64();
                }
                let rt =
                    ObjectRuntime::new_published(mode, shard_config, Arc::clone(&registry));
                pubs.push(Arc::clone(
                    rt.heap().publisher().expect("published heaps carry a publisher"),
                ));
                Mutex::new(rt)
            })
            .collect();
        let fast = (0..shards.len()).map(|_| FastCounters::default()).collect();
        let remote = (0..shards.len()).map(|_| RemoteHead::default()).collect();
        ShardedRuntime {
            shards,
            pubs,
            registry,
            fast,
            remote,
            span: per as u64,
            span_shift: (per as u64).is_power_of_two().then(|| per.trailing_zeros()),
            mode,
            config,
            facade: AtomicRuntimeStats::new(),
        }
    }

    /// The runtime's mode.
    pub fn mode(&self) -> &RandomizeMode {
        &self.mode
    }

    /// The configuration the facade was built from (total capacity,
    /// root seed).
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Arena bytes owned by each shard.
    pub fn shard_span(&self) -> u64 {
        self.span
    }

    /// A per-thread handle. `thread` selects both the home shard
    /// (`thread % shards`) and the thread's disjoint randomness stream;
    /// two handles built with the same `(root seed, thread)` draw
    /// identical plan sequences regardless of what other threads do.
    pub fn handle(&self, thread: u64) -> ShardHandle<'_> {
        let policy = match self.mode {
            RandomizeMode::PerAllocation { policy } => policy,
            RandomizeMode::StaticOlr { policy, .. } => policy,
            RandomizeMode::Native => RandomizationPolicy::off(),
        };
        ShardHandle {
            rt: self,
            home: (thread % self.shards.len() as u64) as usize,
            engine: LayoutEngine::new(policy),
            interner: PlanInterner::new(),
            pools: PlanPools::new(self.config.pool),
            rng: thread_rng(self.config.seed, thread),
            flushed_unique: 0,
            flushed_dedup: 0,
            sheet: vec![[0u64; 8]; self.shards.len()].into_boxed_slice(),
            magazines: Vec::new(),
            pending: RuntimeStats::default(),
        }
    }

    /// The shard owning `addr`, or `None` for null and out-of-window
    /// addresses.
    #[inline]
    fn shard_of(&self, addr: Addr) -> Option<usize> {
        if addr.is_null() {
            return None;
        }
        let i = match self.span_shift {
            Some(shift) => (addr.0 >> shift) as usize,
            None => (addr.0 / self.span) as usize,
        };
        (i < self.shards.len()).then_some(i)
    }

    /// Lock shard `i`, converting a poisoned mutex into
    /// [`RuntimeError::ShardPoisoned`] instead of panicking: a thread
    /// that died inside one shard degrades that shard, not the process.
    ///
    /// Every successful acquisition first drains the shard's remote-free
    /// stack, so locked paths always observe lock-free frees as
    /// *completed* — a double free or dangling access that raced a fast
    /// free is still classified exactly like its single-threaded
    /// counterpart.
    fn shard(&self, i: usize) -> Result<MutexGuard<'_, ObjectRuntime>, RuntimeError> {
        let mut guard =
            self.shards[i].lock().map_err(|_| RuntimeError::ShardPoisoned { shard: i })?;
        self.drain_remote(i, &mut guard);
        Ok(guard)
    }

    /// Lock shard `i` even if poisoned — for observability paths
    /// (statistics, metadata snapshots) that must stay readable while a
    /// shard is degraded. Counters are plain integers, so the worst a
    /// mid-panic state costs is one partially counted operation.
    fn shard_ignore_poison(&self, i: usize) -> MutexGuard<'_, ObjectRuntime> {
        let mut guard = self.shards[i].lock().unwrap_or_else(|e| e.into_inner());
        self.drain_remote(i, &mut guard);
        guard
    }

    /// Push `slot` onto shard `shard`'s remote-free stack (lock-free,
    /// multi-producer). The caller must have claimed the slot via
    /// [`HeapPublisher::claim_free`] — each claimed slot is pushed
    /// exactly once, so links cannot be clobbered concurrently. The
    /// release CAS publishes the link store; the consumer's acquire
    /// swap pairs with it.
    fn remote_push(&self, shard: usize, slot: u32) {
        let head = &self.remote[shard].0;
        let mut cur = head.load(Ordering::Acquire);
        loop {
            self.pubs[shard].set_remote_next(slot, cur);
            match head.compare_exchange_weak(cur, slot + 1, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Drain shard `i`'s remote-free stack while holding its lock:
    /// retire each claimed slot (flip the shadow record, mirror, release
    /// the heap block). The block's free was already *counted* by the
    /// claiming thread (`fast_frees`); the drain only completes it and
    /// counts `remote_drained`.
    ///
    /// Retirement is gated on the publication slot still reading
    /// `FREED` with matching generations: a slot whose block raced
    /// through another completion path (a concurrent double free the
    /// program itself issued) or was recycled raw since the claim is
    /// skipped rather than releasing an innocent successor's block.
    fn drain_remote(&self, i: usize, rt: &mut ObjectRuntime) {
        let head = &self.remote[i].0;
        if head.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut cur = head.swap(0, Ordering::Acquire);
        let mut drained = 0u64;
        while cur != 0 {
            let slot = cur - 1;
            cur = self.pubs[i].remote_next(slot);
            // Writers are excluded by the lock we hold and claims are
            // single-shot, so this snapshot is stable.
            if let SnapshotOutcome::Snap(s) = self.pubs[i].try_snapshot_slot(slot) {
                if s.state == PUB_STATE_FREED && s.meta_gen == s.heap_gen {
                    rt.retire_reserved(slot);
                }
            }
            drained += 1;
        }
        if drained != 0 {
            self.facade
                .add(&RuntimeStats { remote_drained: drained, ..RuntimeStats::default() });
        }
    }

    /// Route `addr` to its shard's lock, or fail with `err`.
    fn route(&self, addr: Addr, err: RuntimeError) -> Result<MutexGuard<'_, ObjectRuntime>, RuntimeError> {
        match self.shard_of(addr) {
            Some(i) => self.shard(i),
            None => Err(err),
        }
    }

    // ----- the lock-free read path -----

    /// One optimistic attempt at resolving `(base, expected, field)` on
    /// `shard` without its mutex. Success means the published snapshot
    /// proved a live, generation-current object of the expected class
    /// and the field resolved through the registry plan; every other
    /// condition routes to the mutex, which owns miss/detection
    /// counting and error construction.
    #[inline]
    fn fast_attempt(
        &self,
        shard: usize,
        base: Addr,
        expected: ClassHash,
        field: usize,
        mut ic: Option<&mut SiteCache>,
    ) -> FastAttempt {
        // Slot hint: a warmed-up inline cache remembers which published
        // slot its base resolved to, skipping the addr -> slot unit
        // walk. The hint is *only* a shortcut — the snapshot below is
        // re-validated against `base` (and the seqlock metadata), so a
        // stale hint degrades to the full walk, never to a wrong read.
        let hinted = ic
            .as_deref()
            .and_then(|site| site.slot_hint(base.0))
            .and_then(|slot| match self.pubs[shard].try_snapshot_slot(slot) {
                SnapshotOutcome::Snap(s) if s.base == base.0 => Some(s),
                _ => None,
            });
        let snap = match hinted {
            Some(s) => s,
            None => match self.pubs[shard].try_snapshot(base.0) {
                SnapshotOutcome::Snap(s) => s,
                SnapshotOutcome::Untracked => return FastAttempt::Fallback,
                SnapshotOutcome::Unstable => return FastAttempt::Contended,
            },
        };
        if snap.base != base.0
            || snap.state != PUB_STATE_LIVE
            || snap.meta_gen != snap.heap_gen
            || snap.class_hash != expected.0
        {
            // Interior pointer, freed or raw-recycled object, class
            // mismatch: all of these are misses or detections, and the
            // locked path is the single place that classifies them.
            return FastAttempt::Fallback;
        }
        if self.config.offset_cache {
            if let Some(site) = ic.as_deref_mut() {
                if let Some((offset, width)) = site.lookup(expected, PlanHash(snap.plan_hash)) {
                    site.note_slot(base.0, snap.slot);
                    return FastAttempt::Hit {
                        addr: base.offset(u64::from(offset)),
                        width: width as usize,
                        slot: snap.slot,
                        seq: snap.seq,
                        shape: SHAPE_IC_HIT_COLD,
                        warmed: snap.warmed,
                    };
                }
            }
        }
        let Some(plan) = snap.plan_id.and_then(|id| self.registry.get(id)) else {
            return FastAttempt::Fallback; // unregistered plan (registry full)
        };
        if plan.plan_hash().0 != snap.plan_hash {
            return FastAttempt::Fallback; // defensive: ids are permanent, hashes must agree
        }
        let Some(access) = plan.access(field) else {
            return FastAttempt::Fallback; // FieldOutOfBounds: raised under the lock
        };
        let shape = if let Some(site) = ic {
            if self.config.offset_cache {
                site.pin(expected, PlanHash(snap.plan_hash), access.offset, access.width);
                site.note_slot(base.0, snap.slot);
            }
            SHAPE_IC_MISS_COLD
        } else {
            SHAPE_PLAIN_COLD
        };
        FastAttempt::Hit {
            addr: base.offset(u64::from(access.offset)),
            width: access.width as usize,
            slot: snap.slot,
            seq: snap.seq,
            shape,
            warmed: snap.warmed,
        }
    }

    /// Final counter index of a fast success: probe-and-set the
    /// published warm flag (the offset-cache accounting shared with the
    /// locked path) and add the warm bit to the cold shape. A snapshot
    /// that already saw the flag set skips the probe entirely.
    #[inline]
    fn fast_idx(&self, shard: usize, slot: u32, shape: usize, warmed: bool) -> usize {
        let warm = self.config.offset_cache && (warmed || self.pubs[shard].warm_probe(slot));
        shape + usize::from(warm)
    }

    /// Lock-free `olr_getptr`/`olr_getptr_ic` attempt, with counting
    /// left to the caller: returns the resolved address (`None` = take
    /// the shard mutex) and the `(shard, counter index)` the attempt
    /// must be counted under (`None` = unroutable address, nothing to
    /// count). The split lets the facade count straight into the shared
    /// atomics while a [`ShardHandle`] counts into its plain per-thread
    /// sheet — one `fetch_add` per flush instead of per read.
    #[inline]
    fn fast_getptr_raw(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        mut ic: Option<&mut SiteCache>,
    ) -> (Option<Addr>, Option<(usize, usize)>) {
        let Some(shard) = self.shard_of(base) else {
            return (None, None);
        };
        for _ in 0..FAST_RETRIES {
            match self.fast_attempt(shard, base, expected, field, ic.as_deref_mut()) {
                FastAttempt::Hit { addr, slot, shape, warmed, .. } => {
                    return (Some(addr), Some((shard, self.fast_idx(shard, slot, shape, warmed))));
                }
                FastAttempt::Fallback => break,
                FastAttempt::Contended => std::hint::spin_loop(),
            }
        }
        (None, Some((shard, SHAPE_FALLBACK)))
    }

    /// [`ShardedRuntime::fast_getptr_raw`] with the count folded into
    /// the shared atomics (the facade path).
    #[inline]
    fn fast_getptr(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: Option<&mut SiteCache>,
    ) -> Option<Addr> {
        let (resolved, count) = self.fast_getptr_raw(base, expected, field, ic);
        if let Some((shard, idx)) = count {
            self.fast[shard].bump(idx);
        }
        resolved
    }

    /// Lock-free `read_field` attempt, counter split as in
    /// [`ShardedRuntime::fast_getptr_raw`]: resolve, load the value
    /// from the shared arena, then re-check the slot's sequence — an
    /// unchanged sequence proves no writer window (field store, free,
    /// reuse) overlapped the byte load, so the value is never torn.
    #[inline]
    fn fast_read_field_raw(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> (Option<u64>, Option<(usize, usize)>) {
        let Some(shard) = self.shard_of(base) else {
            return (None, None);
        };
        for _ in 0..FAST_RETRIES {
            match self.fast_attempt(shard, base, expected, field, None) {
                FastAttempt::Hit { addr, width, slot, seq, shape, warmed } => {
                    let p = &self.pubs[shard];
                    let Some(value) = p.read_uint(addr.0, width) else { break };
                    if !p.recheck(slot, seq) {
                        std::hint::spin_loop();
                        continue; // torn load: retry from a fresh snapshot
                    }
                    return (Some(value), Some((shard, self.fast_idx(shard, slot, shape, warmed))));
                }
                FastAttempt::Fallback => break,
                FastAttempt::Contended => std::hint::spin_loop(),
            }
        }
        (None, Some((shard, SHAPE_FALLBACK)))
    }

    /// [`ShardedRuntime::fast_read_field_raw`] with the count folded
    /// into the shared atomics (the facade path).
    #[inline]
    fn fast_read_field(&self, base: Addr, expected: ClassHash, field: usize) -> Option<u64> {
        let (resolved, count) = self.fast_read_field_raw(base, expected, field);
        if let Some((shard, idx)) = count {
            self.fast[shard].bump(idx);
        }
        resolved
    }

    /// Lock-free `olr_free` attempt. `Some(scanned)` means the free
    /// completed without the shard mutex: the published snapshot proved
    /// a live, generation-current object at exactly `addr`, the trap
    /// sweep (when configured; `scanned` reports it ran) found every
    /// canary intact through the shared arena, and the generation-exact
    /// [`claim_free`] CAS flipped the slot `LIVE → FREED` — after which
    /// the slot went onto the owning shard's remote-free stack for the
    /// next lock holder to retire. `None` routes to the mutex, which
    /// owns every miss/detection outcome (untracked pointer, double
    /// free, UAF, corrupted canary, interior pointer).
    ///
    /// The trap sweep reads racily against writers, so a mismatched
    /// canary is only *reported* via the locked path, and only after a
    /// seqlock recheck proves the bytes were not torn by a concurrent
    /// writer window: a stable-snapshot mismatch is a real detection
    /// (the mutex rescans, counts and constructs the error), an
    /// unstable one retries from a fresh snapshot.
    ///
    /// [`claim_free`]: HeapPublisher::claim_free
    fn fast_free(&self, addr: Addr) -> Option<bool> {
        if !self.config.magazine.enabled() {
            return None;
        }
        let shard = self.shard_of(addr)?;
        let p = &self.pubs[shard];
        'retry: for _ in 0..FAST_RETRIES {
            let snap = match p.try_snapshot(addr.0) {
                SnapshotOutcome::Snap(s) => s,
                SnapshotOutcome::Untracked => return None,
                SnapshotOutcome::Unstable => {
                    std::hint::spin_loop();
                    continue;
                }
            };
            if snap.base != addr.0
                || snap.state != PUB_STATE_LIVE
                || snap.meta_gen != snap.heap_gen
            {
                return None;
            }
            let mut scanned = false;
            if self.config.check_traps_on_free {
                let plan = snap.plan_id.and_then(|id| self.registry.get(id))?;
                if plan.plan_hash().0 != snap.plan_hash {
                    return None; // defensive: ids are permanent, hashes must agree
                }
                for dummy in plan.dummies() {
                    let Some(canary) = dummy.canary else { continue };
                    let width = canary_width(dummy.size);
                    let found = p.read_uint(addr.offset(u64::from(dummy.offset)).0, width)?;
                    if found != truncate(canary, width) {
                        if p.recheck(snap.slot, snap.seq) {
                            return None; // stable mismatch: a real trap hit
                        }
                        std::hint::spin_loop();
                        continue 'retry; // torn read: retry from a fresh snapshot
                    }
                }
                if !p.recheck(snap.slot, snap.seq) {
                    std::hint::spin_loop();
                    continue 'retry;
                }
                scanned = true;
            }
            if !p.claim_free(snap.slot, snap.meta_gen) {
                return None; // lost the claim race: the mutex classifies it
            }
            self.remote_push(shard, snap.slot);
            return Some(scanned);
        }
        None
    }

    /// Raw publication probe for `addr`'s shard, exposed for the
    /// concurrency tests (torture and property suites assert snapshot
    /// self-consistency through this).
    #[doc(hidden)]
    pub fn publish_probe(&self, addr: Addr) -> Option<SnapshotOutcome> {
        Some(self.pubs[self.shard_of(addr)?].try_snapshot(addr.0))
    }

    /// Resolve a published plan id against the shared registry (test
    /// hook, paired with [`ShardedRuntime::publish_probe`]).
    #[doc(hidden)]
    pub fn registry_plan(&self, id: u32) -> Option<Arc<polar_layout::LayoutPlan>> {
        self.registry.get(id).cloned()
    }

    /// [`ObjectRuntime::olr_free`], routed by address. With magazines
    /// enabled the free first attempts the lock-free path
    /// ([`ShardedRuntime::fast_free`]); every condition the fast path
    /// cannot classify falls back to the shard mutex.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; addresses outside every shard
    /// window report [`HeapError::InvalidFree`].
    pub fn olr_free(&self, addr: Addr) -> Result<(), RuntimeError> {
        if let Some(scanned) = self.fast_free(addr) {
            self.facade.add(&RuntimeStats {
                frees: 1,
                fast_frees: 1,
                trap_scans: u64::from(scanned),
                ..RuntimeStats::default()
            });
            return Ok(());
        }
        self.route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?.olr_free(addr)
    }

    /// [`ObjectRuntime::olr_getptr`], routed by address.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; unroutable addresses report
    /// [`RuntimeError::UnknownObject`].
    #[inline]
    pub fn olr_getptr(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<Addr, RuntimeError> {
        if let Some(addr) = self.fast_getptr(base, expected, field, None) {
            return Ok(addr);
        }
        self.route(base, RuntimeError::UnknownObject(base))?.olr_getptr(base, expected, field)
    }

    /// [`ObjectRuntime::olr_getptr_ic`], routed by address. The site
    /// cache is the caller's (typically thread-local) storage.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`].
    #[inline]
    pub fn olr_getptr_ic(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        if let Some(addr) = self.fast_getptr(base, expected, field, Some(ic)) {
            return Ok(addr);
        }
        self.route(base, RuntimeError::UnknownObject(base))?
            .olr_getptr_ic(base, expected, field, ic)
    }

    /// [`ObjectRuntime::read_field`], routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`] plus heap faults.
    #[inline]
    pub fn read_field(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        if let Some(value) = self.fast_read_field(base, expected, field) {
            return Ok(value);
        }
        self.route(base, RuntimeError::UnknownObject(base))?.read_field(base, expected, field)
    }

    /// [`ObjectRuntime::write_field`], routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`] plus heap faults.
    pub fn write_field(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?
            .write_field(base, expected, field, value)
    }

    /// [`ObjectRuntime::olr_memcpy`] across shards: same-shard copies
    /// delegate under one lock; cross-shard copies stage the source
    /// fields on the source shard, then install the duplicate on the
    /// destination shard. Both locks are taken in shard-index order so
    /// concurrent copies in opposite directions cannot deadlock.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; unroutable endpoints fault.
    pub fn olr_memcpy(
        &self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        let len = site_class.size() as usize;
        let src_i = self
            .shard_of(src)
            .ok_or(RuntimeError::Heap(HeapError::Fault { addr: src, len }))?;
        let dst_i = self
            .shard_of(dst)
            .ok_or(RuntimeError::Heap(HeapError::Fault { addr: dst, len }))?;
        if src_i == dst_i {
            return self.shard(src_i)?.olr_memcpy(dst, src, site_class);
        }
        // Index-ordered locking: every cross-shard copy acquires the
        // lower-numbered shard first.
        let (first, second) = (src_i.min(dst_i), src_i.max(dst_i));
        let first_guard = self.shard(first)?;
        let second_guard = self.shard(second)?;
        let (mut src_rt, mut dst_rt) = if src_i < dst_i {
            (first_guard, second_guard)
        } else {
            (second_guard, first_guard)
        };
        let (info, src_plan) = src_rt.copy_source(src, site_class)?;
        let staged = src_rt.stage_fields(src, &src_plan)?;
        dst_rt.install_copy(dst, info, &src_plan, &staged)
    }

    /// [`ObjectRuntime::check_traps`], routed by address.
    ///
    /// # Errors
    ///
    /// As for the single-thread call.
    pub fn check_traps(&self, base: Addr) -> Result<Vec<crate::TrapReport>, RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?.check_traps(base)
    }

    /// Metadata snapshot for the object at `base` (cloned out of the
    /// owning shard), if tracked.
    pub fn object_meta(&self, base: Addr) -> Option<ObjectMeta> {
        let i = self.shard_of(base)?;
        self.shard_ignore_poison(i).object_meta(base).cloned()
    }

    /// Combined statistics: every shard's counters (each read under its
    /// lock, so per-shard numbers are internally consistent) plus the
    /// facade's handle-side atomics. Exact at quiescence; while threads
    /// are mid-operation each counter is individually exact but the
    /// cross-counter view is approximate (see [`AtomicRuntimeStats`]).
    ///
    /// `unique_plans`/`dedup_saved` sum over *all* interners (one per
    /// shard + one per handle), so they bound metadata held, not global
    /// plan distinctness.
    pub fn stats(&self) -> RuntimeStats {
        let mut total = RuntimeStats::default();
        for i in 0..self.shards.len() {
            total += self.shard_ignore_poison(i).stats();
            self.fast[i].fold_into(&mut total);
        }
        // Snapshot the facade *after* visiting the shards: each visit
        // drains that shard's remote-free stack, and the drain counts
        // `remote_drained` into the facade — snapshotting first would
        // report the claims (`fast_frees`) without their completions.
        total += self.facade.snapshot();
        total
    }

    /// Estimated POLaR bookkeeping bytes, summed over shards, plus the
    /// publication side-tables and the shared plan registry.
    pub fn estimated_metadata_bytes(&self) -> usize {
        let shards: usize = (0..self.shards.len())
            .map(|i| self.shard_ignore_poison(i).estimated_metadata_bytes())
            .sum();
        let published: usize = self.pubs.iter().map(|p| p.metadata_bytes()).sum();
        shards + published + self.registry.metadata_bytes()
    }

    /// Heap-allocator footprint summed over shards (each read under its
    /// lock, which also completes any pending remote frees first): live
    /// and peak bytes, arena capacity, and raw alloc/free counts. The
    /// session-store workload derives its fragmentation and
    /// bytes-per-live-object figures from this.
    pub fn heap_footprint(&self) -> HeapFootprint {
        let mut f = HeapFootprint::default();
        for i in 0..self.shards.len() {
            let rt = self.shard_ignore_poison(i);
            let s = rt.heap().stats();
            f.bytes_live += s.bytes_live;
            f.bytes_peak += s.bytes_peak;
            f.arena_bytes += rt.heap().arena_len();
            f.heap_allocs += s.allocs;
            f.heap_frees += s.frees;
        }
        f
    }

    /// The shard owning `addr` for a raw heap access, or a wild-access
    /// fault when no shard window contains it.
    fn heap_shard(&self, addr: Addr, len: usize) -> Result<MutexGuard<'_, ObjectRuntime>, HeapError> {
        match self.shard_of(addr) {
            // A poisoned shard faults its raw accesses (the heap API
            // speaks `HeapError`); instrumented paths report the richer
            // `ShardPoisoned` instead.
            Some(i) => self.shard(i).map_err(|_| HeapError::Fault { addr, len }),
            None => Err(HeapError::Fault { addr, len }),
        }
    }

    /// Raw (untracked) allocation on shard `shard % shard_count()` — the
    /// sharded analogue of [`ObjectRuntime::malloc_raw`] for callers
    /// embedding the facade as one execution context.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn malloc_raw_on(&self, shard: usize, size: usize) -> Result<Addr, RuntimeError> {
        self.shard(shard % self.shards.len())?.malloc_raw(size)
    }

    /// Instrumented allocation on shard `shard % shard_count()`, using
    /// the shard's own deterministic plan state rather than a per-thread
    /// [`ShardHandle`]. Single-context embeddings (one logical thread
    /// driving the whole facade) allocate this way.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_malloc`].
    pub fn olr_malloc_on(
        &self,
        shard: usize,
        info: &Arc<ClassInfo>,
    ) -> Result<Addr, RuntimeError> {
        self.shard(shard % self.shards.len())?.olr_malloc(info)
    }

    /// [`ObjectRuntime::compile_time_plan`], delegated to shard 0. The
    /// static-OLR table derives from the mode's binary seed, which every
    /// shard shares, so any shard would answer identically.
    pub fn compile_time_plan(&self, info: &Arc<ClassInfo>) -> Arc<polar_layout::LayoutPlan> {
        self.shard_ignore_poison(0).compile_time_plan(info)
    }

    /// Raw free, routed by address.
    ///
    /// # Errors
    ///
    /// Propagates heap errors; addresses outside every shard window
    /// report [`HeapError::InvalidFree`].
    pub fn free_raw(&self, addr: Addr) -> Result<(), RuntimeError> {
        self.route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?.free_raw(addr)
    }

    /// Arena-bounded raw read ([`SimHeap::read_uint`]), routed by
    /// address. Like the single-heap primitive this deliberately ignores
    /// block boundaries within a shard — it is the attack-model probe.
    ///
    /// [`SimHeap::read_uint`]: polar_simheap::SimHeap::read_uint
    ///
    /// # Errors
    ///
    /// Faults outside every shard window or past a shard's arena.
    pub fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        self.heap_shard(addr, width)?.heap().read_uint(addr, width)
    }

    /// A raw probe read with booby-trap screening, routed by address to
    /// the owning shard (see [`ObjectRuntime::probe_read_uint`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TrapTriggered`] when the probed range overlaps a
    /// live object's canary-carrying dummy; faults as
    /// [`RuntimeError::Heap`].
    pub fn probe_read_uint(&self, addr: Addr, width: usize) -> Result<u64, RuntimeError> {
        self.heap_shard(addr, width)?.probe_read_uint(addr, width)
    }

    /// Arena-bounded raw write, routed by address (the attack-model
    /// corruption primitive; see [`ShardedRuntime::heap_read_uint`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`].
    pub fn heap_write_uint(&self, addr: Addr, value: u64, width: usize) -> Result<(), HeapError> {
        self.heap_shard(addr, width)?.heap_mut().write_uint(addr, value, width)
    }

    /// Arena-bounded raw byte write, routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`].
    pub fn heap_write(&self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        self.heap_shard(addr, bytes.len())?.heap_mut().write(addr, bytes)
    }

    /// Raw `memmove`, routed by endpoint. Same-shard moves delegate to
    /// the shard heap (overlap-safe); cross-shard moves stage through a
    /// buffer — the windows are disjoint, so there is no overlap to
    /// preserve and the two locks can be taken one at a time.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`] on either endpoint.
    pub fn heap_memmove(&self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        let src_i = self.shard_of(src).ok_or(HeapError::Fault { addr: src, len })?;
        let dst_i = self.shard_of(dst).ok_or(HeapError::Fault { addr: dst, len })?;
        if src_i == dst_i {
            return self.heap_shard(src, len)?.heap_mut().memmove(dst, src, len);
        }
        let staged = self.heap_shard(src, len)?.heap().read_vec(src, len)?;
        self.heap_shard(dst, len)?.heap_mut().write(dst, &staged)
    }

    /// Block-boundary check ([`SimHeap::read_in_block`]), routed by
    /// address — the redzone-mode guard.
    ///
    /// [`SimHeap::read_in_block`]: polar_simheap::SimHeap::read_in_block
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBlock`] for accesses crossing a block boundary,
    /// plus routing faults.
    pub fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        self.heap_shard(addr, len)?.heap().check_in_block(addr, len)
    }
}

/// Heap-allocator footprint summed over a [`ShardedRuntime`]'s shards
/// (see [`ShardedRuntime::heap_footprint`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapFootprint {
    /// Bytes currently allocated (usable sizes), all shards.
    pub bytes_live: usize,
    /// Sum of each shard's high-water mark. An upper bound on the true
    /// simultaneous peak (shards peak at different times).
    pub bytes_peak: usize,
    /// Total arena capacity across shards.
    pub arena_bytes: usize,
    /// Raw allocator allocations, all shards (includes magazine
    /// reservations).
    pub heap_allocs: u64,
    /// Raw allocator frees, all shards.
    pub heap_frees: u64,
}

/// Teardown is the handle's panic-safe flush point: unconsumed magazine
/// capsules go back to the home shard and every pending counter reaches
/// the shared atomics, whether the thread returned or is unwinding.
impl Drop for ShardHandle<'_> {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Seed material for thread `t` comes from SplitMix64 stream `t` of the
/// root seed: disjoint expansion windows give every thread an
/// independent, reproducible generator no other stream index can reach.
fn thread_rng(root: u64, thread: u64) -> BufferedRng {
    let mut seeder = SplitMix64::stream(root, thread);
    let mut seed = <Xoshiro256StarStar as SeedableRng>::Seed::default();
    seeder.fill_bytes(seed.as_mut());
    BufferedRng::new(Xoshiro256StarStar::from_seed(seed))
}

/// One thread's view of a [`ShardedRuntime`]: thread-owned plan pools,
/// interner and RNG (no lock needed to draw a plan), plus a home shard
/// for allocations. Not `Sync` — create one handle per thread.
#[derive(Debug)]
pub struct ShardHandle<'rt> {
    rt: &'rt ShardedRuntime,
    home: usize,
    engine: LayoutEngine,
    interner: PlanInterner,
    pools: PlanPools,
    rng: BufferedRng,
    /// Interner absolute values already folded into the facade atomics
    /// (the interner only grows, so flushing sends the delta).
    flushed_unique: u64,
    flushed_dedup: u64,
    /// Plain per-shard shape counters for this thread's lock-free
    /// reads. A locked `fetch_add` is a full barrier on most hardware
    /// and costs as much as the whole optimistic resolution, so the
    /// handle counts into this unshared sheet and folds it into the
    /// runtime's atomics in [`ShardHandle::flush_stats`] (called on
    /// drop): one `fetch_add` per shape per flush, not per read.
    /// Pending counts become visible to [`ShardedRuntime::stats`] at
    /// the flush — dropping the handle before joining the thread (the
    /// natural scoped-thread shape) keeps the global counts exact.
    sheet: Box<[[u64; 8]]>,
    /// Per-class magazines of pre-reserved capsules (key =
    /// `ClassHash.0`). A handful of classes per workload makes the
    /// linear scan cheaper than hashing.
    magazines: Vec<(u64, Magazine)>,
    /// Pending whole-`RuntimeStats` deltas from the magazine and
    /// fast-free paths (allocations, frees, magazine/fast counters),
    /// folded into the facade atomics at [`ShardHandle::flush_stats`] —
    /// the same batching discipline as `sheet`, for counters that do
    /// not fit the 8-shape read sheet.
    pending: RuntimeStats,
}

/// One class's magazine: reserved capsules awaiting their pop.
#[derive(Debug, Default)]
struct Magazine {
    caps: VecDeque<Capsule>,
}

impl ShardHandle<'_> {
    /// The runtime this handle draws on.
    pub fn runtime(&self) -> &ShardedRuntime {
        self.rt
    }

    /// Index of the shard this handle allocates from.
    pub fn home_shard(&self) -> usize {
        self.home
    }

    /// Instrumented allocation. In `PerAllocation` mode the layout plan
    /// is drawn from this thread's pool/RNG *before* the home shard's
    /// lock is taken — the critical section is just malloc + trap
    /// seeding + metadata record. Other modes (and the stateless
    /// small-class path, whose plan derives from heap identity) delegate
    /// to the shard's own deterministic state.
    ///
    /// With [`RuntimeConfig::magazine`] enabled (the default), the
    /// common case never reaches a lock at all: the allocation pops a
    /// pre-reserved capsule from this handle's per-class magazine, and
    /// only an empty magazine pays one shard-lock acquisition to
    /// reserve the next `batch` capsules. Per-thread plan streams are
    /// unchanged — a refill draws exactly the plans the next `batch`
    /// unbatched allocations would have drawn, in order.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_malloc`].
    pub fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        let per_alloc = matches!(self.rt.mode, RandomizeMode::PerAllocation { .. });
        let stateless = per_alloc && self.rt.config.stateless.applies_to(info.field_count());
        let batch = self.rt.config.magazine.batch;
        if per_alloc && batch > 0 {
            return self.magazine_malloc(info, stateless, batch);
        }
        if !per_alloc || stateless {
            return self.rt.shard(self.home)?.olr_malloc(info);
        }
        let plan = if self.rt.config.pool.enabled() {
            let before = self.pools.stats();
            let plan = self.pools.draw(info, &self.engine, &mut self.interner, &mut self.rng);
            let after = self.pools.stats();
            self.rt.facade.add(&RuntimeStats {
                pool_hits: after.hits - before.hits,
                pool_refills: after.refills - before.refills,
                ..RuntimeStats::default()
            });
            plan
        } else {
            self.interner.intern(self.engine.generate(info, &mut self.rng))
        };
        // Interner growth/dedup since the last flush, as deltas.
        let interned = RuntimeStats {
            unique_plans: self.interner.unique_plans() as u64,
            dedup_saved: self.interner.dedup_hits(),
            ..RuntimeStats::default()
        };
        self.flush_interner_delta(interned);
        self.rt.shard(self.home)?.olr_malloc_with_plan(info, plan)
    }

    /// Magazine-served allocation: pop a pre-reserved capsule, refilling
    /// the class's magazine (one lock, `batch` reservations) when empty.
    ///
    /// Counting happens at the *pop*: the reservation paths count
    /// nothing, so `allocations` (and `stateless_allocs`) track objects
    /// programs actually received and `allocations == frees` still
    /// holds at quiescence with capsules parked in magazines. The pop
    /// that triggered a refill counts as `magazine_refills`, every
    /// other pop as a `magazine_hits` — at batch `K` the steady-state
    /// hit rate is `(K-1)/K`.
    fn magazine_malloc(
        &mut self,
        info: &Arc<ClassInfo>,
        stateless: bool,
        batch: usize,
    ) -> Result<Addr, RuntimeError> {
        let key = info.hash().0;
        let idx = match self.magazines.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.magazines.push((key, Magazine::default()));
                self.magazines.len() - 1
            }
        };
        let refilled = if self.magazines[idx].1.caps.is_empty() {
            self.refill_magazine(idx, info, stateless, batch)?;
            true
        } else {
            false
        };
        let cap = self.magazines[idx]
            .1
            .caps
            .pop_front()
            .expect("a successful refill reserves at least one capsule");
        self.pending.allocations += 1;
        if stateless {
            self.pending.stateless_allocs += 1;
        }
        if refilled {
            self.pending.magazine_refills += 1;
        } else {
            self.pending.magazine_hits += 1;
        }
        Ok(cap.base)
    }

    /// Reserve up to `batch` capsules for `info` under one home-shard
    /// lock acquisition. Pooled plans are drawn from this thread's own
    /// state *before* the lock (same stream as unbatched allocation);
    /// the critical section is the reservation loop alone. A mid-batch
    /// heap error keeps the partial magazine (the heap is near-full —
    /// hand out what was reserved); a first-reservation error
    /// propagates, leaving the magazine empty.
    fn refill_magazine(
        &mut self,
        idx: usize,
        info: &Arc<ClassInfo>,
        stateless: bool,
        batch: usize,
    ) -> Result<(), RuntimeError> {
        let mut plans: Vec<Arc<LayoutPlan>> = Vec::new();
        if !stateless {
            if self.rt.config.pool.enabled() {
                let before = self.pools.stats();
                self.pools.draw_batch(
                    info,
                    &self.engine,
                    &mut self.interner,
                    &mut self.rng,
                    batch,
                    &mut plans,
                );
                let after = self.pools.stats();
                self.rt.facade.add(&RuntimeStats {
                    pool_hits: after.hits - before.hits,
                    pool_refills: after.refills - before.refills,
                    ..RuntimeStats::default()
                });
            } else {
                for _ in 0..batch {
                    plans.push(self.interner.intern(self.engine.generate(info, &mut self.rng)));
                }
            }
            let interned = RuntimeStats {
                unique_plans: self.interner.unique_plans() as u64,
                dedup_saved: self.interner.dedup_hits(),
                ..RuntimeStats::default()
            };
            self.flush_interner_delta(interned);
        }
        let mut shard = self.rt.shard(self.home)?;
        let caps = &mut self.magazines[idx].1.caps;
        if stateless {
            for i in 0..batch {
                match shard.reserve_stateless(info) {
                    Ok(cap) => caps.push_back(cap),
                    Err(err) if i == 0 => return Err(err),
                    Err(_) => break,
                }
            }
        } else {
            for (i, plan) in plans.into_iter().enumerate() {
                match shard.reserve_with_plan(info, plan) {
                    Ok(cap) => caps.push_back(cap),
                    Err(err) if i == 0 => return Err(err),
                    Err(_) => break,
                }
            }
        }
        Ok(())
    }

    /// Fold the interner counters' growth since the last flush into the
    /// facade atomics.
    fn flush_interner_delta(&mut self, current: RuntimeStats) {
        // The interner only grows, so the delta since the previous flush
        // is non-negative; track the high-water marks in-place.
        let delta = RuntimeStats {
            unique_plans: current.unique_plans - self.flushed_unique,
            dedup_saved: current.dedup_saved - self.flushed_dedup,
            ..RuntimeStats::default()
        };
        if delta.unique_plans != 0 || delta.dedup_saved != 0 {
            self.rt.facade.add(&delta);
        }
        self.flushed_unique = current.unique_plans;
        self.flushed_dedup = current.dedup_saved;
    }

    /// Raw (untracked) buffer allocation on the home shard.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn malloc_raw(&mut self, size: usize) -> Result<Addr, RuntimeError> {
        self.rt.shard(self.home)?.malloc_raw(size)
    }

    /// Raw free, routed by address.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn free_raw(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        self.rt
            .route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?
            .free_raw(addr)
    }

    /// [`ShardedRuntime::olr_free`] (address-routed; works on any
    /// shard's objects, not just the home shard's), with the fast-free
    /// counters batched into this handle's pending sheet instead of the
    /// shared atomics.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_free`].
    pub fn olr_free(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        if let Some(scanned) = self.rt.fast_free(addr) {
            self.pending.frees += 1;
            self.pending.fast_frees += 1;
            self.pending.trap_scans += u64::from(scanned);
            return Ok(());
        }
        self.rt
            .route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?
            .olr_free(addr)
    }

    /// [`ShardedRuntime::olr_getptr`], counted into this handle's
    /// plain sheet instead of the shared atomics (see
    /// [`ShardHandle::flush_stats`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`].
    #[inline]
    pub fn olr_getptr(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<Addr, RuntimeError> {
        let (resolved, count) = self.rt.fast_getptr_raw(base, expected, field, None);
        if let Some((shard, idx)) = count {
            self.sheet[shard][idx] += 1;
        }
        match resolved {
            Some(addr) => Ok(addr),
            None => self
                .rt
                .route(base, RuntimeError::UnknownObject(base))?
                .olr_getptr(base, expected, field),
        }
    }

    /// [`ShardedRuntime::olr_getptr_ic`], counted into this handle's
    /// plain sheet instead of the shared atomics (see
    /// [`ShardHandle::flush_stats`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`].
    #[inline]
    pub fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        let (resolved, count) = self.rt.fast_getptr_raw(base, expected, field, Some(ic));
        if let Some((shard, idx)) = count {
            self.sheet[shard][idx] += 1;
        }
        match resolved {
            Some(addr) => Ok(addr),
            None => self
                .rt
                .route(base, RuntimeError::UnknownObject(base))?
                .olr_getptr_ic(base, expected, field, ic),
        }
    }

    /// [`ShardedRuntime::read_field`], counted into this handle's
    /// plain sheet instead of the shared atomics (see
    /// [`ShardHandle::flush_stats`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::read_field`].
    #[inline]
    pub fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        let (resolved, count) = self.rt.fast_read_field_raw(base, expected, field);
        if let Some((shard, idx)) = count {
            self.sheet[shard][idx] += 1;
        }
        match resolved {
            Some(value) => Ok(value),
            None => self
                .rt
                .route(base, RuntimeError::UnknownObject(base))?
                .read_field(base, expected, field),
        }
    }

    /// Fold this handle's pending counts — the lock-free read sheet and
    /// the magazine/fast-free deltas — into the runtime's shared
    /// counters. Runs on drop (via [`ShardHandle::teardown`]); call it
    /// explicitly when [`ShardedRuntime::stats`] must observe this
    /// thread's operations while the handle stays alive.
    pub fn flush_stats(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        if pending != RuntimeStats::default() {
            self.rt.facade.add(&pending);
        }
        for (shard, pending) in self.sheet.iter_mut().enumerate() {
            if pending.iter().any(|&n| n != 0) {
                self.rt.fast[shard].bump_many(pending);
                *pending = [0; 8];
            }
        }
    }

    /// Number of reserved-but-unallocated capsules currently parked in
    /// this handle's magazines. Each parked capsule holds a heap block
    /// that is neither live nor free until it is popped or returned —
    /// workloads use this to reconcile heap footprints against live
    /// object counts.
    pub fn parked_capsules(&self) -> usize {
        self.magazines.iter().map(|(_, m)| m.caps.len()).sum()
    }

    /// Hand every unconsumed magazine capsule back to the home shard
    /// (counted as `magazine_returns`: reserved but never allocated, so
    /// neither an allocation nor a free) and flush all pending stats.
    /// This is the drop path, so it also runs during a panic unwind —
    /// counters are never lost and capsules are never leaked by a dying
    /// thread. The one exception is a *poisoned* home shard: its
    /// capsules stay parked (returning them needs the degraded shard's
    /// runtime), which costs the shard some blocks but keeps teardown
    /// panic-free.
    pub fn teardown(&mut self) {
        let magazines = std::mem::take(&mut self.magazines);
        let parked: usize = magazines.iter().map(|(_, m)| m.caps.len()).sum();
        if parked > 0 {
            if let Ok(mut shard) = self.rt.shard(self.home) {
                for (_, mag) in magazines {
                    for cap in &mag.caps {
                        shard.retire_reserved(cap.slot);
                    }
                }
                self.pending.magazine_returns += parked as u64;
            }
        }
        self.flush_stats();
    }

    /// [`ShardedRuntime::write_field`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::write_field`].
    pub fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        self.rt.write_field(base, expected, field, value)
    }

    /// [`ShardedRuntime::olr_memcpy`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_memcpy`].
    pub fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        self.rt.olr_memcpy(dst, src, site_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectState;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_layout::PlanHash;
    use polar_rng::RngExt;

    fn people() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("People")
                .field("vtable", FieldKind::VtablePtr)
                .field("age", FieldKind::I32)
                .field("height", FieldKind::I32)
                .build(),
        ))
    }

    fn record() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("Record")
                .field("id", FieldKind::I64)
                .field("score", FieldKind::I64)
                .field("flags", FieldKind::I32)
                .field("pad", FieldKind::I32)
                .build(),
        ))
    }

    fn sharded(shards: usize) -> ShardedRuntime {
        let mut config = RuntimeConfig::default();
        config.heap.capacity = 64 << 20;
        ShardedRuntime::new(RandomizeMode::per_allocation(), config, shards)
    }

    #[test]
    fn single_shard_facade_behaves_like_object_runtime() {
        let rt = sharded(1);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        h.write_field(obj, info.hash(), 1, 30).unwrap();
        h.write_field(obj, info.hash(), 2, 170).unwrap();
        assert_eq!(h.read_field(obj, info.hash(), 1).unwrap(), 30);
        assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 170);
        rt.olr_free(obj).unwrap();
        assert!(matches!(
            rt.olr_getptr(obj, info.hash(), 1).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
        assert!(matches!(rt.olr_free(obj).unwrap_err(), RuntimeError::DoubleFree(_)));
        h.flush_stats();
        let stats = rt.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.uaf_detected, 1);
    }

    #[test]
    fn addresses_route_back_to_their_shard() {
        let rt = sharded(4);
        let info = people();
        for t in 0..4u64 {
            let mut h = rt.handle(t);
            let obj = h.olr_malloc(&info).unwrap();
            assert_eq!(
                (obj.0 / rt.shard_span()) as usize,
                h.home_shard(),
                "allocation must land in the handle's home shard window"
            );
            // Any thread can free any address: routing is by address.
            rt.olr_free(obj).unwrap();
        }
        // Unroutable addresses fail cleanly instead of hitting shard 0.
        let wild = Addr(rt.shard_span() * 5);
        assert!(matches!(
            rt.olr_getptr(wild, info.hash(), 0).unwrap_err(),
            RuntimeError::UnknownObject(_)
        ));
        assert!(matches!(
            rt.olr_free(wild).unwrap_err(),
            RuntimeError::Heap(HeapError::InvalidFree(_))
        ));
        assert!(rt.object_meta(Addr::NULL).is_none());
    }

    #[test]
    fn cross_shard_memcpy_translates_fields() {
        let rt = sharded(4);
        let info = people();
        let mut h0 = rt.handle(0);
        let mut h1 = rt.handle(1);
        let src = h0.olr_malloc(&info).unwrap();
        h0.write_field(src, info.hash(), 1, 41).unwrap();
        h0.write_field(src, info.hash(), 2, 182).unwrap();
        let dst = h1.malloc_raw(128).unwrap();
        assert_ne!(
            (src.0 / rt.shard_span()) as usize,
            (dst.0 / rt.shard_span()) as usize,
            "test requires endpoints on different shards"
        );
        // Both directions, so both lock orders are exercised.
        rt.olr_memcpy(dst, src, &info).unwrap();
        assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 41);
        assert_eq!(rt.read_field(dst, info.hash(), 2).unwrap(), 182);
        rt.write_field(dst, info.hash(), 1, 99).unwrap();
        rt.olr_memcpy(src, dst, &info).unwrap();
        assert_eq!(rt.read_field(src, info.hash(), 1).unwrap(), 99);
        assert_eq!(rt.stats().memcpys, 2);
        // A freed cross-shard source is still UAF-detected.
        rt.olr_free(dst).unwrap();
        assert!(matches!(
            rt.olr_memcpy(src, dst, &info).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
    }

    /// The multi-threaded stress test: N threads × M random
    /// malloc/getptr/free ops, each thread checking every read against
    /// its own oracle of written values.
    #[test]
    fn parallel_churn_against_per_thread_oracles() {
        const THREADS: u64 = 4;
        const OPS: usize = 4000;
        let rt = sharded(4);
        let people = people();
        let record = record();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let rt = &rt;
                let people = &people;
                let record = &record;
                scope.spawn(move || {
                    let mut h = rt.handle(t);
                    let mut driver = SplitMix64::new(0xD81E + t);
                    // (addr, class, field values) oracles for live objects.
                    let mut live: Vec<(Addr, Arc<ClassInfo>, Vec<u64>)> = Vec::new();
                    for op in 0..OPS {
                        match driver.random_range(0..4u32) {
                            0 => {
                                let info =
                                    if driver.random_range(0..2u32) == 0 { people } else { record };
                                let obj = h.olr_malloc(info).unwrap();
                                let mut vals = Vec::new();
                                for field in 0..info.field_count() {
                                    let v = driver.next_u64() & 0xFFFF_FFFF;
                                    h.write_field(obj, info.hash(), field, v).unwrap();
                                    vals.push(v);
                                }
                                live.push((obj, Arc::clone(info), vals));
                            }
                            1 if !live.is_empty() => {
                                let i = driver.random_range(0..live.len());
                                let (obj, info, vals) = &live[i];
                                let field = driver.random_range(0..info.field_count());
                                assert_eq!(
                                    h.read_field(*obj, info.hash(), field).unwrap(),
                                    vals[field],
                                    "thread {t} op {op}: oracle mismatch"
                                );
                            }
                            2 if !live.is_empty() => {
                                let i = driver.random_range(0..live.len());
                                let (obj, info, vals) = &mut live[i];
                                let field = driver.random_range(0..info.field_count());
                                let v = driver.next_u64() & 0xFFFF_FFFF;
                                h.write_field(*obj, info.hash(), field, v).unwrap();
                                vals[field] = v;
                            }
                            3 if !live.is_empty() => {
                                let (obj, _, _) = live.swap_remove(driver.random_range(0..live.len()));
                                h.olr_free(obj).unwrap();
                            }
                            _ => {}
                        }
                    }
                    for (obj, _, _) in live {
                        h.olr_free(obj).unwrap();
                    }
                });
            }
        });
        let stats = rt.stats();
        assert!(stats.allocations > 0);
        assert_eq!(
            stats.allocations, stats.frees,
            "every allocation was drained, so the quiescent snapshot must balance"
        );
        assert_eq!(stats.total_detections(), 0);
        // Small classes take the stateless default; anything else must
        // still be served by the thread-local pools. Between them every
        // PerAllocation draw avoids a fresh engine generation.
        assert!(
            stats.pool_hits + stats.stateless_allocs > stats.allocations / 2,
            "fast paths should serve most draws: {} pool + {} stateless / {} allocs",
            stats.pool_hits,
            stats.stateless_allocs,
            stats.allocations
        );
    }

    /// Seeded cross-thread determinism: with one root seed, each thread's
    /// plan sequence is identical across runs (and independent of the
    /// other threads' scheduling, because all plan state is handle-local).
    #[test]
    fn same_root_seed_gives_identical_per_thread_plan_sequences() {
        const THREADS: u64 = 3;
        const ALLOCS: usize = 60;
        let run = || -> Vec<Vec<PlanHash>> {
            let rt = sharded(THREADS as usize);
            let people = people();
            let record = record();
            let mut sequences: Vec<Vec<PlanHash>> = vec![Vec::new(); THREADS as usize];
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let rt = &rt;
                        let people = &people;
                        let record = &record;
                        scope.spawn(move || {
                            let mut h = rt.handle(t);
                            let mut seq = Vec::with_capacity(ALLOCS);
                            for i in 0..ALLOCS {
                                let info = if i % 2 == 0 { people } else { record };
                                let obj = h.olr_malloc(info).unwrap();
                                seq.push(rt.object_meta(obj).unwrap().plan.plan_hash());
                            }
                            seq
                        })
                    })
                    .collect();
                for (t, handle) in handles.into_iter().enumerate() {
                    sequences[t] = handle.join().unwrap();
                }
            });
            sequences
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "per-thread plan sequences must replay exactly");
        // Streams are disjoint, so threads must not mirror each other.
        assert_ne!(first[0], first[1]);
        assert_ne!(first[1], first[2]);
    }

    #[test]
    fn shards_draw_disjoint_placement_streams_that_replay() {
        use polar_simheap::PlacementPolicy;

        const SHARDS: usize = 4;
        let placed = || {
            let mut config = RuntimeConfig::default();
            config.heap.capacity = 64 << 20;
            config.heap.placement =
                PlacementPolicy { shuffle_depth: 8, guard_gap_bits: 4, ..Default::default() };
            ShardedRuntime::new(RandomizeMode::per_allocation(), config, SHARDS)
        };
        let rt = placed();
        // Every shard derived its own non-zero placement seed.
        let seeds: Vec<u64> = (0..SHARDS)
            .map(|i| rt.shards[i].lock().unwrap().heap().config().placement.seed)
            .collect();
        let mut distinct = seeds.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), SHARDS, "placement seeds must be disjoint: {seeds:?}");
        assert!(seeds.iter().all(|&s| s != 0));
        // Same root seed → identical shard-local address traces.
        let trace = |rt: &ShardedRuntime| -> Vec<u64> {
            let info = people();
            let mut h = rt.handle(0);
            let mut live = Vec::new();
            let mut out = Vec::new();
            for i in 0..48usize {
                let a = h.olr_malloc(&info).unwrap();
                out.push(a.0);
                live.push(a);
                if live.len() > 4 {
                    let v = live.remove(i % live.len());
                    h.olr_free(v).unwrap();
                }
            }
            out
        };
        let a = trace(&rt);
        assert_eq!(a, trace(&placed()), "sharded placement must replay from the root seed");
        // The placement layer actually engaged: the trace diverges from
        // the deterministic (placement-off) facade's.
        assert_ne!(a, trace(&sharded(SHARDS)), "placement should perturb the address trace");
    }

    /// Satellite regression for the staged cross-shard copy: the copy
    /// destination's booby traps must be as live as a same-shard copy's —
    /// a corrupted dummy canary on the duplicate fires `TrapTriggered` on
    /// free either way, and the new trap counters fold across shards.
    #[test]
    fn cross_shard_memcpy_preserves_trap_detection_parity() {
        fn corrupt_and_free(rt: &ShardedRuntime, dst: Addr) -> bool {
            let Some(meta) = rt.object_meta(dst) else {
                panic!("copy destination must be tracked after olr_memcpy");
            };
            let Some(dummy) = meta.plan.dummies().iter().find(|d| d.canary.is_some()) else {
                // This draw carried no canaried dummy; clean free, retry.
                rt.olr_free(dst).unwrap();
                return false;
            };
            let slot = dst.offset(u64::from(dummy.offset));
            // Flip the canary's low byte so the scan cannot miss it.
            let cur = rt.heap_read_uint(slot, 1).unwrap();
            rt.heap_write_uint(slot, !cur & 0xFF, 1).unwrap();
            assert!(
                matches!(rt.olr_free(dst).unwrap_err(), RuntimeError::TrapTriggered(_)),
                "corrupted duplicate dummy must trip the free-path trap scan"
            );
            true
        }

        let rt = sharded(4);
        let info = people();
        let mut h0 = rt.handle(0);
        let mut h1 = rt.handle(1);
        let src = h0.olr_malloc(&info).unwrap();
        h0.write_field(src, info.hash(), 1, 5).unwrap();
        let src_shard = (src.0 / rt.shard_span()) as usize;

        for (cross, handle) in [(false, &mut h0), (true, &mut h1)] {
            let mut proved = false;
            for _ in 0..64 {
                let dst = handle.malloc_raw(info.size() as usize + 64).unwrap();
                assert_eq!(
                    (dst.0 / rt.shard_span()) as usize != src_shard,
                    cross,
                    "destination must be {} the source shard",
                    if cross { "outside" } else { "inside" }
                );
                rt.olr_memcpy(dst, src, &info).unwrap();
                assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 5);
                if corrupt_and_free(&rt, dst) {
                    proved = true;
                    break;
                }
            }
            assert!(
                proved,
                "{}-shard copy: no destination drew a canaried dummy in 64 draws",
                if cross { "cross" } else { "same" }
            );
        }

        let stats = rt.stats();
        assert!(stats.traps_triggered >= 2, "both paths must have fired: {stats:?}");
        assert!(stats.dummy_touches >= stats.traps_triggered);
        assert!(stats.trap_scans >= 2, "free-path sweeps must be counted: {stats:?}");
    }

    #[test]
    fn in_place_memcpy_works_through_the_facade() {
        // The overlap fix holds on the sharded path too (same-shard
        // delegation uses the staged single-runtime copy).
        let rt = sharded(2);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        h.write_field(obj, info.hash(), 1, 7).unwrap();
        h.write_field(obj, info.hash(), 2, 9).unwrap();
        rt.olr_memcpy(obj, obj, &info).unwrap();
        assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), 7);
        assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 9);
    }

    /// The lock-free read path serves plain, inline-cached and
    /// `read_field` accesses without the shard mutex, and its counters
    /// keep the locked path's semantics.
    #[test]
    fn lock_free_reads_resolve_and_count_like_the_locked_path() {
        let rt = sharded(2);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        h.write_field(obj, info.hash(), 1, 23).unwrap();
        h.write_field(obj, info.hash(), 2, 99).unwrap();

        let before = rt.stats();
        let mut ic = SiteCache::empty();
        for _ in 0..10 {
            assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), 23);
            let via_plain = rt.olr_getptr(obj, info.hash(), 2).unwrap();
            let via_ic = rt.olr_getptr_ic(obj, info.hash(), 2, &mut ic).unwrap();
            assert_eq!(via_plain, via_ic, "both paths must resolve the same address");
        }
        let delta = {
            let mut d = rt.stats();
            d.member_accesses -= before.member_accesses;
            d.lockfree_reads -= before.lockfree_reads;
            d.cache_hits -= before.cache_hits;
            d.site_ic_hits -= before.site_ic_hits;
            d
        };
        assert_eq!(delta.member_accesses, 30, "every facade read is one member access");
        assert_eq!(
            delta.lockfree_reads, 30,
            "an uncontended single thread must never fall back: {delta:?}"
        );
        // First ic call misses (cold site), the remaining nine hit.
        assert_eq!(delta.site_ic_hits, 9);
        // The object was warmed by the setup writes, so every read here
        // is an offset-cache hit.
        assert_eq!(delta.cache_hits, 30);

        // Detections still work (via fallback to the locked path).
        rt.olr_free(obj).unwrap();
        assert!(matches!(
            rt.read_field(obj, info.hash(), 1).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
        let after = rt.stats();
        assert_eq!(after.uaf_detected, 1);
        assert!(after.lockfree_fallbacks > 0, "the freed read must have fallen back");
    }

    /// Torture phase 1: fixed live objects, writers churning field
    /// values whose two halves always match, readers asserting every
    /// lock-free load is untorn (halves equal) and correctly tagged.
    #[test]
    fn torture_lock_free_reads_are_never_torn() {
        const READERS: usize = 2;
        const WRITER_OPS: usize = 20_000;
        const OBJECTS: usize = 32;
        let rt = sharded(2);
        let info = record();
        let mut h = rt.handle(0);
        let objects: Vec<Addr> = (0..OBJECTS).map(|_| h.olr_malloc(&info).unwrap()).collect();
        for &obj in &objects {
            for field in 0..info.field_count() {
                rt.write_field(obj, info.hash(), field, 0).unwrap();
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        let attempts: u64 = std::thread::scope(|scope| {
            let (rt, info, objects, stop) = (&rt, &info, &objects, &stop);
            let writer = scope.spawn(move || {
                let mut h = rt.handle(1);
                let mut driver = SplitMix64::new(0x70C7);
                for _ in 0..WRITER_OPS {
                    let obj = objects[driver.random_range(0..OBJECTS)];
                    // 64-bit fields only (0 and 1): a value whose halves
                    // must agree, so a torn read is self-evident.
                    let field = driver.random_range(0..2usize);
                    let x = driver.next_u64() & 0xFFFF_FFFF;
                    h.write_field(obj, info.hash(), field, (x << 32) | x).unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    scope.spawn(move || {
                        let mut driver = SplitMix64::new(0x4EAD + r as u64);
                        let mut n = 0u64;
                        // Floor of 1000 reads per reader: on a single
                        // core the (fast) writer can run to completion
                        // before the readers are even scheduled, and a
                        // stop-flag-only loop would then exit with zero
                        // reads taken. The post-stop tail is quiescent,
                        // which also guarantees optimistic hits.
                        while !stop.load(std::sync::atomic::Ordering::Acquire) || n < 1_000 {
                            let obj = objects[driver.random_range(0..OBJECTS)];
                            let field = driver.random_range(0..2usize);
                            let v = rt.read_field(obj, info.hash(), field).unwrap();
                            assert_eq!(
                                v >> 32,
                                v & 0xFFFF_FFFF,
                                "torn lock-free read on reader {r}"
                            );
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            writer.join().unwrap();
            readers.into_iter().map(|r| r.join().unwrap()).sum()
        });
        let stats = rt.stats();
        assert_eq!(
            stats.lockfree_reads + stats.lockfree_fallbacks,
            attempts,
            "every facade read attempt must be counted exactly once"
        );
        assert!(
            stats.lockfree_reads > 0,
            "the optimistic path must serve reads under write churn"
        );
        assert_eq!(stats.total_detections(), 0);
    }

    /// Torture phase 2: full lifecycle churn (free / re-malloc / copy)
    /// against concurrent lock-free readers. Readers must only ever see
    /// clean outcomes (a value, or a classified detection), and raw
    /// publication snapshots must be self-consistent.
    #[test]
    fn torture_lifecycle_churn_keeps_snapshots_consistent() {
        const WRITER_OPS: usize = 8_000;
        let rt = sharded(2);
        let info = people();
        let other = record();
        let mut h = rt.handle(0);
        let seed_objs: Vec<Addr> = (0..16).map(|_| h.olr_malloc(&info).unwrap()).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (rt, info, other, seed_objs, stop) = (&rt, &info, &other, &seed_objs, &stop);
            let writer = scope.spawn(move || {
                let mut h = rt.handle(0);
                let mut driver = SplitMix64::new(0xC43F);
                let mut live = seed_objs.clone();
                for _ in 0..WRITER_OPS {
                    match driver.random_range(0..3u32) {
                        0 => {
                            let class =
                                if driver.random_range(0..2u32) == 0 { info } else { other };
                            live.push(h.olr_malloc(class).unwrap());
                        }
                        1 if live.len() > 4 => {
                            let obj = live.swap_remove(driver.random_range(0..live.len()));
                            h.olr_free(obj).unwrap();
                        }
                        _ if !live.is_empty() => {
                            let obj = live[driver.random_range(0..live.len())];
                            // In-place rerandomization: the riskiest
                            // publication window (fields move).
                            if rt.object_meta(obj).is_some_and(|m| m.class.hash() == info.hash())
                            {
                                h.olr_memcpy(obj, obj, info).unwrap();
                            }
                        }
                        _ => {}
                    }
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            let reader = scope.spawn(move || {
                let mut driver = SplitMix64::new(0x5EE5);
                let mut probes = 0u64;
                // Same 1000-probe floor as the torn-read torture: the
                // writer can finish before this thread is scheduled.
                while !stop.load(std::sync::atomic::Ordering::Acquire) || probes < 1_000 {
                    probes += 1;
                    let obj = seed_objs[driver.random_range(0..seed_objs.len())];
                    match rt.read_field(obj, info.hash(), 1) {
                        Ok(_) => {}
                        Err(
                            RuntimeError::UseAfterFree { .. }
                            | RuntimeError::UnknownObject(_)
                            | RuntimeError::ClassMismatch { .. }
                            | RuntimeError::Heap(_),
                        ) => {}
                        Err(other) => panic!("unclassified churn outcome: {other}"),
                    }
                    // Raw snapshot self-consistency: a stable LIVE,
                    // generation-current snapshot must carry a
                    // registered plan whose hash matches.
                    if let Some(SnapshotOutcome::Snap(s)) = rt.publish_probe(obj) {
                        if s.state == PUB_STATE_LIVE && s.meta_gen == s.heap_gen {
                            if let Some(id) = s.plan_id {
                                let plan = rt
                                    .registry_plan(id)
                                    .expect("published plan ids must resolve");
                                assert_eq!(
                                    plan.plan_hash().0,
                                    s.plan_hash,
                                    "published id and hash must agree"
                                );
                            }
                        }
                    }
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });
        let stats = rt.stats();
        assert!(stats.lockfree_reads + stats.lockfree_fallbacks > 0);
    }

    /// Satellite: a thread dying inside one shard degrades that shard
    /// into `ShardPoisoned` errors instead of panicking the process —
    /// while already-published objects stay readable *and freeable*
    /// lock-free (neither fast path ever touches the mutex).
    #[test]
    fn poisoned_shard_degrades_instead_of_panicking() {
        let rt = sharded(2);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        let keep = h.olr_malloc(&info).unwrap();
        h.write_field(keep, info.hash(), 1, 77).unwrap();
        let victim = (obj.0 / rt.shard_span()) as usize;

        // Poison the victim shard's mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = rt.shards[victim].lock().unwrap();
            panic!("simulated shard death");
        }));

        // Mutating paths on the poisoned shard report the typed error.
        assert!(matches!(
            rt.olr_malloc_on(victim, &info).unwrap_err(),
            RuntimeError::ShardPoisoned { shard } if shard == victim
        ));
        // The lock-free free path stays available on the degraded shard
        // (claim + remote push, no mutex)...
        rt.olr_free(obj).unwrap();
        // ...while a free the fast path cannot classify (here: a double
        // free) falls back to the mutex and reports the degradation.
        assert!(matches!(
            rt.olr_free(obj).unwrap_err(),
            RuntimeError::ShardPoisoned { shard } if shard == victim
        ));
        // The other shard keeps working.
        let alive = (victim + 1) % rt.shard_count();
        rt.olr_malloc_on(alive, &info).unwrap();
        // Observability stays available (poison ignored)...
        h.flush_stats();
        assert!(rt.stats().allocations >= 3);
        assert!(rt.stats().fast_frees >= 1);
        assert!(rt.object_meta(keep).is_some());
        assert!(rt.estimated_metadata_bytes() > 0);
        // ...and the lock-free read path never touches the mutex at all.
        assert_eq!(rt.read_field(keep, info.hash(), 1).unwrap(), 77);
    }

    #[test]
    fn metadata_bytes_sum_over_shards() {
        let rt = sharded(4);
        let info = people();
        let mut handles: Vec<_> = (0..4).map(|t| rt.handle(t)).collect();
        for h in &mut handles {
            for _ in 0..10 {
                h.olr_malloc(&info).unwrap();
            }
        }
        assert!(rt.estimated_metadata_bytes() > 0);
        for h in &mut handles {
            h.flush_stats();
        }
        assert_eq!(rt.stats().allocations, 40);
    }

    /// Tentpole acceptance: in a bench-shaped malloc/free loop the
    /// magazine serves ≥ 90 % of allocations without the shard lock
    /// (steady state with batch K is (K−1)/K hits), and every free
    /// completes on the lock-free claim path.
    #[test]
    fn magazine_hit_rate_exceeds_90_percent_in_steady_state() {
        let rt = sharded(1);
        let info = record();
        let mut h = rt.handle(0);
        let mut live = std::collections::VecDeque::new();
        for _ in 0..2_048 {
            live.push_back(h.olr_malloc(&info).unwrap());
            if live.len() > 64 {
                h.olr_free(live.pop_front().unwrap()).unwrap();
            }
        }
        while let Some(obj) = live.pop_front() {
            h.olr_free(obj).unwrap();
        }
        h.flush_stats();
        let stats = rt.stats();
        assert_eq!(stats.allocations, 2_048);
        assert_eq!(stats.frees, 2_048);
        let served = stats.magazine_hits + stats.magazine_refills;
        assert_eq!(served, 2_048, "every allocation must go through the magazine");
        let hit_rate = stats.magazine_hits as f64 / served as f64;
        assert!(hit_rate >= 0.90, "magazine hit rate {hit_rate:.3} below the 90% floor");
        assert_eq!(stats.fast_frees, 2_048, "single-owner frees must all claim lock-free");
        assert_eq!(
            stats.remote_drained, stats.fast_frees,
            "at quiescence every claimed slot has been drained and retired"
        );
        assert_eq!(stats.total_detections(), 0);
    }

    /// `MagazinePolicy::disabled()` restores the pre-magazine facade:
    /// every allocation takes the shard lock, every free goes through
    /// the mutex, and the magazine/fast-free counters stay zero.
    #[test]
    fn disabled_magazines_restore_the_locked_paths() {
        let mut config = RuntimeConfig::default();
        config.heap.capacity = 64 << 20;
        config.magazine = crate::runtime::MagazinePolicy::disabled();
        let rt = ShardedRuntime::new(RandomizeMode::per_allocation(), config, 2);
        let info = people();
        let mut h = rt.handle(0);
        let objs: Vec<Addr> = (0..20).map(|_| h.olr_malloc(&info).unwrap()).collect();
        for obj in objs {
            rt.olr_free(obj).unwrap();
        }
        h.flush_stats();
        let stats = rt.stats();
        assert_eq!(stats.allocations, 20);
        assert_eq!(stats.frees, 20);
        assert_eq!(stats.magazine_hits, 0);
        assert_eq!(stats.magazine_refills, 0);
        assert_eq!(stats.magazine_returns, 0);
        assert_eq!(stats.fast_frees, 0);
        assert_eq!(stats.remote_drained, 0);
    }

    /// Satellite: dropping a handle mid-unwind (the panic-safe flush
    /// point) still folds its pending counters into the facade and
    /// returns parked capsules to the shard, so no allocation capacity
    /// or statistics leak with the dying thread.
    #[test]
    fn handle_drop_during_unwind_flushes_stats_and_returns_capsules() {
        let rt = sharded(1);
        let info = people();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut h = rt.handle(0);
            for _ in 0..5 {
                h.olr_malloc(&info).unwrap();
            }
            panic!("simulated workload death");
        }));
        assert!(result.is_err());
        let stats = rt.stats();
        assert_eq!(
            stats.allocations, 5,
            "pending allocation counts must survive the unwind"
        );
        assert!(
            stats.magazine_returns > 0,
            "parked capsules must be retired back to the shard"
        );
        // The returned capsules really released their blocks: a fresh
        // handle can still turn the full heap over.
        let mut h2 = rt.handle(0);
        let obj = h2.olr_malloc(&info).unwrap();
        h2.write_field(obj, info.hash(), 1, 9).unwrap();
        assert_eq!(h2.read_field(obj, info.hash(), 1).unwrap(), 9);
        let footprint = rt.heap_footprint();
        assert_eq!(
            footprint.heap_allocs - footprint.heap_frees,
            // 5 popped + still-live `obj` + whatever h2's magazine parks.
            6 + h2.parked_capsules() as u64,
            "only live objects and parked capsules may hold heap blocks"
        );
    }

    /// Satellite: magazine-recycled slots bump their record generation
    /// exactly like mutex-path frees — one step per recycle, no skips,
    /// no stale revival. A tiny arena forces block reuse through the
    /// refill path itself.
    #[test]
    fn magazine_recycled_slots_bump_generations_by_one() {
        let mut config = RuntimeConfig::default();
        config.heap.capacity = 1 << 14; // ~160 blocks: reuse is forced
        config.magazine = crate::runtime::MagazinePolicy { batch: 8 };
        let rt = ShardedRuntime::new(RandomizeMode::per_allocation(), config, 1);
        let info = people();
        let mut h = rt.handle(0);
        let mut last_gen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut recycled = 0u64;
        for _ in 0..300 {
            let obj = h.olr_malloc(&info).unwrap();
            let meta = rt.object_meta(obj).expect("fresh allocation has a record");
            assert_eq!(meta.state, ObjectState::Live);
            match last_gen.insert(obj.0, meta.generation) {
                None => assert_eq!(meta.generation, 1, "first record of a slot starts at 1"),
                Some(prev) => {
                    recycled += 1;
                    assert_eq!(
                        meta.generation,
                        prev + 1,
                        "a recycled slot must advance exactly one generation"
                    );
                }
            }
            h.olr_free(obj).unwrap();
            // The freed record keeps its generation until the slot is
            // re-armed (object_meta drains the remote stack first, so
            // the fast-freed state is visible).
            let meta = rt.object_meta(obj).expect("freed record is retained");
            assert_eq!(meta.state, ObjectState::Freed);
            assert_eq!(meta.generation, last_gen[&obj.0]);
        }
        assert!(recycled > 0, "the tiny arena must have recycled blocks");
    }

    /// Satellite torture: cross-thread remote frees racing seqlock
    /// readers. An owner thread keeps allocating and handing addresses
    /// to freer threads (whose claims land on the owner's shard as
    /// remote frees), while readers hammer a stable set checking for
    /// torn values. Everything must stay classified and balanced.
    #[test]
    fn torture_remote_frees_mix_with_lock_free_readers() {
        const FREERS: usize = 2;
        const READERS: usize = 2;
        let churn_objs: usize = if cfg!(debug_assertions) { 6_000 } else { 40_000 };
        let rt = sharded(2);
        let info = record();
        let mut h = rt.handle(0);
        let stable: Vec<Addr> = (0..16)
            .map(|i| {
                let obj = h.olr_malloc(&info).unwrap();
                for field in 0..info.field_count() {
                    let x = 0x1000 + i as u64;
                    h.write_field(obj, info.hash(), field, (x << 32) | x).unwrap();
                }
                obj
            })
            .collect();
        drop(h);
        let (tx, rx) = std::sync::mpsc::channel::<Addr>();
        let rx = std::sync::Mutex::new(rx);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (rt, info, stable, rx, stop) = (&rt, &info, &stable, &rx, &stop);
            let owner = scope.spawn(move || {
                let mut h = rt.handle(0);
                for _ in 0..churn_objs {
                    tx.send(h.olr_malloc(info).unwrap()).unwrap();
                }
                drop(tx);
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            let freers: Vec<_> = (0..FREERS)
                .map(|_| {
                    scope.spawn(move || loop {
                        let next = rx.lock().unwrap().recv();
                        match next {
                            Ok(addr) => rt.olr_free(addr).unwrap(),
                            Err(_) => break, // owner hung up: all freed
                        }
                    })
                })
                .collect();
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    scope.spawn(move || {
                        let mut driver = SplitMix64::new(0x4EAD + r as u64);
                        let mut n = 0u64;
                        while !stop.load(std::sync::atomic::Ordering::Acquire) || n < 1_000 {
                            let obj = stable[driver.random_range(0..stable.len())];
                            let field = driver.random_range(0..2usize);
                            let v = rt.read_field(obj, info.hash(), field).unwrap();
                            assert_eq!(v >> 32, v & 0xFFFF_FFFF, "torn read on reader {r}");
                            n += 1;
                        }
                    })
                })
                .collect();
            owner.join().unwrap();
            for f in freers {
                f.join().unwrap();
            }
            for r in readers {
                r.join().unwrap();
            }
        });
        let stats = rt.stats();
        assert_eq!(stats.allocations, churn_objs as u64 + 16);
        assert_eq!(stats.frees, churn_objs as u64);
        assert!(
            stats.fast_frees > 0,
            "cross-thread frees must exercise the remote-free path"
        );
        assert_eq!(
            stats.remote_drained, stats.fast_frees,
            "every claimed slot must be drained at quiescence"
        );
        assert_eq!(stats.total_detections(), 0);
    }
}
