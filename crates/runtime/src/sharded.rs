//! The concurrent sharded runtime: POLaR for multi-threaded programs.
//!
//! [`ObjectRuntime`] is deliberately `&mut self` — one heap, one shadow
//! index, one RNG. This module scales it across threads without touching
//! that hot path:
//!
//! * **Shards.** A [`ShardedRuntime`] owns N complete `ObjectRuntime`s,
//!   each behind its own mutex (lock striping) and each given a disjoint
//!   arena window `[i·span, (i+1)·span)` via
//!   [`HeapConfig::arena_base`](polar_simheap::HeapConfig). Any address
//!   names its owning shard by one division, so frees, member accesses
//!   and copies route without consulting shared state.
//! * **Per-thread plan state.** Each thread obtains a [`ShardHandle`]
//!   carrying its *own* [`PlanPools`], [`PlanInterner`], [`LayoutEngine`]
//!   and [`BufferedRng`], seeded from disjoint [`SplitMix64`] jump
//!   streams of the root seed. Plans are drawn outside any lock; the
//!   home shard only mallocs, seeds traps and records metadata. Streams
//!   are per-thread, so the plan sequence a thread sees is a pure
//!   function of `(root seed, thread index)` — independent of scheduling
//!   and of every other thread (the cross-thread determinism the tests
//!   pin down, and the independence Heelan-style heap-shaping attacks
//!   are meant to be starved by).
//! * **Atomic stats.** Handle-side pool and interner counters fold into
//!   an [`AtomicRuntimeStats`] with relaxed adds;
//!   [`ShardedRuntime::stats`] combines that snapshot with each shard's
//!   counters read under the shard lock.
//!
//! Handles round-robin their **home shard** (`thread % shards`) for
//! allocations; accesses to any address still work from any thread
//! because routing is by address, not by handle.

use std::sync::{Arc, Mutex, MutexGuard};

use polar_classinfo::{ClassHash, ClassInfo};
use polar_layout::{
    LayoutEngine, PlanInterner, PlanPools, RandomizationPolicy, STATELESS_MAX_FIELDS,
};
use polar_rng::{BufferedRng, Rng, SeedableRng, SplitMix64, Xoshiro256StarStar};
use polar_simheap::{Addr, HeapError};

use crate::error::RuntimeError;
use crate::runtime::{ObjectMeta, ObjectRuntime, RandomizeMode, RuntimeConfig, SiteCache};
use crate::stats::{AtomicRuntimeStats, RuntimeStats};

/// Smallest per-shard arena the constructor accepts: a shard must at
/// least fit its reserved alignment unit plus a few blocks.
const MIN_SHARD_CAPACITY: usize = 4096;

/// Salt folded into the root seed before deriving per-shard runtime
/// seeds, so shard-internal RNG streams (plan fitting, unpooled draws)
/// never coincide with the per-thread handle streams derived from the
/// unsalted root.
const SHARD_SEED_SALT: u64 = 0x5348_4152; // "SHAR"

/// A thread-safe POLaR runtime: N address-partitioned [`ObjectRuntime`]
/// shards behind striped locks, shared by reference across threads.
///
/// The existing single-thread API is untouched — `ShardedRuntime` is a
/// facade over ordinary `ObjectRuntime`s, and single-threaded code keeps
/// using `ObjectRuntime` directly.
#[derive(Debug)]
pub struct ShardedRuntime {
    shards: Vec<Mutex<ObjectRuntime>>,
    /// Arena bytes per shard; shard of `addr` = `addr / span`.
    span: u64,
    mode: RandomizeMode,
    config: RuntimeConfig,
    /// Handle-side counters (pool hits/refills, interner dedup) folded in
    /// with relaxed atomics.
    facade: AtomicRuntimeStats,
}

impl ShardedRuntime {
    /// Create a runtime with `shards` address-partitioned shards.
    ///
    /// `config.heap.capacity` is the *total* arena budget, split evenly;
    /// `config.heap.arena_base` must be 0 (the facade assigns bases).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`, when the per-shard capacity would fall
    /// below a usable minimum, or when `config.heap.arena_base != 0`.
    pub fn new(mode: RandomizeMode, config: RuntimeConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded runtime needs at least one shard");
        assert_eq!(
            config.heap.arena_base, 0,
            "the facade owns arena partitioning; leave arena_base at 0"
        );
        // Round the per-shard span down to an alignment-friendly boundary
        // so every shard window starts on a block-aligned address.
        let per = (config.heap.capacity / shards) & !(MIN_SHARD_CAPACITY - 1);
        assert!(
            per >= MIN_SHARD_CAPACITY,
            "capacity {} is too small for {} shards",
            config.heap.capacity,
            shards
        );
        let shards = (0..shards)
            .map(|i| {
                let mut shard_config = config;
                shard_config.heap.capacity = per;
                shard_config.heap.arena_base = i as u64 * per as u64;
                // Distinct per-shard seeds keep shard-internal streams
                // (plan fitting, unpooled draws, epoch keys) independent.
                shard_config.seed =
                    SplitMix64::stream(config.seed ^ SHARD_SEED_SALT, i as u64).next_u64();
                Mutex::new(ObjectRuntime::new(mode, shard_config))
            })
            .collect();
        ShardedRuntime { shards, span: per as u64, mode, config, facade: AtomicRuntimeStats::new() }
    }

    /// The runtime's mode.
    pub fn mode(&self) -> &RandomizeMode {
        &self.mode
    }

    /// The configuration the facade was built from (total capacity,
    /// root seed).
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Arena bytes owned by each shard.
    pub fn shard_span(&self) -> u64 {
        self.span
    }

    /// A per-thread handle. `thread` selects both the home shard
    /// (`thread % shards`) and the thread's disjoint randomness stream;
    /// two handles built with the same `(root seed, thread)` draw
    /// identical plan sequences regardless of what other threads do.
    pub fn handle(&self, thread: u64) -> ShardHandle<'_> {
        let policy = match self.mode {
            RandomizeMode::PerAllocation { policy } => policy,
            RandomizeMode::StaticOlr { policy, .. } => policy,
            RandomizeMode::Native => RandomizationPolicy::off(),
        };
        ShardHandle {
            rt: self,
            home: (thread % self.shards.len() as u64) as usize,
            engine: LayoutEngine::new(policy),
            interner: PlanInterner::new(),
            pools: PlanPools::new(self.config.pool),
            rng: thread_rng(self.config.seed, thread),
            flushed_unique: 0,
            flushed_dedup: 0,
        }
    }

    /// The shard owning `addr`, or `None` for null and out-of-window
    /// addresses.
    fn shard_of(&self, addr: Addr) -> Option<usize> {
        if addr.is_null() {
            return None;
        }
        let i = (addr.0 / self.span) as usize;
        (i < self.shards.len()).then_some(i)
    }

    fn shard(&self, i: usize) -> MutexGuard<'_, ObjectRuntime> {
        self.shards[i].lock().expect("shard lock poisoned by a panicking thread")
    }

    /// Route `addr` to its shard's lock, or fail with `err`.
    fn route(&self, addr: Addr, err: RuntimeError) -> Result<MutexGuard<'_, ObjectRuntime>, RuntimeError> {
        match self.shard_of(addr) {
            Some(i) => Ok(self.shard(i)),
            None => Err(err),
        }
    }

    /// [`ObjectRuntime::olr_free`], routed by address.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; addresses outside every shard
    /// window report [`HeapError::InvalidFree`].
    pub fn olr_free(&self, addr: Addr) -> Result<(), RuntimeError> {
        self.route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?.olr_free(addr)
    }

    /// [`ObjectRuntime::olr_getptr`], routed by address.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; unroutable addresses report
    /// [`RuntimeError::UnknownObject`].
    pub fn olr_getptr(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<Addr, RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?.olr_getptr(base, expected, field)
    }

    /// [`ObjectRuntime::olr_getptr_ic`], routed by address. The site
    /// cache is the caller's (typically thread-local) storage.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`].
    pub fn olr_getptr_ic(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?
            .olr_getptr_ic(base, expected, field, ic)
    }

    /// [`ObjectRuntime::read_field`], routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`] plus heap faults.
    pub fn read_field(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?.read_field(base, expected, field)
    }

    /// [`ObjectRuntime::write_field`], routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`] plus heap faults.
    pub fn write_field(
        &self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?
            .write_field(base, expected, field, value)
    }

    /// [`ObjectRuntime::olr_memcpy`] across shards: same-shard copies
    /// delegate under one lock; cross-shard copies stage the source
    /// fields on the source shard, then install the duplicate on the
    /// destination shard. Both locks are taken in shard-index order so
    /// concurrent copies in opposite directions cannot deadlock.
    ///
    /// # Errors
    ///
    /// As for the single-thread call; unroutable endpoints fault.
    pub fn olr_memcpy(
        &self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        let len = site_class.size() as usize;
        let src_i = self
            .shard_of(src)
            .ok_or(RuntimeError::Heap(HeapError::Fault { addr: src, len }))?;
        let dst_i = self
            .shard_of(dst)
            .ok_or(RuntimeError::Heap(HeapError::Fault { addr: dst, len }))?;
        if src_i == dst_i {
            return self.shard(src_i).olr_memcpy(dst, src, site_class);
        }
        // Index-ordered locking: every cross-shard copy acquires the
        // lower-numbered shard first.
        let (first, second) = (src_i.min(dst_i), src_i.max(dst_i));
        let first_guard = self.shard(first);
        let second_guard = self.shard(second);
        let (mut src_rt, mut dst_rt) = if src_i < dst_i {
            (first_guard, second_guard)
        } else {
            (second_guard, first_guard)
        };
        let (info, src_plan) = src_rt.copy_source(src, site_class)?;
        let staged = src_rt.stage_fields(src, &src_plan)?;
        dst_rt.install_copy(dst, info, &src_plan, &staged)
    }

    /// [`ObjectRuntime::check_traps`], routed by address.
    ///
    /// # Errors
    ///
    /// As for the single-thread call.
    pub fn check_traps(&self, base: Addr) -> Result<Vec<crate::TrapReport>, RuntimeError> {
        self.route(base, RuntimeError::UnknownObject(base))?.check_traps(base)
    }

    /// Metadata snapshot for the object at `base` (cloned out of the
    /// owning shard), if tracked.
    pub fn object_meta(&self, base: Addr) -> Option<ObjectMeta> {
        let i = self.shard_of(base)?;
        self.shard(i).object_meta(base).cloned()
    }

    /// Combined statistics: every shard's counters (each read under its
    /// lock, so per-shard numbers are internally consistent) plus the
    /// facade's handle-side atomics. Exact at quiescence; while threads
    /// are mid-operation each counter is individually exact but the
    /// cross-counter view is approximate (see [`AtomicRuntimeStats`]).
    ///
    /// `unique_plans`/`dedup_saved` sum over *all* interners (one per
    /// shard + one per handle), so they bound metadata held, not global
    /// plan distinctness.
    pub fn stats(&self) -> RuntimeStats {
        let mut total = self.facade.snapshot();
        for i in 0..self.shards.len() {
            total += self.shard(i).stats();
        }
        total
    }

    /// Estimated POLaR bookkeeping bytes, summed over shards.
    pub fn estimated_metadata_bytes(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard(i).estimated_metadata_bytes()).sum()
    }

    /// The shard owning `addr` for a raw heap access, or a wild-access
    /// fault when no shard window contains it.
    fn heap_shard(&self, addr: Addr, len: usize) -> Result<MutexGuard<'_, ObjectRuntime>, HeapError> {
        match self.shard_of(addr) {
            Some(i) => Ok(self.shard(i)),
            None => Err(HeapError::Fault { addr, len }),
        }
    }

    /// Raw (untracked) allocation on shard `shard % shard_count()` — the
    /// sharded analogue of [`ObjectRuntime::malloc_raw`] for callers
    /// embedding the facade as one execution context.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn malloc_raw_on(&self, shard: usize, size: usize) -> Result<Addr, RuntimeError> {
        self.shard(shard % self.shards.len()).malloc_raw(size)
    }

    /// Instrumented allocation on shard `shard % shard_count()`, using
    /// the shard's own deterministic plan state rather than a per-thread
    /// [`ShardHandle`]. Single-context embeddings (one logical thread
    /// driving the whole facade) allocate this way.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_malloc`].
    pub fn olr_malloc_on(
        &self,
        shard: usize,
        info: &Arc<ClassInfo>,
    ) -> Result<Addr, RuntimeError> {
        self.shard(shard % self.shards.len()).olr_malloc(info)
    }

    /// [`ObjectRuntime::compile_time_plan`], delegated to shard 0. The
    /// static-OLR table derives from the mode's binary seed, which every
    /// shard shares, so any shard would answer identically.
    pub fn compile_time_plan(&self, info: &Arc<ClassInfo>) -> Arc<polar_layout::LayoutPlan> {
        self.shard(0).compile_time_plan(info)
    }

    /// Raw free, routed by address.
    ///
    /// # Errors
    ///
    /// Propagates heap errors; addresses outside every shard window
    /// report [`HeapError::InvalidFree`].
    pub fn free_raw(&self, addr: Addr) -> Result<(), RuntimeError> {
        self.route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?.free_raw(addr)
    }

    /// Arena-bounded raw read ([`SimHeap::read_uint`]), routed by
    /// address. Like the single-heap primitive this deliberately ignores
    /// block boundaries within a shard — it is the attack-model probe.
    ///
    /// [`SimHeap::read_uint`]: polar_simheap::SimHeap::read_uint
    ///
    /// # Errors
    ///
    /// Faults outside every shard window or past a shard's arena.
    pub fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        self.heap_shard(addr, width)?.heap().read_uint(addr, width)
    }

    /// Arena-bounded raw write, routed by address (the attack-model
    /// corruption primitive; see [`ShardedRuntime::heap_read_uint`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`].
    pub fn heap_write_uint(&self, addr: Addr, value: u64, width: usize) -> Result<(), HeapError> {
        self.heap_shard(addr, width)?.heap_mut().write_uint(addr, value, width)
    }

    /// Arena-bounded raw byte write, routed by address.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`].
    pub fn heap_write(&self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        self.heap_shard(addr, bytes.len())?.heap_mut().write(addr, bytes)
    }

    /// Raw `memmove`, routed by endpoint. Same-shard moves delegate to
    /// the shard heap (overlap-safe); cross-shard moves stage through a
    /// buffer — the windows are disjoint, so there is no overlap to
    /// preserve and the two locks can be taken one at a time.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::heap_read_uint`] on either endpoint.
    pub fn heap_memmove(&self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        let src_i = self.shard_of(src).ok_or(HeapError::Fault { addr: src, len })?;
        let dst_i = self.shard_of(dst).ok_or(HeapError::Fault { addr: dst, len })?;
        if src_i == dst_i {
            return self.shard(src_i).heap_mut().memmove(dst, src, len);
        }
        let staged = self.shard(src_i).heap().read(src, len)?.to_vec();
        self.shard(dst_i).heap_mut().write(dst, &staged)
    }

    /// Block-boundary check ([`SimHeap::read_in_block`]), routed by
    /// address — the redzone-mode guard.
    ///
    /// [`SimHeap::read_in_block`]: polar_simheap::SimHeap::read_in_block
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBlock`] for accesses crossing a block boundary,
    /// plus routing faults.
    pub fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        self.heap_shard(addr, len)?.heap().read_in_block(addr, len).map(|_| ())
    }
}

/// Seed material for thread `t` comes from SplitMix64 stream `t` of the
/// root seed: disjoint expansion windows give every thread an
/// independent, reproducible generator no other stream index can reach.
fn thread_rng(root: u64, thread: u64) -> BufferedRng {
    let mut seeder = SplitMix64::stream(root, thread);
    let mut seed = <Xoshiro256StarStar as SeedableRng>::Seed::default();
    seeder.fill_bytes(seed.as_mut());
    BufferedRng::new(Xoshiro256StarStar::from_seed(seed))
}

/// One thread's view of a [`ShardedRuntime`]: thread-owned plan pools,
/// interner and RNG (no lock needed to draw a plan), plus a home shard
/// for allocations. Not `Sync` — create one handle per thread.
#[derive(Debug)]
pub struct ShardHandle<'rt> {
    rt: &'rt ShardedRuntime,
    home: usize,
    engine: LayoutEngine,
    interner: PlanInterner,
    pools: PlanPools,
    rng: BufferedRng,
    /// Interner absolute values already folded into the facade atomics
    /// (the interner only grows, so flushing sends the delta).
    flushed_unique: u64,
    flushed_dedup: u64,
}

impl ShardHandle<'_> {
    /// The runtime this handle draws on.
    pub fn runtime(&self) -> &ShardedRuntime {
        self.rt
    }

    /// Index of the shard this handle allocates from.
    pub fn home_shard(&self) -> usize {
        self.home
    }

    /// Instrumented allocation. In `PerAllocation` mode the layout plan
    /// is drawn from this thread's pool/RNG *before* the home shard's
    /// lock is taken — the critical section is just malloc + trap
    /// seeding + metadata record. Other modes (and the stateless
    /// small-class path, whose plan derives from heap identity) delegate
    /// to the shard's own deterministic state.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_malloc`].
    pub fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        let stateless = self.rt.config.stateless_small
            && matches!(self.rt.mode, RandomizeMode::PerAllocation { .. })
            && info.field_count() <= STATELESS_MAX_FIELDS;
        if !matches!(self.rt.mode, RandomizeMode::PerAllocation { .. }) || stateless {
            return self.rt.shard(self.home).olr_malloc(info);
        }
        let plan = if self.rt.config.pool.enabled() {
            let before = self.pools.stats();
            let plan = self.pools.draw(info, &self.engine, &mut self.interner, &mut self.rng);
            let after = self.pools.stats();
            self.rt.facade.add(&RuntimeStats {
                pool_hits: after.hits - before.hits,
                pool_refills: after.refills - before.refills,
                ..RuntimeStats::default()
            });
            plan
        } else {
            self.interner.intern(self.engine.generate(info, &mut self.rng))
        };
        // Interner growth/dedup since the last flush, as deltas.
        let interned = RuntimeStats {
            unique_plans: self.interner.unique_plans() as u64,
            dedup_saved: self.interner.dedup_hits(),
            ..RuntimeStats::default()
        };
        self.flush_interner_delta(interned);
        self.rt.shard(self.home).olr_malloc_with_plan(info, plan)
    }

    /// Fold the interner counters' growth since the last flush into the
    /// facade atomics.
    fn flush_interner_delta(&mut self, current: RuntimeStats) {
        // The interner only grows, so the delta since the previous flush
        // is non-negative; track the high-water marks in-place.
        let delta = RuntimeStats {
            unique_plans: current.unique_plans - self.flushed_unique,
            dedup_saved: current.dedup_saved - self.flushed_dedup,
            ..RuntimeStats::default()
        };
        if delta.unique_plans != 0 || delta.dedup_saved != 0 {
            self.rt.facade.add(&delta);
        }
        self.flushed_unique = current.unique_plans;
        self.flushed_dedup = current.dedup_saved;
    }

    /// Raw (untracked) buffer allocation on the home shard.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn malloc_raw(&mut self, size: usize) -> Result<Addr, RuntimeError> {
        self.rt.shard(self.home).malloc_raw(size)
    }

    /// Raw free, routed by address.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn free_raw(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        self.rt
            .route(addr, RuntimeError::Heap(HeapError::InvalidFree(addr)))?
            .free_raw(addr)
    }

    /// [`ShardedRuntime::olr_free`] (address-routed; works on any
    /// shard's objects, not just the home shard's).
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_free`].
    pub fn olr_free(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        self.rt.olr_free(addr)
    }

    /// [`ShardedRuntime::olr_getptr`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_getptr`].
    pub fn olr_getptr(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<Addr, RuntimeError> {
        self.rt.olr_getptr(base, expected, field)
    }

    /// [`ShardedRuntime::read_field`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::read_field`].
    pub fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        self.rt.read_field(base, expected, field)
    }

    /// [`ShardedRuntime::write_field`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::write_field`].
    pub fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        self.rt.write_field(base, expected, field, value)
    }

    /// [`ShardedRuntime::olr_memcpy`].
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::olr_memcpy`].
    pub fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        self.rt.olr_memcpy(dst, src, site_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_layout::PlanHash;
    use polar_rng::RngExt;

    fn people() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("People")
                .field("vtable", FieldKind::VtablePtr)
                .field("age", FieldKind::I32)
                .field("height", FieldKind::I32)
                .build(),
        ))
    }

    fn record() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("Record")
                .field("id", FieldKind::I64)
                .field("score", FieldKind::I64)
                .field("flags", FieldKind::I32)
                .field("pad", FieldKind::I32)
                .build(),
        ))
    }

    fn sharded(shards: usize) -> ShardedRuntime {
        let mut config = RuntimeConfig::default();
        config.heap.capacity = 64 << 20;
        ShardedRuntime::new(RandomizeMode::per_allocation(), config, shards)
    }

    #[test]
    fn single_shard_facade_behaves_like_object_runtime() {
        let rt = sharded(1);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        h.write_field(obj, info.hash(), 1, 30).unwrap();
        h.write_field(obj, info.hash(), 2, 170).unwrap();
        assert_eq!(h.read_field(obj, info.hash(), 1).unwrap(), 30);
        assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 170);
        rt.olr_free(obj).unwrap();
        assert!(matches!(
            rt.olr_getptr(obj, info.hash(), 1).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
        assert!(matches!(rt.olr_free(obj).unwrap_err(), RuntimeError::DoubleFree(_)));
        let stats = rt.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.uaf_detected, 1);
    }

    #[test]
    fn addresses_route_back_to_their_shard() {
        let rt = sharded(4);
        let info = people();
        for t in 0..4u64 {
            let mut h = rt.handle(t);
            let obj = h.olr_malloc(&info).unwrap();
            assert_eq!(
                (obj.0 / rt.shard_span()) as usize,
                h.home_shard(),
                "allocation must land in the handle's home shard window"
            );
            // Any thread can free any address: routing is by address.
            rt.olr_free(obj).unwrap();
        }
        // Unroutable addresses fail cleanly instead of hitting shard 0.
        let wild = Addr(rt.shard_span() * 5);
        assert!(matches!(
            rt.olr_getptr(wild, info.hash(), 0).unwrap_err(),
            RuntimeError::UnknownObject(_)
        ));
        assert!(matches!(
            rt.olr_free(wild).unwrap_err(),
            RuntimeError::Heap(HeapError::InvalidFree(_))
        ));
        assert!(rt.object_meta(Addr::NULL).is_none());
    }

    #[test]
    fn cross_shard_memcpy_translates_fields() {
        let rt = sharded(4);
        let info = people();
        let mut h0 = rt.handle(0);
        let mut h1 = rt.handle(1);
        let src = h0.olr_malloc(&info).unwrap();
        h0.write_field(src, info.hash(), 1, 41).unwrap();
        h0.write_field(src, info.hash(), 2, 182).unwrap();
        let dst = h1.malloc_raw(128).unwrap();
        assert_ne!(
            (src.0 / rt.shard_span()) as usize,
            (dst.0 / rt.shard_span()) as usize,
            "test requires endpoints on different shards"
        );
        // Both directions, so both lock orders are exercised.
        rt.olr_memcpy(dst, src, &info).unwrap();
        assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 41);
        assert_eq!(rt.read_field(dst, info.hash(), 2).unwrap(), 182);
        rt.write_field(dst, info.hash(), 1, 99).unwrap();
        rt.olr_memcpy(src, dst, &info).unwrap();
        assert_eq!(rt.read_field(src, info.hash(), 1).unwrap(), 99);
        assert_eq!(rt.stats().memcpys, 2);
        // A freed cross-shard source is still UAF-detected.
        rt.olr_free(dst).unwrap();
        assert!(matches!(
            rt.olr_memcpy(src, dst, &info).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
    }

    /// The multi-threaded stress test: N threads × M random
    /// malloc/getptr/free ops, each thread checking every read against
    /// its own oracle of written values.
    #[test]
    fn parallel_churn_against_per_thread_oracles() {
        const THREADS: u64 = 4;
        const OPS: usize = 4000;
        let rt = sharded(4);
        let people = people();
        let record = record();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let rt = &rt;
                let people = &people;
                let record = &record;
                scope.spawn(move || {
                    let mut h = rt.handle(t);
                    let mut driver = SplitMix64::new(0xD81E + t);
                    // (addr, class, field values) oracles for live objects.
                    let mut live: Vec<(Addr, Arc<ClassInfo>, Vec<u64>)> = Vec::new();
                    for op in 0..OPS {
                        match driver.random_range(0..4u32) {
                            0 => {
                                let info =
                                    if driver.random_range(0..2u32) == 0 { people } else { record };
                                let obj = h.olr_malloc(info).unwrap();
                                let mut vals = Vec::new();
                                for field in 0..info.field_count() {
                                    let v = driver.next_u64() & 0xFFFF_FFFF;
                                    h.write_field(obj, info.hash(), field, v).unwrap();
                                    vals.push(v);
                                }
                                live.push((obj, Arc::clone(info), vals));
                            }
                            1 if !live.is_empty() => {
                                let i = driver.random_range(0..live.len());
                                let (obj, info, vals) = &live[i];
                                let field = driver.random_range(0..info.field_count());
                                assert_eq!(
                                    h.read_field(*obj, info.hash(), field).unwrap(),
                                    vals[field],
                                    "thread {t} op {op}: oracle mismatch"
                                );
                            }
                            2 if !live.is_empty() => {
                                let i = driver.random_range(0..live.len());
                                let (obj, info, vals) = &mut live[i];
                                let field = driver.random_range(0..info.field_count());
                                let v = driver.next_u64() & 0xFFFF_FFFF;
                                h.write_field(*obj, info.hash(), field, v).unwrap();
                                vals[field] = v;
                            }
                            3 if !live.is_empty() => {
                                let (obj, _, _) = live.swap_remove(driver.random_range(0..live.len()));
                                h.olr_free(obj).unwrap();
                            }
                            _ => {}
                        }
                    }
                    for (obj, _, _) in live {
                        h.olr_free(obj).unwrap();
                    }
                });
            }
        });
        let stats = rt.stats();
        assert!(stats.allocations > 0);
        assert_eq!(
            stats.allocations, stats.frees,
            "every allocation was drained, so the quiescent snapshot must balance"
        );
        assert_eq!(stats.total_detections(), 0);
        assert!(
            stats.pool_hits > stats.allocations / 2,
            "thread-local pools should serve most draws: {} hits / {} allocs",
            stats.pool_hits,
            stats.allocations
        );
    }

    /// Seeded cross-thread determinism: with one root seed, each thread's
    /// plan sequence is identical across runs (and independent of the
    /// other threads' scheduling, because all plan state is handle-local).
    #[test]
    fn same_root_seed_gives_identical_per_thread_plan_sequences() {
        const THREADS: u64 = 3;
        const ALLOCS: usize = 60;
        let run = || -> Vec<Vec<PlanHash>> {
            let rt = sharded(THREADS as usize);
            let people = people();
            let record = record();
            let mut sequences: Vec<Vec<PlanHash>> = vec![Vec::new(); THREADS as usize];
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let rt = &rt;
                        let people = &people;
                        let record = &record;
                        scope.spawn(move || {
                            let mut h = rt.handle(t);
                            let mut seq = Vec::with_capacity(ALLOCS);
                            for i in 0..ALLOCS {
                                let info = if i % 2 == 0 { people } else { record };
                                let obj = h.olr_malloc(info).unwrap();
                                seq.push(rt.object_meta(obj).unwrap().plan.plan_hash());
                            }
                            seq
                        })
                    })
                    .collect();
                for (t, handle) in handles.into_iter().enumerate() {
                    sequences[t] = handle.join().unwrap();
                }
            });
            sequences
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "per-thread plan sequences must replay exactly");
        // Streams are disjoint, so threads must not mirror each other.
        assert_ne!(first[0], first[1]);
        assert_ne!(first[1], first[2]);
    }

    /// Satellite regression for the staged cross-shard copy: the copy
    /// destination's booby traps must be as live as a same-shard copy's —
    /// a corrupted dummy canary on the duplicate fires `TrapTriggered` on
    /// free either way, and the new trap counters fold across shards.
    #[test]
    fn cross_shard_memcpy_preserves_trap_detection_parity() {
        fn corrupt_and_free(rt: &ShardedRuntime, dst: Addr) -> bool {
            let Some(meta) = rt.object_meta(dst) else {
                panic!("copy destination must be tracked after olr_memcpy");
            };
            let Some(dummy) = meta.plan.dummies().iter().find(|d| d.canary.is_some()) else {
                // This draw carried no canaried dummy; clean free, retry.
                rt.olr_free(dst).unwrap();
                return false;
            };
            let slot = dst.offset(u64::from(dummy.offset));
            // Flip the canary's low byte so the scan cannot miss it.
            let cur = rt.heap_read_uint(slot, 1).unwrap();
            rt.heap_write_uint(slot, !cur & 0xFF, 1).unwrap();
            assert!(
                matches!(rt.olr_free(dst).unwrap_err(), RuntimeError::TrapTriggered(_)),
                "corrupted duplicate dummy must trip the free-path trap scan"
            );
            true
        }

        let rt = sharded(4);
        let info = people();
        let mut h0 = rt.handle(0);
        let mut h1 = rt.handle(1);
        let src = h0.olr_malloc(&info).unwrap();
        h0.write_field(src, info.hash(), 1, 5).unwrap();
        let src_shard = (src.0 / rt.shard_span()) as usize;

        for (cross, handle) in [(false, &mut h0), (true, &mut h1)] {
            let mut proved = false;
            for _ in 0..64 {
                let dst = handle.malloc_raw(info.size() as usize + 64).unwrap();
                assert_eq!(
                    (dst.0 / rt.shard_span()) as usize != src_shard,
                    cross,
                    "destination must be {} the source shard",
                    if cross { "outside" } else { "inside" }
                );
                rt.olr_memcpy(dst, src, &info).unwrap();
                assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 5);
                if corrupt_and_free(&rt, dst) {
                    proved = true;
                    break;
                }
            }
            assert!(
                proved,
                "{}-shard copy: no destination drew a canaried dummy in 64 draws",
                if cross { "cross" } else { "same" }
            );
        }

        let stats = rt.stats();
        assert!(stats.traps_triggered >= 2, "both paths must have fired: {stats:?}");
        assert!(stats.dummy_touches >= stats.traps_triggered);
        assert!(stats.trap_scans >= 2, "free-path sweeps must be counted: {stats:?}");
    }

    #[test]
    fn in_place_memcpy_works_through_the_facade() {
        // The overlap fix holds on the sharded path too (same-shard
        // delegation uses the staged single-runtime copy).
        let rt = sharded(2);
        let info = people();
        let mut h = rt.handle(0);
        let obj = h.olr_malloc(&info).unwrap();
        h.write_field(obj, info.hash(), 1, 7).unwrap();
        h.write_field(obj, info.hash(), 2, 9).unwrap();
        rt.olr_memcpy(obj, obj, &info).unwrap();
        assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), 7);
        assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 9);
    }

    #[test]
    fn metadata_bytes_sum_over_shards() {
        let rt = sharded(4);
        let info = people();
        let mut handles: Vec<_> = (0..4).map(|t| rt.handle(t)).collect();
        for h in &mut handles {
            for _ in 0..10 {
                h.olr_malloc(&info).unwrap();
            }
        }
        assert!(rt.estimated_metadata_bytes() > 0);
        assert_eq!(rt.stats().allocations, 40);
    }
}
