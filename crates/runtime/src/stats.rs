//! Runtime statistics — the Table III counters.

use std::fmt;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters the runtime maintains, matching the columns of the paper's
/// Table III ("number of allocation/free, member variable access, and
/// cache hit attempts against the randomized objects") plus the detection
/// counters used by the security evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Randomized object allocations (`olr_malloc`).
    pub allocations: u64,
    /// Randomized object frees (`olr_free`).
    pub frees: u64,
    /// Object-aware memory copies (`olr_memcpy`).
    pub memcpys: u64,
    /// Member-variable accesses (`olr_getptr`).
    pub member_accesses: u64,
    /// Member accesses satisfied by the offset-lookup cache.
    pub cache_hits: u64,
    /// Use-after-free accesses detected.
    pub uaf_detected: u64,
    /// Class-hash mismatches (type confusions) detected.
    pub mismatch_detected: u64,
    /// Booby-trap canaries found corrupted.
    pub traps_triggered: u64,
    /// Booby-trap sweeps performed (explicit [`check_traps`] calls plus
    /// the free-path scan when `check_traps_on_free` is set).
    ///
    /// [`check_traps`]: crate::ObjectRuntime::check_traps
    pub trap_scans: u64,
    /// Dummy slots found with a corrupted canary, counted per slot across
    /// all sweeps. `traps_triggered` counts the same events; this counter
    /// exists so attack evaluations can tell "no sweep ran" apart from
    /// "sweeps ran and found nothing" together with `trap_scans`.
    pub dummy_touches: u64,
    /// Double frees of tracked objects detected (`olr_free` on an object
    /// already in the freed state).
    pub double_free_detected: u64,
    /// Distinct layout plans interned (metadata records after dedup).
    pub unique_plans: u64,
    /// Metadata records saved by plan deduplication.
    pub dedup_saved: u64,
    /// Member accesses whose metadata came from a generation-current
    /// shadow-index slot (O(1) lookup, no hashing).
    pub shadow_hits: u64,
    /// Member accesses that found no current shadow-index entry: the
    /// address was never tracked, or its slot was re-allocated since the
    /// metadata was recorded (generation mismatch — a self-invalidated
    /// stale entry).
    pub shadow_misses: u64,
    /// Member accesses resolved by a per-call-site inline cache.
    pub site_ic_hits: u64,
    /// Inline-cache probes that fell back to the full metadata path.
    pub site_ic_misses: u64,
    /// Allocations served by the stateless small-class path: the layout
    /// (and any virtual traps) derived from (generation, slot, epoch
    /// key) instead of drawn from a pool or the engine.
    pub stateless_allocs: u64,
    /// Probe reads (`probe_read_uint`) that overlapped a live object's
    /// booby-trap slot and were refused. Also counted into
    /// `traps_triggered`/`dummy_touches`; this counter separates
    /// probe-time trips from free-time sweep findings.
    pub probe_traps: u64,
    /// Allocations whose plan came out of a per-class pool without an
    /// inline generation (the §V-B fast path's steady-state case).
    pub pool_hits: u64,
    /// Pool refill events: warm-up batch fills plus steady-state churn
    /// regenerations.
    pub pool_refills: u64,
    /// Member accesses served entirely by the optimistic (seqlock) read
    /// path: no shard mutex was taken.
    pub lockfree_reads: u64,
    /// Optimistic read attempts that fell back to the shard mutex
    /// (contended seqlock window, unpublished slot, or a condition the
    /// fast path cannot classify, e.g. a detection).
    pub lockfree_fallbacks: u64,
    /// Allocations served from a per-handle magazine of pre-reserved
    /// capsules: no shard mutex was taken.
    pub magazine_hits: u64,
    /// Magazine refill events: one shard-lock acquisition reserving a
    /// batch of capsules.
    pub magazine_refills: u64,
    /// Capsules returned to the shard unconsumed (handle teardown or
    /// magazine retirement) — these were reserved but never allocated,
    /// so they count in neither `allocations` nor `frees`.
    pub magazine_returns: u64,
    /// Frees completed entirely on the lock-free path: publication
    /// claim + remote-free stack push, no shard mutex.
    pub fast_frees: u64,
    /// Remote-freed slots drained and released by their owning shard
    /// (each matches one earlier `fast_frees` event).
    pub remote_drained: u64,
}

impl RuntimeStats {
    /// Cache hit ratio over member accesses, in `[0, 1]`; `None` when no
    /// member was ever accessed.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        if self.member_accesses == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / self.member_accesses as f64)
        }
    }

    /// Total security detections of any kind.
    pub fn total_detections(&self) -> u64 {
        self.uaf_detected + self.mismatch_detected + self.traps_triggered + self.double_free_detected
    }
}

impl AddAssign for RuntimeStats {
    fn add_assign(&mut self, rhs: RuntimeStats) {
        self.allocations += rhs.allocations;
        self.frees += rhs.frees;
        self.memcpys += rhs.memcpys;
        self.member_accesses += rhs.member_accesses;
        self.cache_hits += rhs.cache_hits;
        self.uaf_detected += rhs.uaf_detected;
        self.mismatch_detected += rhs.mismatch_detected;
        self.traps_triggered += rhs.traps_triggered;
        self.trap_scans += rhs.trap_scans;
        self.dummy_touches += rhs.dummy_touches;
        self.double_free_detected += rhs.double_free_detected;
        self.unique_plans += rhs.unique_plans;
        self.dedup_saved += rhs.dedup_saved;
        self.shadow_hits += rhs.shadow_hits;
        self.shadow_misses += rhs.shadow_misses;
        self.site_ic_hits += rhs.site_ic_hits;
        self.site_ic_misses += rhs.site_ic_misses;
        self.stateless_allocs += rhs.stateless_allocs;
        self.probe_traps += rhs.probe_traps;
        self.pool_hits += rhs.pool_hits;
        self.pool_refills += rhs.pool_refills;
        self.lockfree_reads += rhs.lockfree_reads;
        self.lockfree_fallbacks += rhs.lockfree_fallbacks;
        self.magazine_hits += rhs.magazine_hits;
        self.magazine_refills += rhs.magazine_refills;
        self.magazine_returns += rhs.magazine_returns;
        self.fast_frees += rhs.fast_frees;
        self.remote_drained += rhs.remote_drained;
    }
}

macro_rules! atomic_stats {
    ($($(#[$doc:meta])* $field:ident),* $(,)?) => {
        /// [`RuntimeStats`] with every counter behind a relaxed
        /// [`AtomicU64`], shared by all threads of a
        /// [`ShardedRuntime`](crate::ShardedRuntime).
        ///
        /// Counters are individually exact and monotone. A
        /// [`snapshot`](AtomicRuntimeStats::snapshot) taken while other
        /// threads are mid-operation is a *consistent read of each
        /// counter*, not an atomic cut across all of them (relaxed loads
        /// impose no cross-counter ordering); at quiescence — after the
        /// contributing threads' operations have completed — the snapshot
        /// is exact. That trade keeps the hot path at plain `fetch_add`s
        /// with no lock and no fence.
        #[derive(Debug, Default)]
        pub struct AtomicRuntimeStats {
            $($(#[$doc])* $field: AtomicU64,)*
        }

        impl AtomicRuntimeStats {
            /// All counters at zero.
            pub fn new() -> Self {
                Self::default()
            }

            /// Fold a per-thread delta into the shared counters
            /// (relaxed `fetch_add` per non-zero field).
            pub fn add(&self, delta: &RuntimeStats) {
                $(
                    if delta.$field != 0 {
                        self.$field.fetch_add(delta.$field, Ordering::Relaxed);
                    }
                )*
            }

            /// Read every counter (relaxed; see the type docs for the
            /// coherence contract).
            pub fn snapshot(&self) -> RuntimeStats {
                RuntimeStats {
                    $($field: self.$field.load(Ordering::Relaxed),)*
                }
            }
        }
    };
}

atomic_stats!(
    allocations,
    frees,
    memcpys,
    member_accesses,
    cache_hits,
    uaf_detected,
    mismatch_detected,
    traps_triggered,
    trap_scans,
    dummy_touches,
    double_free_detected,
    unique_plans,
    dedup_saved,
    shadow_hits,
    shadow_misses,
    site_ic_hits,
    site_ic_misses,
    stateless_allocs,
    probe_traps,
    pool_hits,
    pool_refills,
    lockfree_reads,
    lockfree_fallbacks,
    magazine_hits,
    magazine_refills,
    magazine_returns,
    fast_frees,
    remote_drained,
);

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alloc={} free={} memcpy={} access={} cache_hit={} ({}), detections={}",
            self.allocations,
            self.frees,
            self.memcpys,
            self.member_accesses,
            self.cache_hits,
            match self.cache_hit_ratio() {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_owned(),
            },
            self.total_detections(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero_accesses() {
        assert_eq!(RuntimeStats::default().cache_hit_ratio(), None);
        let s = RuntimeStats { member_accesses: 4, cache_hits: 3, ..Default::default() };
        assert!((s.cache_hit_ratio().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = RuntimeStats { allocations: 1, cache_hits: 2, ..Default::default() };
        a += RuntimeStats { allocations: 3, traps_triggered: 1, ..Default::default() };
        assert_eq!(a.allocations, 4);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.total_detections(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let s = RuntimeStats::default().to_string();
        assert!(s.contains("alloc=0"));
        assert!(s.contains("n/a"));
    }

    #[test]
    fn atomic_stats_accumulate_and_snapshot() {
        let shared = AtomicRuntimeStats::new();
        shared.add(&RuntimeStats { allocations: 3, pool_hits: 2, ..Default::default() });
        shared.add(&RuntimeStats { allocations: 1, frees: 4, ..Default::default() });
        let snap = shared.snapshot();
        assert_eq!(snap.allocations, 4);
        assert_eq!(snap.frees, 4);
        assert_eq!(snap.pool_hits, 2);
        assert_eq!(snap.memcpys, 0);
    }

    #[test]
    fn atomic_stats_sum_across_threads() {
        let shared = AtomicRuntimeStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        shared.add(&RuntimeStats {
                            allocations: 1,
                            member_accesses: 2,
                            ..Default::default()
                        });
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.allocations, 4000);
        assert_eq!(snap.member_accesses, 8000);
    }
}
