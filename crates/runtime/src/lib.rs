//! The POLaR object-tracking runtime.
//!
//! This crate is the library the paper's instrumented binaries link
//! against (Section IV-A2/IV-A3 and Figure 4). Instrumentation rewrites
//! four kinds of sites to call into it:
//!
//! | site                   | original            | instrumented              |
//! |------------------------|---------------------|---------------------------|
//! | allocation             | `new` / `malloc`    | [`ObjectRuntime::olr_malloc`] |
//! | member access          | `getelementptr`     | [`ObjectRuntime::olr_getptr`] |
//! | object copy            | `memcpy` / `memmove`| [`ObjectRuntime::olr_memcpy`] |
//! | deallocation           | `delete` / `free`   | [`ObjectRuntime::olr_free`]   |
//!
//! On allocation the runtime draws a **fresh randomized layout plan** for
//! the object, stores `(base address → class hash, plan)` metadata, and
//! seeds booby-trap canaries. On member access it resolves the field's
//! true offset through the metadata — with a hashtable cache in front, the
//! optimization Section V-B credits for the high "cache hit" counts of
//! Table III. Identical plans are interned so duplicate metadata is
//! collapsed (the paper's second optimization).
//!
//! The runtime also implements the defensive checks the paper describes:
//! "POLaR detects obvious use-after-free attempts while regulating object
//! access using the metadata information" (member access to a freed
//! object), class-hash mismatches (type confusion), and booby-trap canary
//! verification (overflow detection).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
//! use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};
//!
//! let people = Arc::new(ClassInfo::from_decl(
//!     ClassDecl::builder("People")
//!         .field("vtable", FieldKind::VtablePtr)
//!         .field("age", FieldKind::I32)
//!         .field("height", FieldKind::I32)
//!         .build(),
//! ));
//! let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), RuntimeConfig::default());
//! let a = rt.olr_malloc(&people)?;
//! let b = rt.olr_malloc(&people)?;
//! rt.write_field(a, people.hash(), 2, 17)?; // A->height = 17
//! assert_eq!(rt.read_field(a, people.hash(), 2)?, 17);
//! // Same type, independently randomized layouts (with high probability
//! // the two `height` offsets differ; both are valid plans either way).
//! let off_a = rt.olr_getptr(a, people.hash(), 2)?.0 - a.0;
//! let off_b = rt.olr_getptr(b, people.hash(), 2)?.0 - b.0;
//! let _ = (off_a, off_b);
//! rt.olr_free(a)?;
//! assert!(rt.olr_free(b).is_ok());
//! # Ok::<(), polar_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod error;
mod runtime;
mod sharded;
mod stats;

pub use api::PolarRuntime;
pub use error::{RuntimeError, TrapReport};
// Re-exported so runtime configurators can name the pool policy without
// a direct polar-layout dependency.
pub use polar_layout::{DrawMode, PoolPolicy, StatelessPolicy};
// Re-exported because every runtime entry point takes or returns heap
// addresses; callers shouldn't need a polar-simheap dependency for that.
pub use polar_simheap::Addr;
pub use runtime::{
    MagazinePolicy, ObjectMeta, ObjectRuntime, ObjectState, RandomizeMode, RuntimeConfig,
    SiteCache,
};
pub use sharded::{HeapFootprint, ShardHandle, ShardedRuntime};
pub use stats::{AtomicRuntimeStats, RuntimeStats};
