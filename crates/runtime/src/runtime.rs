//! The object runtime: shadow-index metadata, offset cache, and the four
//! instrumented entry points.

use std::collections::HashMap;
use std::sync::Arc;

use polar_classinfo::{ClassHash, ClassInfo};
use polar_layout::{
    code_rank, code_space, stateless_bound, stateless_plan_from_code, EpochKey, FieldAccess,
    LayoutEngine, LayoutPlan,
    PermBlock, PermCode, PlanHash, PlanInterner, PlanPools, PlanRegistry, PoolPolicy,
    RandomizationPolicy, RoundKeys, StatelessPolicy, StaticOlrTable,
};
use polar_rng::{BufferedRng, Rng, SeedableRng, SplitMix64};
use polar_simheap::{Addr, BlockState, HeapConfig, SimHeap, Slab};

use crate::error::{RuntimeError, TrapReport};
use crate::stats::RuntimeStats;

/// Which layout discipline the runtime applies at allocation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RandomizeMode {
    /// No randomization: every object gets its natural compiler layout.
    /// Models the unhardened baseline binary.
    Native,
    /// Compile-time OLR (`randstruct`/DSLR/RFOR): one randomized layout
    /// per class, fixed by the binary seed, identical across instances
    /// and executions.
    StaticOlr {
        /// Layout policy for the per-class plans.
        policy: RandomizationPolicy,
        /// The "binary" identity; reverse engineering the binary reveals
        /// it, which is exactly the paper's hidden-binary problem.
        binary_seed: u64,
    },
    /// POLaR: an independent randomized layout for every allocation.
    PerAllocation {
        /// Layout policy for the per-allocation plans.
        policy: RandomizationPolicy,
    },
}

impl RandomizeMode {
    /// POLaR with the paper's default policy.
    pub fn per_allocation() -> Self {
        RandomizeMode::PerAllocation { policy: RandomizationPolicy::default() }
    }

    /// Compile-time OLR with permute-only policy (the DSLR analogue).
    pub fn static_olr(binary_seed: u64) -> Self {
        RandomizeMode::StaticOlr { policy: RandomizationPolicy::permute_only(), binary_seed }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RandomizeMode::Native => "native",
            RandomizeMode::StaticOlr { .. } => "static-olr",
            RandomizeMode::PerAllocation { .. } => "polar",
        }
    }
}

/// Runtime configuration knobs (detections and optimizations; each maps
/// to a feature discussed in Sections IV–VI of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Simulated-heap configuration.
    pub heap: HeapConfig,
    /// Seed for the runtime's plan RNG (the process's secret entropy).
    pub seed: u64,
    /// Detect accesses whose expected class hash mismatches the metadata.
    pub detect_class_mismatch: bool,
    /// Detect member accesses to freed objects.
    pub detect_use_after_free: bool,
    /// Verify booby-trap canaries when an object is freed.
    pub check_traps_on_free: bool,
    /// Enable the hashtable offset-lookup cache (Section V-B).
    pub offset_cache: bool,
    /// Re-randomize object copies made through `olr_memcpy` (Section
    /// IV-A2; "could be disabled … but the current implementation
    /// considers this feature enabled by default").
    pub memcpy_rerandomize: bool,
    /// Enforce ASan-style redzones: every raw load/store/copy must stay
    /// inside its heap block. Models the redzone-based defenses of the
    /// paper's Section VII-C — which stop *inter*-object overflows but,
    /// unlike POLaR, cannot see *in-object* ones.
    pub redzone_checks: bool,
    /// Per-class plan-pool policy for the allocation fast path (§V-B):
    /// pregenerated, interned plans drawn with one buffered-RNG index
    /// per allocation. [`PoolPolicy::disabled`] restores one fresh
    /// generation per allocation. Only affects `PerAllocation` mode.
    pub pool: PoolPolicy,
    /// The stateless small-class policy: derive permutations for small
    /// classes from (block generation, slot id, epoch key) via a keyed
    /// Feistel network, SPAM-style, instead of storing engine-generated
    /// plans. **On by default** with virtual booby traps
    /// ([`StatelessPolicy::on`]): the derived plans now interleave
    /// identity-keyed trap slots, so small classes keep trap coverage
    /// while paying ~zero per-object metadata. Set
    /// [`StatelessPolicy::off`] to route every class through the pooled
    /// stateful path, or [`StatelessPolicy::permute_only`] for the
    /// original trap-free ablation. Only affects `PerAllocation` mode.
    pub stateless: StatelessPolicy,
    /// Check raw probe reads (`probe_read_uint`) against the target
    /// object's booby-trap slots: a read overlapping a canary-carrying
    /// dummy — stored (stateful plans) or derived (stateless virtual
    /// traps) — trips [`RuntimeError::TrapTriggered`] instead of leaking
    /// bytes. Models trap slots being mapped-unreadable in a real
    /// deployment (Section IV-A3's traps, extended to reads).
    pub detect_probe_traps: bool,
    /// Magazine policy for the sharded facade's per-handle allocation
    /// front-end: each [`ShardHandle`](crate::ShardHandle) keeps a
    /// per-size-class magazine of pre-reserved allocation capsules,
    /// refilled `batch` at a time under one shard-lock acquisition, so
    /// the common-case `olr_malloc` is a lock-free pop. Fast frees from
    /// the same facade push onto a per-shard remote-free stack drained
    /// by the owning shard at its next lock acquisition.
    /// [`MagazinePolicy::disabled`] restores one lock round-trip per
    /// allocation and per free. Plain `ObjectRuntime`s ignore this.
    pub magazine: MagazinePolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            heap: HeapConfig::default(),
            seed: 0x504f_4c61_52_u64, // "POLaR"
            detect_class_mismatch: true,
            detect_use_after_free: true,
            check_traps_on_free: true,
            offset_cache: true,
            memcpy_rerandomize: true,
            redzone_checks: false,
            pool: PoolPolicy::default(),
            stateless: StatelessPolicy::on(),
            detect_probe_traps: true,
            magazine: MagazinePolicy::default(),
        }
    }
}

/// Policy for the sharded facade's magazine-cached allocation front-end
/// (see [`RuntimeConfig::magazine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagazinePolicy {
    /// Capsules reserved per refill (one shard-lock acquisition amortized
    /// over this many allocations). `0` disables magazines *and* the
    /// lock-free free path: every facade malloc/free takes the shard
    /// mutex, exactly as before the front-end existed.
    pub batch: usize,
}

impl MagazinePolicy {
    /// Magazines off: one shard-lock round trip per allocation and free.
    pub fn disabled() -> Self {
        MagazinePolicy { batch: 0 }
    }

    /// Whether the front-end is active.
    pub fn enabled(&self) -> bool {
        self.batch > 0
    }
}

impl Default for MagazinePolicy {
    fn default() -> Self {
        MagazinePolicy { batch: 32 }
    }
}

/// Lifecycle state of a tracked object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectState {
    /// Allocated and usable.
    Live,
    /// Freed; metadata retained to recognize dangling accesses.
    Freed,
}

/// Per-object metadata: the paper's Figure 4 record (`base addr → class
/// hash, layout ptr`).
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// The object's class.
    pub class: Arc<ClassInfo>,
    /// The (possibly shared, interned) layout plan.
    pub plan: Arc<LayoutPlan>,
    /// Lifecycle state.
    pub state: ObjectState,
    /// Bumped every time the base address is reassigned to a new object.
    pub generation: u64,
}

/// A pre-reserved allocation: the product of [`ObjectRuntime`]'s
/// reserve paths, held in a [`ShardHandle`](crate::ShardHandle)
/// magazine until a thread pops it as an `olr_malloc` result. The
/// object is fully armed at reserve time — block allocated, canaries
/// seeded, shadow record and publication mirror written, state `Live` —
/// so popping is pure bookkeeping and the capsule's address is
/// indistinguishable from a mutex-path allocation to every reader.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Capsule {
    /// Base address of the reserved block.
    pub base: Addr,
    /// Heap slot id of the block.
    pub slot: u32,
    /// Heap block generation at reserve time (for debugging/assertions;
    /// the shadow record is the source of truth).
    #[allow(dead_code)]
    pub generation: u64,
}

/// One entry of the shadow index: the dense, slot-addressed successor of
/// the old metadata hashtable.
///
/// `block_gen` snapshots the heap block's allocation generation at the
/// moment the record was written; every probe compares it against the
/// block's *current* generation ([`SimHeap::slot_gen`]). A record left
/// behind when the block was recycled through a path the runtime does not
/// instrument (`free_raw` + `malloc_raw`, the interpreter's `FreeBuf`)
/// therefore self-invalidates — no eager `remove` call on any mutation
/// path, and no way to serve a stale layout plan for a reused address.
#[derive(Debug, Clone)]
struct ShadowSlot {
    /// The tracked object's metadata; `None` until the slot's block first
    /// holds a randomized object. Retained after `olr_free` so dangling
    /// accesses are recognized (use-after-free detection).
    meta: Option<ObjectMeta>,
    /// Copy of `meta.class.hash()`: class validation without chasing the
    /// `Arc<ClassInfo>` pointer.
    class_hash: ClassHash,
    /// Copy of `meta.plan.plan_hash()`: inline-cache validation without
    /// chasing the `Arc<LayoutPlan>` pointer.
    plan_hash: PlanHash,
    /// Heap allocation generation this record belongs to.
    block_gen: u64,
    /// Whether the Section V-B offset cache holds this object. The cache
    /// is collapsed into the shadow slot: "warmed" means a cache entry
    /// exists, and invalidation is a flag clear (free) or a generation
    /// mismatch (reuse).
    warmed: bool,
}

impl Default for ShadowSlot {
    fn default() -> Self {
        ShadowSlot {
            meta: None,
            class_hash: ClassHash(0),
            plan_hash: PlanHash(0),
            block_gen: 0,
            warmed: false,
        }
    }
}

/// Publication plumbing for a runtime whose heap mirrors metadata to
/// lock-free readers: the process-wide plan registry (plans resolvable
/// by small integer id without a lock) plus a per-runtime cache of ids
/// already interned, so steady-state allocation does not touch the
/// registry mutex at all.
#[derive(Debug)]
struct MetaPublisher {
    registry: Arc<PlanRegistry>,
    ids: HashMap<PlanHash, u32>,
}

/// One cached derived plan: the packed permutation code it was built
/// from, the interned plan, and its published registry id (if any).
#[derive(Debug, Clone)]
struct StatelessEntry {
    code: PermCode,
    plan: Arc<LayoutPlan>,
    plan_id: Option<u32>,
}

/// Number of direct-mapped entries in one class's derived-plan cache.
/// Slot-reuse churn cycles through few generations, so a small table
/// captures the working set; conflict misses just re-derive.
const STATELESS_CACHE_WAYS: usize = 64;

/// Per-class cache of derived stateless plans, keyed by permutation
/// code. A hit turns an allocation's plan work into one array index and
/// an `Arc` clone — no Feistel walk, no plan construction, no interner
/// probe.
///
/// Classes whose whole code space fits ([`code_space`]`(n) ≤ 64`, i.e.
/// ≤4 fields) get a *perfect* cache indexed by the permutation's Lehmer
/// rank: exactly `n!` misses per class lifetime and then never again.
/// Larger classes fall back to a direct-mapped Fibonacci spread, where
/// conflicting codes evict each other (bounded memory beats a perfect
/// hit rate there — an 8-field class has 40 320 codes).
#[derive(Debug)]
struct StatelessClassCache {
    class: ClassHash,
    /// Identity-independent block size bound (traps included per
    /// config), computed once per class.
    bound: u32,
    fields: u8,
    /// Whole code space fits: index by Lehmer rank, collision-free.
    perfect: bool,
    entries: Vec<Option<StatelessEntry>>,
}

impl StatelessClassCache {
    fn new(class: ClassHash, bound: u32, fields: u8) -> Self {
        let ways = code_space(usize::from(fields)).min(STATELESS_CACHE_WAYS);
        StatelessClassCache {
            class,
            bound,
            fields,
            perfect: code_space(usize::from(fields)) <= STATELESS_CACHE_WAYS,
            entries: vec![None; ways],
        }
    }

    /// Cache slot for a code: the Lehmer rank when the class's code
    /// space fits entirely (bijective — no conflicts), else a
    /// direct-mapped Fibonacci spread of the packed permutation bits.
    #[inline]
    fn way(&self, code: PermCode) -> usize {
        if self.perfect {
            code_rank(code, usize::from(self.fields))
        } else {
            ((u64::from(code).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize)
                % STATELESS_CACHE_WAYS
        }
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<Option<StatelessEntry>>()
    }
}

/// Everything the stateless allocation fast path owns: the interned
/// round-key schedule for the runtime's epoch key, the buffered
/// permutation-code block, and the per-class derived-plan caches.
#[derive(Debug)]
struct StatelessState {
    keys: RoundKeys,
    block: PermBlock,
    caches: Vec<StatelessClassCache>,
    /// Index of the cache the last allocation used (monomorphic hint:
    /// the common case is a run of one class, resolved by one compare).
    last: usize,
    /// Allocations served from the derived-plan cache: each is a plan
    /// record the runtime did not have to build — the stateless path's
    /// contribution to the dedup counter.
    hits: u64,
}

impl StatelessState {
    fn new(key: EpochKey) -> Self {
        StatelessState {
            keys: RoundKeys::new(key),
            block: PermBlock::empty(),
            caches: Vec::new(),
            last: 0,
            hits: 0,
        }
    }

    /// Bytes of bookkeeping the stateless path itself costs (cached
    /// plans are interner-owned and counted there).
    fn metadata_bytes(&self) -> usize {
        std::mem::size_of::<RoundKeys>()
            + std::mem::size_of::<PermBlock>()
            + self.caches.iter().map(StatelessClassCache::bytes).sum::<usize>()
    }
}

/// Source field bytes staged for an object copy: the packed contents of
/// every field, plus each field's start offset in the packed buffer.
/// Produced by [`ObjectRuntime::stage_fields`], consumed by
/// [`ObjectRuntime::install_copy`].
#[derive(Debug)]
pub(crate) struct StagedFields {
    bytes: Vec<u8>,
    starts: Vec<usize>,
}

/// Outcome of a shadow-index probe.
enum Probe {
    /// `shadow[i]` holds a generation-current record for the address.
    Hit(usize),
    /// No current record: the address was never tracked, or its block was
    /// re-allocated since the record was written (stale, self-invalidated).
    Miss,
}

/// Per-call-site inline cache for [`ObjectRuntime::olr_getptr_ic`].
///
/// The interpreter allocates one per static rewritten `getelementptr`
/// site (an AOT build would reserve a few words next to the call). The
/// cache pins the `(class, plan)` pair the site last resolved and the
/// offset that resolution produced; as long as the probed object still
/// carries exactly that pair, the access is two integer compares and an
/// add — it skips even the shadow slot's metadata record.
///
/// Monomorphic sites (the common case: one class, and plan interning
/// collapses layouts for small classes) hit almost always; polymorphic
/// sites just fall back to the shadow index.
#[derive(Debug, Clone, Copy)]
pub struct SiteCache {
    filled: bool,
    class: ClassHash,
    plan: PlanHash,
    offset: u32,
    width: u8,
    /// Last base address this site resolved (slot hint key).
    last_base: u64,
    /// Published slot id `last_base` resolved to. Purely a hint: the
    /// lock-free path re-validates the snapshot's `base` (and the rest
    /// of the seqlock-guarded metadata), so a stale hint costs one
    /// wasted slot probe and falls back to the full unit-index walk.
    last_slot: u32,
}

impl SiteCache {
    /// An empty (never-filled) site cache.
    pub const fn empty() -> Self {
        SiteCache {
            filled: false,
            class: ClassHash(0),
            plan: PlanHash(0),
            offset: 0,
            width: 8,
            last_base: 0,
            last_slot: 0,
        }
    }

    /// The published slot this site last resolved `base` to, if the
    /// hint is for exactly this base.
    #[inline]
    pub(crate) fn slot_hint(&self, base: u64) -> Option<u32> {
        (self.last_base == base).then_some(self.last_slot)
    }

    /// Remember which published slot `base` resolved to.
    #[inline]
    pub(crate) fn note_slot(&mut self, base: u64, slot: u32) {
        self.last_base = base;
        self.last_slot = slot;
    }

    /// The cached `(offset, width)` if the cache pins exactly this
    /// `(class, plan)` pair — the same predicate the locked path's
    /// inline-cache branch uses, exposed for the lock-free read path.
    #[inline]
    pub(crate) fn lookup(&self, expected: ClassHash, plan: PlanHash) -> Option<(u32, u8)> {
        (self.filled && self.class == expected && self.plan == plan)
            .then_some((self.offset, self.width))
    }

    /// Pin a resolution, as the locked path does after a full lookup.
    /// Keeps the slot hint: pin happens on plan churn, not base churn.
    #[inline]
    pub(crate) fn pin(&mut self, class: ClassHash, plan: PlanHash, offset: u32, width: u8) {
        self.filled = true;
        self.class = class;
        self.plan = plan;
        self.offset = offset;
        self.width = width;
    }
}

impl Default for SiteCache {
    fn default() -> Self {
        Self::empty()
    }
}

/// The POLaR runtime: simulated heap + shadow-index metadata + offset
/// cache.
#[derive(Debug)]
pub struct ObjectRuntime {
    heap: SimHeap,
    mode: RandomizeMode,
    engine: LayoutEngine,
    static_table: Option<StaticOlrTable>,
    interner: PlanInterner,
    /// Dense shadow of the heap's block-slot table: `shadow[slot]` holds
    /// the metadata for the block occupying heap slot `slot` (ids from
    /// [`SimHeap::slot_gen`]). Lookup is an array index — no hashing on
    /// the hot path. Chunked [`Slab`] storage: growth appends a chunk
    /// instead of copying every record, so steady-state malloc/free does
    /// no allocation of its own.
    shadow: Slab<ShadowSlot>,
    /// Slots that ever received a record (live + retained-freed); the
    /// successor of the old hashtable's `len()`.
    meta_count: usize,
    /// Per-class plan pools (the §V-B allocation fast path).
    pools: PlanPools,
    /// Key for the stateless small-class permutation derivation.
    epoch_key: EpochKey,
    /// Round-key schedule, code buffer and per-class plan caches for the
    /// stateless allocation fast path.
    stateless: StatelessState,
    rng: BufferedRng,
    stats: RuntimeStats,
    config: RuntimeConfig,
    /// `Some` when this runtime mirrors metadata for lock-free readers
    /// (a shard of a published [`ShardedRuntime`](crate::ShardedRuntime));
    /// `None` for plain single-threaded runtimes, whose behavior is
    /// byte-for-byte unchanged.
    publish: Option<MetaPublisher>,
}

/// Salt separating the heap-placement RNG stream from the plan RNG and
/// the stateless epoch key (`"PLAC"`).
pub(crate) const PLACEMENT_SALT: u64 = 0x504C_4143;

impl ObjectRuntime {
    /// Create a runtime in the given mode.
    ///
    /// When the heap's [`PlacementPolicy`](polar_simheap::PlacementPolicy)
    /// is enabled but carries no explicit seed, one is derived from the
    /// runtime seed through a salted stream — placement replay stays a
    /// pure function of `config.seed`, and knowing placed addresses
    /// reveals nothing about layout plans or the stateless key.
    pub fn new(mode: RandomizeMode, mut config: RuntimeConfig) -> Self {
        let (engine, static_table) = match mode {
            RandomizeMode::Native => (LayoutEngine::new(RandomizationPolicy::off()), None),
            RandomizeMode::StaticOlr { policy, binary_seed } => (
                LayoutEngine::new(policy),
                Some(StaticOlrTable::new(policy, binary_seed)),
            ),
            RandomizeMode::PerAllocation { policy } => (LayoutEngine::new(policy), None),
        };
        // A distinct stream from the plan RNG: knowing layouts drawn
        // from `rng` must not reveal the stateless permutation key.
        let epoch_key =
            EpochKey(SplitMix64::new(config.seed ^ 0x5350_414d /* "SPAM" */).next_u64());
        if config.heap.placement.enabled() && config.heap.placement.seed == 0 {
            config.heap.placement.seed =
                SplitMix64::new(config.seed ^ PLACEMENT_SALT).next_u64();
        }
        ObjectRuntime {
            heap: SimHeap::new(config.heap),
            mode,
            engine,
            static_table,
            interner: PlanInterner::new(),
            shadow: Slab::new(),
            meta_count: 0,
            pools: PlanPools::new(config.pool),
            epoch_key,
            stateless: StatelessState::new(epoch_key),
            rng: BufferedRng::seed_from_u64(config.seed),
            stats: RuntimeStats::default(),
            config,
            publish: None,
        }
    }

    /// A runtime over a *published* heap: block and object metadata are
    /// mirrored into seqlocked publication slots, and plans are interned
    /// into `registry` so lock-free readers can resolve them by id.
    pub(crate) fn new_published(
        mode: RandomizeMode,
        config: RuntimeConfig,
        registry: Arc<PlanRegistry>,
    ) -> Self {
        let mut rt = Self::new(mode, config);
        rt.heap = SimHeap::new_published(config.heap);
        rt.publish = Some(MetaPublisher { registry, ids: HashMap::new() });
        rt
    }

    /// The runtime's mode.
    pub fn mode(&self) -> &RandomizeMode {
        &self.mode
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Borrow the simulated heap (for raw buffer traffic).
    pub fn heap(&self) -> &SimHeap {
        &self.heap
    }

    /// Mutably borrow the simulated heap.
    pub fn heap_mut(&mut self) -> &mut SimHeap {
        &mut self.heap
    }

    /// Snapshot of the statistics counters (dedup and pool figures
    /// included).
    pub fn stats(&self) -> RuntimeStats {
        let mut s = self.stats;
        s.unique_plans = self.interner.unique_plans() as u64;
        // Derived-plan cache hits are dedup saves too: an allocation that
        // reused a cached stateless plan stored no new metadata record.
        s.dedup_saved = self.interner.dedup_hits() + self.stateless.hits;
        let pool = self.pools.stats();
        s.pool_hits = pool.hits;
        s.pool_refills = pool.refills;
        s
    }

    /// Reset the event counters (interner contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = RuntimeStats::default();
    }

    /// Probe the shadow index for a generation-current record at `base`.
    #[inline]
    fn probe(heap: &SimHeap, shadow: &Slab<ShadowSlot>, base: Addr) -> Probe {
        match heap.slot_gen(base) {
            Some((slot, gen)) => match shadow.as_slice().get(slot as usize) {
                Some(s) if s.meta.is_some() && s.block_gen == gen => Probe::Hit(slot as usize),
                _ => Probe::Miss,
            },
            None => Probe::Miss,
        }
    }

    /// Report whether the object's offset-cache entry was already warm,
    /// warming it as a side effect. On a published heap the publication
    /// slot is the single authority — shared with the lock-free read
    /// path, so both paths agree on which access is the cold one —
    /// falling back to the shadow flag for uncovered slots.
    #[inline]
    fn warm_probe(heap: &SimHeap, slot: &mut ShadowSlot, idx: usize) -> bool {
        match heap.publisher() {
            Some(p) if p.covers(idx as u32) => p.warm_probe(idx as u32),
            _ => {
                let was = slot.warmed;
                slot.warmed = true;
                was
            }
        }
    }

    /// Metadata for the object at `base`, if tracked (and not stale: a
    /// record orphaned by recycling the block through the raw path is
    /// treated as absent).
    pub fn object_meta(&self, base: Addr) -> Option<&ObjectMeta> {
        match Self::probe(&self.heap, &self.shadow, base) {
            Probe::Hit(i) => self.shadow[i].meta.as_ref(),
            Probe::Miss => None,
        }
    }

    /// Number of metadata records currently held (live + retained-freed).
    pub fn meta_records(&self) -> usize {
        self.meta_count
    }

    /// Estimated bytes of POLaR bookkeeping: the shadow-index slot table
    /// and the interned (deduplicated) plans, including each plan's dense
    /// `(offset, width)` access table. This is the memory cost Table
    /// III's dedup optimization attacks.
    pub fn estimated_metadata_bytes(&self) -> usize {
        // The shadow slab's chunked storage is what the process actually
        // pays. Each slot embeds the per-object record and the
        // (collapsed) offset-cache entry.
        let shadow_bytes = self.shadow.capacity_bytes();
        // Interned plan payload: offsets/sizes/aligns (3×u32/field), the
        // packed access table, and dummy slots.
        let plan_bytes: usize = self.interner_plans().map(|p| plan_payload_bytes(p)).sum();
        // Static-OLR's per-class table was previously uncounted (the
        // "256 B" undercount): its plans are metadata like any other.
        let static_bytes: usize = self
            .static_table
            .as_ref()
            .map_or(0, |t| t.iter().map(|p| plan_payload_bytes(p)).sum());
        // Pool bookkeeping (ring slots + class index; pooled plans are
        // interner-owned and already counted above).
        let pool_bytes = self.pools.metadata_bytes();
        // Stateless-path bookkeeping: the round-key schedule, the code
        // block, and the per-class derived-plan caches (their plans are
        // interner-owned and counted above).
        let stateless_bytes = self.stateless.metadata_bytes();
        shadow_bytes + plan_bytes + static_bytes + pool_bytes + stateless_bytes
    }

    fn interner_plans(&self) -> impl Iterator<Item = &Arc<LayoutPlan>> {
        self.interner.iter()
    }

    /// The layout a *compile-time* site bakes in for `info`: the natural
    /// layout for native and POLaR binaries (POLaR's non-instrumented
    /// leftovers keep compiler offsets), or the per-binary randomized
    /// plan under static OLR — `randstruct`-style binaries carry their
    /// permuted offsets in the code itself, with no runtime metadata.
    pub fn compile_time_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan> {
        match &self.mode {
            RandomizeMode::StaticOlr { .. } => self
                .static_table
                .as_mut()
                .expect("static table present in StaticOlr mode")
                .plan_for(info),
            _ => self.interner.intern(LayoutPlan::natural_for(info)),
        }
    }

    fn draw_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan> {
        match &self.mode {
            RandomizeMode::Native => self.interner.intern(LayoutPlan::natural_for(info)),
            RandomizeMode::StaticOlr { .. } => self
                .static_table
                .as_mut()
                .expect("static table present in StaticOlr mode")
                .plan_for(info),
            RandomizeMode::PerAllocation { .. } => {
                if self.config.pool.enabled() {
                    self.pools.draw(info, &self.engine, &mut self.interner, &mut self.rng)
                } else {
                    let plan = self.engine.generate(info, &mut self.rng);
                    self.interner.intern(plan)
                }
            }
        }
    }

    /// Whether `info` is served by the stateless small-class path.
    pub(crate) fn stateless_applicable(&self, info: &ClassInfo) -> bool {
        matches!(self.mode, RandomizeMode::PerAllocation { .. })
            && self.config.stateless.applies_to(info.field_count())
    }

    /// Instrumented allocation: draw a layout plan, allocate, seed booby
    /// traps, and record metadata.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion as [`RuntimeError::Heap`].
    pub fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        if self.stateless_applicable(info) {
            return self.olr_malloc_stateless(info);
        }
        let plan = self.draw_plan(info);
        self.olr_malloc_with_plan(info, plan)
    }

    /// Instrumented allocation with a caller-supplied layout plan.
    ///
    /// This is how the sharded facade allocates: each thread draws the
    /// plan from its *own* pool and RNG outside the shard lock, then the
    /// shard only has to malloc, seed traps and record metadata. Callers
    /// must pass a plan generated (or interned) for `info`.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion as [`RuntimeError::Heap`].
    pub fn olr_malloc_with_plan(
        &mut self,
        info: &Arc<ClassInfo>,
        plan: Arc<LayoutPlan>,
    ) -> Result<Addr, RuntimeError> {
        let capsule = self.reserve_with_plan(info, plan)?;
        self.stats.allocations += 1;
        Ok(capsule.base)
    }

    /// Reserve one fully-armed allocation for `info` with a
    /// caller-supplied plan, *without counting it as an allocation*.
    /// This is the body of [`olr_malloc_with_plan`] minus the stat: the
    /// magazine front-end reserves capsules in batches under the shard
    /// lock and counts `allocations` only when a thread actually pops
    /// one, so `allocations == frees` keeps holding at quiescence even
    /// with capsules parked in magazines.
    ///
    /// [`olr_malloc_with_plan`]: ObjectRuntime::olr_malloc_with_plan
    pub(crate) fn reserve_with_plan(
        &mut self,
        info: &Arc<ClassInfo>,
        plan: Arc<LayoutPlan>,
    ) -> Result<Capsule, RuntimeError> {
        let base = self.heap.malloc(plan.size().max(1) as usize)?;
        let (slot, generation) =
            self.heap.slot_gen(base).expect("base is a block the heap just returned");
        // One writer window spans canary seeding and the metadata
        // mirror: a lock-free reader either sees the slot's previous
        // record (whose meta generation no longer matches) or the
        // complete new one — never a half-recorded object.
        let win = self.heap.pub_open(slot);
        let (plan_id, plan) = Self::publish_canonical(&mut self.publish, plan);
        let seeded = self.seed_canaries(base, &plan);
        if seeded.is_ok() {
            self.record_object_at(slot, generation, Arc::clone(info), plan, plan_id);
        }
        self.heap.pub_close(slot, win);
        seeded?;
        Ok(Capsule { base, slot, generation })
    }

    /// The SPAM-style allocation: malloc first (the size bound is
    /// identity-independent), then derive the permutation from the heap
    /// identity the malloc just produced. The derived plan — and, when
    /// traps are on, its virtual trap geometry — is re-derivable from
    /// (epoch key, generation, slot) alone, which is what makes the path
    /// "stateless": the stored `Arc` is a cache, not the source of truth.
    ///
    /// The hot path touches no key derivation (the round-key schedule is
    /// interned per runtime), batches Feistel walks through the code
    /// block on slot-reuse runs, and resolves repeated permutation codes
    /// through the per-class plan cache — an array index plus an `Arc`
    /// clone in steady state.
    fn olr_malloc_stateless(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        let capsule = self.reserve_stateless(info)?;
        self.stats.allocations += 1;
        self.stats.stateless_allocs += 1;
        Ok(capsule.base)
    }

    /// Stateless-path reservation without the allocation stats — the
    /// counterpart of [`reserve_with_plan`](ObjectRuntime::reserve_with_plan)
    /// for small classes. The magazine front-end counts `allocations`
    /// and `stateless_allocs` at pop time.
    pub(crate) fn reserve_stateless(
        &mut self,
        info: &Arc<ClassInfo>,
    ) -> Result<Capsule, RuntimeError> {
        let ci = self.stateless_cache_idx(info);
        let cache = &self.stateless.caches[ci];
        let (bound, n) = (cache.bound.max(1) as usize, usize::from(cache.fields));
        let base = self.heap.malloc(bound)?;
        let (slot, generation) =
            self.heap.slot_gen(base).expect("base is a block the heap just returned");
        let st = &mut self.stateless;
        let code = st.block.code_for(&st.keys, slot, generation, n);
        let way = st.caches[ci].way(code);
        let (plan, plan_id) = match &st.caches[ci].entries[way] {
            Some(e) if e.code == code => {
                st.hits += 1;
                (Arc::clone(&e.plan), e.plan_id)
            }
            _ => {
                let built = stateless_plan_from_code(
                    info,
                    self.epoch_key,
                    code,
                    self.config.stateless.virtual_traps,
                );
                let interned = self.interner.intern(built);
                let (plan_id, plan) = Self::publish_canonical(&mut self.publish, interned);
                self.stateless.caches[ci].entries[way] =
                    Some(StatelessEntry { code, plan: Arc::clone(&plan), plan_id });
                (plan, plan_id)
            }
        };
        // One writer window spans canary seeding (virtual traps carry
        // canaries like any stored dummy) and the metadata mirror.
        let win = self.heap.pub_open(slot);
        let seeded = self.seed_canaries(base, &plan);
        if seeded.is_ok() {
            self.record_object_at(slot, generation, Arc::clone(info), plan, plan_id);
        }
        self.heap.pub_close(slot, win);
        seeded?;
        Ok(Capsule { base, slot, generation })
    }

    /// Index of (creating on first sight) the derived-plan cache for
    /// `info`, with a monomorphic last-class hint in front.
    #[inline]
    fn stateless_cache_idx(&mut self, info: &ClassInfo) -> usize {
        let class = info.hash();
        let st = &mut self.stateless;
        if let Some(c) = st.caches.get(st.last) {
            if c.class == class {
                return st.last;
            }
        }
        let idx = match st.caches.iter().position(|c| c.class == class) {
            Some(i) => i,
            None => {
                let bound = stateless_bound(info, self.config.stateless.virtual_traps);
                st.caches.push(StatelessClassCache::new(
                    class,
                    bound,
                    info.field_count() as u8,
                ));
                st.caches.len() - 1
            }
        };
        st.last = idx;
        idx
    }

    /// Write (or overwrite) the shadow record for the block at `base`,
    /// with the registry id already resolved (the stateless fast path
    /// caches ids next to plans, so its steady state skips even the
    /// per-runtime id map). Installing a record stamps the block's
    /// current generation and clears the offset-cache flag, so anything
    /// cached for a previous occupant of the slot is dead on arrival.
    fn record_object_with_id(
        &mut self,
        base: Addr,
        class: Arc<ClassInfo>,
        plan: Arc<LayoutPlan>,
        plan_id: Option<u32>,
    ) {
        let (slot, block_gen) =
            self.heap.slot_gen(base).expect("base is a block the heap just returned");
        self.record_object_at(slot, block_gen, class, plan, plan_id);
    }

    /// [`ObjectRuntime::record_object_with_id`] with the heap identity
    /// already resolved: allocation paths looked (slot, generation) up
    /// to derive or publish the plan, so they pass it through instead of
    /// paying a second `slot_gen`.
    fn record_object_at(
        &mut self,
        slot: u32,
        block_gen: u64,
        class: Arc<ClassInfo>,
        plan: Arc<LayoutPlan>,
        plan_id: Option<u32>,
    ) {
        let (class_hash, plan_hash) = (class.hash(), plan.plan_hash());
        let entry = self.shadow.ensure(slot as usize);
        if entry.meta.is_none() {
            self.meta_count += 1;
        }
        let generation = entry.meta.as_ref().map_or(0, |m| m.generation) + 1;
        entry.class_hash = class_hash;
        entry.plan_hash = plan_hash;
        entry.block_gen = block_gen;
        entry.warmed = false;
        entry.meta = Some(ObjectMeta { class, plan, state: ObjectState::Live, generation });
        if let Some(p) = self.heap.publisher() {
            // Callers hold the slot's writer window open across this.
            p.mirror_record(slot, class_hash.0, plan_hash.0, plan_id, block_gen);
        }
    }

    /// Registry id for `plan` on a published runtime (interning it on
    /// first sight and caching per runtime); `None` when unpublished or
    /// the registry is full — readers then fall back to the lock.
    /// Associated (not a method) so callers holding field borrows of
    /// `self` can still resolve ids.
    fn publish_id(publish: &mut Option<MetaPublisher>, plan: &Arc<LayoutPlan>) -> Option<u32> {
        let publish = publish.as_mut()?;
        if let Some(&id) = publish.ids.get(&plan.plan_hash()) {
            return Some(id);
        }
        let id = publish.registry.intern(plan)?;
        publish.ids.insert(plan.plan_hash(), id);
        Some(id)
    }

    /// Resolve `plan`'s registry id and adopt the registry's *canonical*
    /// copy for it. The plan hash deliberately excludes canary values
    /// (structurally identical plans intern together), so a locally
    /// derived twin — another shard's stateless derivation under its own
    /// epoch key, or another thread's engine draw — can carry different
    /// trap values than the copy the registry serves to lock-free
    /// readers. Seeding and recording the canonical plan keeps the armed
    /// bytes, the shadow record and the published id's resolution in
    /// exact agreement; the lock-free free path's trap sweep depends on
    /// that. Unpublished runtimes (and a full registry) keep the local
    /// plan.
    fn publish_canonical(
        publish: &mut Option<MetaPublisher>,
        plan: Arc<LayoutPlan>,
    ) -> (Option<u32>, Arc<LayoutPlan>) {
        let Some(id) = Self::publish_id(publish, &plan) else {
            return (None, plan);
        };
        let canonical = publish
            .as_ref()
            .and_then(|p| p.registry.get(id))
            .map_or(plan, Arc::clone);
        (Some(id), canonical)
    }

    fn seed_canaries(&mut self, base: Addr, plan: &LayoutPlan) -> Result<(), RuntimeError> {
        for dummy in plan.dummies() {
            if let Some(canary) = dummy.canary {
                let width = canary_width(dummy.size);
                self.heap.write_uint(base.offset(dummy.offset as u64), canary, width)?;
            }
        }
        Ok(())
    }

    /// Instrumented deallocation: verify booby traps, retire metadata,
    /// release the block.
    ///
    /// Like the paper's hooked `free()`, this accepts *any* pointer:
    /// addresses without POLaR metadata (raw buffers, native objects) are
    /// released directly.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DoubleFree`] on repeated frees of a tracked object,
    /// [`RuntimeError::TrapTriggered`] when a canary was corrupted (the
    /// object is *not* freed in that case — the program should abort), and
    /// heap errors for invalid raw frees.
    pub fn olr_free(&mut self, base: Addr) -> Result<(), RuntimeError> {
        let idx = match Self::probe(&self.heap, &self.shadow, base) {
            Probe::Hit(i) => i,
            Probe::Miss => {
                // Untracked pointer (or a record self-invalidated by raw
                // reuse): behave like plain free().
                self.heap.free(base)?;
                return Ok(());
            }
        };
        if self.shadow[idx].meta.as_ref().expect("probe hit carries metadata").state
            == ObjectState::Freed
        {
            self.stats.double_free_detected += 1;
            return Err(RuntimeError::DoubleFree(base));
        }
        if self.config.check_traps_on_free {
            self.stats.trap_scans += 1;
            let reports = self.scan_traps_at(idx, base);
            if let Some(report) = reports.first() {
                self.stats.traps_triggered += reports.len() as u64;
                self.stats.dummy_touches += reports.len() as u64;
                return Err(RuntimeError::TrapTriggered(*report));
            }
        }
        let slot = &mut self.shadow[idx];
        slot.meta.as_mut().expect("probe hit carries metadata").state = ObjectState::Freed;
        // The offset-cache entry dies with the object.
        slot.warmed = false;
        // Mirror the state flip before releasing the block, inside its
        // own writer window: a lock-free reader sees LIVE (old record)
        // or FREED, never the torn in-between.
        let win = self.heap.pub_open(idx as u32);
        if let Some(p) = self.heap.publisher() {
            p.mirror_free(idx as u32);
        }
        self.heap.pub_close(idx as u32, win);
        self.heap.free(base)?;
        self.stats.frees += 1;
        Ok(())
    }

    /// Complete the retirement of a reserved or remote-freed slot:
    /// flip its (generation-current) shadow record to `Freed`, mirror
    /// the flip, and release the heap block. Counts **nothing** — the
    /// callers decide what event this was:
    ///
    /// * the shard draining its remote-free stack (the block's free was
    ///   already counted by the lock-free `fast_frees` claim), and
    /// * a [`ShardHandle`](crate::ShardHandle) returning unconsumed
    ///   magazine capsules at teardown (reserved but never allocated,
    ///   so neither an allocation nor a free happened).
    ///
    /// Returns whether a block was actually released; `false` means the
    /// slot's block was already freed (the free raced to completion
    /// through another path) or the release failed, both of which the
    /// caller treats as "nothing left to do".
    pub(crate) fn retire_reserved(&mut self, slot: u32) -> bool {
        let Some(block) = self.heap.block_by_slot(slot) else { return false };
        if block.state == BlockState::Freed {
            return false;
        }
        if let Some(entry) = self.shadow.get_mut(slot as usize) {
            if entry.block_gen == block.generation {
                if let Some(meta) = entry.meta.as_mut() {
                    meta.state = ObjectState::Freed;
                }
                // The offset-cache entry dies with the object.
                entry.warmed = false;
            }
        }
        // Mirror the flip inside a writer window, as `olr_free` does;
        // for a drained remote free the publication slot is already
        // FREED (the claim CAS flipped it) and the mirror is idempotent.
        let win = self.heap.pub_open(slot);
        if let Some(p) = self.heap.publisher() {
            p.mirror_free(slot);
        }
        self.heap.pub_close(slot, win);
        self.heap.free(block.base).is_ok()
    }

    /// Instrumented member access (the rewritten `getelementptr`): resolve
    /// field `field` of the object at `base`, which the access site
    /// believes to be of class `expected`.
    ///
    /// The shadow index locates the metadata in O(1); the offset-lookup
    /// cache (a warmed flag on the shadow slot) short-circuits repeat
    /// accesses; use-after-free and class mismatch are detected.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownObject`], [`RuntimeError::UseAfterFree`],
    /// [`RuntimeError::ClassMismatch`] and
    /// [`RuntimeError::FieldOutOfBounds`] per the configured detections.
    pub fn olr_getptr(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<Addr, RuntimeError> {
        self.getptr_core(base, expected, field, None).map(|(addr, _)| addr)
    }

    /// [`ObjectRuntime::olr_getptr`] with a per-call-site inline cache.
    ///
    /// Identical detection behavior and statistics semantics; `ic` lets a
    /// monomorphic site resolve without touching the metadata record at
    /// all. The cache only serves live, generation-current objects whose
    /// `(class, plan)` pair matches what the site last saw, so every
    /// detection path (UAF, mismatch, stale address) still goes through
    /// the full lookup.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_getptr`].
    pub fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        self.getptr_core(base, expected, field, Some(ic)).map(|(addr, _)| addr)
    }

    /// Shared body of the getptr family; returns the resolved address and
    /// the field's access width so `read_field`/`write_field` need no
    /// second metadata lookup.
    fn getptr_core(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        mut ic: Option<&mut SiteCache>,
    ) -> Result<(Addr, usize), RuntimeError> {
        self.stats.member_accesses += 1;
        let idx = match Self::probe(&self.heap, &self.shadow, base) {
            Probe::Hit(i) => {
                self.stats.shadow_hits += 1;
                i
            }
            Probe::Miss => {
                self.stats.shadow_misses += 1;
                if ic.is_some() {
                    self.stats.site_ic_misses += 1;
                }
                return Err(RuntimeError::UnknownObject(base));
            }
        };
        let slot = &mut self.shadow.as_mut_slice()[idx];
        let state = slot.meta.as_ref().expect("probe hit carries metadata").state;

        if self.config.offset_cache && state == ObjectState::Live {
            if let Some(site) = ic.as_deref_mut() {
                if site.filled
                    && slot.plan_hash == site.plan
                    && slot.class_hash == site.class
                    && site.class == expected
                {
                    self.stats.site_ic_hits += 1;
                    // Keep the Section V-B counter's semantics: the first
                    // access warms the per-object entry, later ones hit.
                    if Self::warm_probe(&self.heap, slot, idx) {
                        self.stats.cache_hits += 1;
                    }
                    return Ok((base.offset(site.offset as u64), site.width as usize));
                }
            }
        }
        if ic.is_some() {
            self.stats.site_ic_misses += 1;
        }

        if state == ObjectState::Freed && self.config.detect_use_after_free {
            self.stats.uaf_detected += 1;
            return Err(RuntimeError::UseAfterFree { addr: base });
        }
        // With UAF detection disabled a freed object's access falls
        // through to the retained plan, exactly like an uninstrumented
        // dangling dereference.
        if self.config.offset_cache && state == ObjectState::Live
            && Self::warm_probe(&self.heap, slot, idx)
        {
            self.stats.cache_hits += 1;
        }
        let actual = slot.class_hash;
        let plan_hash = slot.plan_hash;

        let slot = &self.shadow.as_slice()[idx];
        let meta = slot.meta.as_ref().expect("probe hit carries metadata");
        let (addr, access) =
            Self::resolve(&self.config, &mut self.stats, base, actual, &meta.plan, expected, field)?;
        if let Some(site) = ic {
            if self.config.offset_cache && state == ObjectState::Live && actual == expected {
                site.pin(expected, plan_hash, access.offset, access.width);
            }
        }
        Ok((addr, access.width as usize))
    }

    fn resolve(
        config: &RuntimeConfig,
        stats: &mut RuntimeStats,
        base: Addr,
        actual: ClassHash,
        plan: &LayoutPlan,
        expected: ClassHash,
        field: usize,
    ) -> Result<(Addr, FieldAccess), RuntimeError> {
        if actual != expected {
            stats.mismatch_detected += 1;
            if config.detect_class_mismatch {
                return Err(RuntimeError::ClassMismatch { addr: base, expected, actual });
            }
            // Detection disabled: resolve through the *actual* object's
            // randomized plan — the confused access lands on an
            // unpredictable member, which is POLaR's probabilistic defense.
        }
        let access = plan
            .access(field)
            .ok_or(RuntimeError::FieldOutOfBounds { class: actual, field })?;
        Ok((base.offset(access.offset as u64), access))
    }

    /// Instrumented object copy (`memcpy`/`memmove` on objects): copies
    /// `src`'s fields into `dst` and — by default — gives the duplicate
    /// its own fresh randomized layout and metadata (Section IV-A2).
    ///
    /// `dst` must be the base of a heap block large enough for the copy's
    /// plan; if the randomized plan does not fit after a few draws the
    /// runtime falls back to a dummy-free permutation.
    ///
    /// When `src` carries no metadata (deserialized bytes, a native
    /// object), it is interpreted through `site_class`'s natural layout —
    /// the copy site's compile-time type, which the instrumentation pass
    /// knows.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UseAfterFree`] for a freed `src`;
    /// [`RuntimeError::Heap`] when `dst` cannot hold the object.
    pub fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        let (info, src_plan) = self.copy_source(src, site_class)?;
        let staged = self.stage_fields(src, &src_plan)?;
        self.install_copy(dst, info, &src_plan, &staged)
    }

    /// Resolve the class and source-side layout for an object copy from
    /// `src` (UAF-checked), counting the attempt. Split out of
    /// [`ObjectRuntime::olr_memcpy`] so the sharded facade can run the
    /// source half on one shard and [`ObjectRuntime::install_copy`] on
    /// another.
    pub(crate) fn copy_source(
        &mut self,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(Arc<ClassInfo>, Arc<LayoutPlan>), RuntimeError> {
        self.stats.memcpys += 1;
        match Self::probe(&self.heap, &self.shadow, src) {
            Probe::Hit(i) => {
                let src_meta =
                    self.shadow[i].meta.as_ref().expect("probe hit carries metadata");
                if src_meta.state == ObjectState::Freed && self.config.detect_use_after_free {
                    self.stats.uaf_detected += 1;
                    return Err(RuntimeError::UseAfterFree { addr: src });
                }
                Ok((Arc::clone(&src_meta.class), Arc::clone(&src_meta.plan)))
            }
            Probe::Miss => Ok((
                Arc::clone(site_class),
                self.interner.intern(LayoutPlan::natural_for(site_class)),
            )),
        }
    }

    /// Read every source field (laid out by `src_plan`) into one packed
    /// scratch buffer.
    ///
    /// Staging is what makes overlapping copies safe: every source byte
    /// is read before [`ObjectRuntime::install_copy`] writes a single
    /// destination byte, so a rerandomized dst plan that moves field k
    /// onto the source bytes of field k+1 can no longer clobber them
    /// mid-copy (the in-place `olr_memcpy(p, p, …)` rerandomization case,
    /// and partial overlaps through interior source pointers).
    pub(crate) fn stage_fields(
        &self,
        src: Addr,
        src_plan: &LayoutPlan,
    ) -> Result<StagedFields, RuntimeError> {
        let mut bytes = Vec::with_capacity(src_plan.size() as usize);
        let mut starts = Vec::with_capacity(src_plan.field_count());
        for field in 0..src_plan.field_count() {
            let size = src_plan.field_size(field) as usize;
            let from = src.offset(src_plan.offset(field) as u64);
            starts.push(bytes.len());
            self.heap.read_into(from, size, &mut bytes)?;
        }
        Ok(StagedFields { bytes, starts })
    }

    /// Destination half of an object copy: pick the duplicate's plan,
    /// write the staged field bytes at that plan's offsets, seed traps
    /// and record metadata. `staged` must come from
    /// [`ObjectRuntime::stage_fields`] over `src_plan`.
    pub(crate) fn install_copy(
        &mut self,
        dst: Addr,
        info: Arc<ClassInfo>,
        src_plan: &Arc<LayoutPlan>,
        staged: &StagedFields,
    ) -> Result<(), RuntimeError> {
        let dst_limit = self
            .heap
            .block_at(dst)
            .ok_or(RuntimeError::Heap(polar_simheap::HeapError::Fault {
                addr: dst,
                len: src_plan.size() as usize,
            }))?
            .size;

        let dst_plan = if self.config.memcpy_rerandomize {
            // Reuse live same-class metadata at dst when present (and
            // generation-current — a stale record never donates a plan);
            // otherwise mint a fresh randomized plan for the duplicate.
            let reusable = match Self::probe(&self.heap, &self.shadow, dst) {
                Probe::Hit(i) => {
                    let m = self.shadow[i].meta.as_ref().expect("probe hit carries metadata");
                    (m.state == ObjectState::Live && m.class.hash() == info.hash())
                        .then(|| Arc::clone(&m.plan))
                }
                Probe::Miss => None,
            };
            match reusable {
                Some(plan) => plan,
                None => self.plan_fitting(&info, dst_limit)?,
            }
        } else {
            Arc::clone(src_plan)
        };

        // Field-by-field translation between the two plans, all reads
        // already behind us in the scratch buffer. One writer window
        // spans the field stores, canaries and the metadata mirror, so
        // a lock-free reader never observes a half-installed copy.
        let dst_slot = self.heap.slot_gen(dst).map(|(s, _)| s);
        let win = dst_slot.and_then(|s| self.heap.pub_open(s));
        let installed = (|| {
            for field in 0..src_plan.field_count() {
                let size = src_plan.field_size(field) as usize;
                let to = dst.offset(dst_plan.offset(field) as u64);
                self.heap.write(to, &staged.bytes[staged.starts[field]..][..size])?;
            }
            let (dst_id, dst_plan) = Self::publish_canonical(&mut self.publish, dst_plan);
            self.seed_canaries(dst, &dst_plan)?;
            self.record_object_with_id(dst, info, dst_plan, dst_id);
            Ok(())
        })();
        if let Some(slot) = dst_slot {
            self.heap.pub_close(slot, win);
        }
        installed
    }

    fn plan_fitting(
        &mut self,
        info: &Arc<ClassInfo>,
        limit: usize,
    ) -> Result<Arc<LayoutPlan>, RuntimeError> {
        for _ in 0..8 {
            let plan = self.draw_plan(info);
            if plan.size() as usize <= limit {
                return Ok(plan);
            }
        }
        let fallback = LayoutEngine::new(RandomizationPolicy::permute_only())
            .generate(info, &mut self.rng);
        if fallback.size() as usize <= limit {
            return Ok(self.interner.intern(fallback));
        }
        Err(RuntimeError::Heap(polar_simheap::HeapError::Fault {
            addr: Addr::NULL,
            len: info.size() as usize,
        }))
    }

    /// Read the member's value (`olr_getptr` + load). For byte-array
    /// members wider than 8 bytes the first 8 bytes are returned.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_getptr`] plus heap faults.
    pub fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        let (addr, width) = self.getptr_core(base, expected, field, None)?;
        Ok(self.heap.read_uint(addr, width)?)
    }

    /// Write the member's value (`olr_getptr` + store).
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_getptr`] plus heap faults.
    pub fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        let (addr, width) = self.getptr_core(base, expected, field, None)?;
        // Bump the object's seqlock around the store so a concurrent
        // lock-free `read_field` retries instead of returning a torn
        // mix of old and new bytes.
        let slot = self.heap.slot_gen(base).map(|(s, _)| s);
        let win = slot.and_then(|s| self.heap.pub_open(s));
        let wrote = self.heap.write_uint(addr, value, width);
        if let Some(slot) = slot {
            self.heap.pub_close(slot, win);
        }
        Ok(wrote?)
    }

    /// Sweep the object's booby traps, returning every corrupted canary
    /// and counting them in the statistics.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownObject`] for untracked addresses.
    pub fn check_traps(&mut self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError> {
        let reports = self.scan_traps(base)?;
        self.stats.trap_scans += 1;
        self.stats.traps_triggered += reports.len() as u64;
        self.stats.dummy_touches += reports.len() as u64;
        Ok(reports)
    }

    fn scan_traps(&self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError> {
        let idx = match Self::probe(&self.heap, &self.shadow, base) {
            Probe::Hit(i) => i,
            Probe::Miss => return Err(RuntimeError::UnknownObject(base)),
        };
        Ok(self.scan_traps_at(idx, base))
    }

    /// [`ObjectRuntime::scan_traps`] for an already-probed shadow index
    /// (the free path resolved it moments earlier — no second probe).
    fn scan_traps_at(&self, idx: usize, base: Addr) -> Vec<TrapReport> {
        let meta = self.shadow[idx].meta.as_ref().expect("probe hit carries metadata");
        let mut reports = Vec::new();
        for dummy in meta.plan.dummies() {
            if let Some(expected) = dummy.canary {
                let width = canary_width(dummy.size);
                let found = self
                    .heap
                    .read_uint(base.offset(dummy.offset as u64), width)
                    .unwrap_or(0);
                let expected_trunc = truncate(expected, width);
                if found != expected_trunc {
                    reports.push(TrapReport {
                        base,
                        offset: dummy.offset,
                        expected: expected_trunc,
                        found,
                    });
                }
            }
        }
        reports
    }

    /// A raw *probe* read: `heap_read_uint` plus booby-trap screening.
    ///
    /// Attack probes read heap bytes at attacker-chosen (often
    /// misaligned) offsets. When `detect_probe_traps` is on and the read
    /// lands inside a tracked live object, the accessed byte range is
    /// checked against the object's plan: overlapping a canary-carrying
    /// dummy — a stored trap slot, or a stateless plan's *virtual* trap
    /// rederivable from the allocation identity — raises
    /// [`RuntimeError::TrapTriggered`] instead of returning the bytes,
    /// modeling traps that fault on access. Reads outside tracked
    /// objects, or with detection off, behave exactly like
    /// [`SimHeap::read_uint`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TrapTriggered`] on trap overlap; heap faults
    /// propagate as [`RuntimeError::Heap`].
    pub fn probe_read_uint(&mut self, addr: Addr, width: usize) -> Result<u64, RuntimeError> {
        if self.config.detect_probe_traps {
            if let Some(report) = self.probe_trap_overlap(addr, width) {
                self.stats.probe_traps += 1;
                self.stats.traps_triggered += 1;
                self.stats.dummy_touches += 1;
                return Err(RuntimeError::TrapTriggered(report));
            }
        }
        Ok(self.heap.read_uint(addr, width)?)
    }

    /// The trap report for a probe of `[addr, addr+width)` overlapping a
    /// live tracked object's canary-carrying dummy, if any.
    fn probe_trap_overlap(&self, addr: Addr, width: usize) -> Option<TrapReport> {
        let block = self.heap.block_containing(addr)?;
        let idx = match Self::probe(&self.heap, &self.shadow, block.base) {
            Probe::Hit(i) => i,
            Probe::Miss => return None,
        };
        let meta = self.shadow[idx].meta.as_ref().expect("probe hit carries metadata");
        if meta.state != ObjectState::Live {
            return None;
        }
        let rel = addr.0 - block.base.0;
        let end = rel + width as u64;
        for dummy in meta.plan.dummies() {
            let Some(canary) = dummy.canary else { continue };
            let (lo, hi) = (u64::from(dummy.offset), u64::from(dummy.offset + dummy.size));
            if rel < hi && lo < end {
                let cw = canary_width(dummy.size);
                return Some(TrapReport {
                    base: block.base,
                    offset: dummy.offset,
                    expected: truncate(canary, cw),
                    found: self.heap.read_uint(addr, width).unwrap_or(0),
                });
            }
        }
        None
    }

    /// Allocate a raw (non-object) buffer: not randomized, not tracked.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn malloc_raw(&mut self, size: usize) -> Result<Addr, RuntimeError> {
        Ok(self.heap.malloc(size)?)
    }

    /// Free a raw buffer allocated with [`ObjectRuntime::malloc_raw`].
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    pub fn free_raw(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        Ok(self.heap.free(addr)?)
    }
}

/// Bytes one interned plan costs: offsets/sizes/aligns (3×u32/field),
/// the packed access table, dummy slots, and fixed header overhead.
fn plan_payload_bytes(p: &LayoutPlan) -> usize {
    3 * 4 * p.field_count()
        + std::mem::size_of::<FieldAccess>() * p.field_count()
        + 24 * p.dummies().len()
        + 32
}

/// Stored width of a dummy slot's canary. `pub(crate)` so the sharded
/// facade's lock-free free path scans traps with byte-identical
/// semantics to [`ObjectRuntime::olr_free`]'s locked sweep.
pub(crate) fn canary_width(size: u32) -> usize {
    match size {
        1 | 2 | 4 | 8 => size as usize,
        s if s >= 8 => 8,
        _ => 1,
    }
}

/// Truncate an expected canary to its stored width (see
/// [`canary_width`]).
pub(crate) fn truncate(value: u64, width: usize) -> u64 {
    if width >= 8 {
        value
    } else {
        value & ((1u64 << (width * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use std::collections::HashSet;

    fn people() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("People")
                .field("vtable", FieldKind::VtablePtr)
                .field("age", FieldKind::I32)
                .field("height", FieldKind::I32)
                .build(),
        ))
    }

    fn confusable() -> (Arc<ClassInfo>, Arc<ClassInfo>) {
        let a = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("A")
                .field("x", FieldKind::I64)
                .field("y", FieldKind::I64)
                .field("fp", FieldKind::FnPtr)
                .build(),
        ));
        let b = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("B")
                .field("x", FieldKind::I64)
                .field("y", FieldKind::I64)
                .field("user_id", FieldKind::I64)
                .build(),
        ));
        (a, b)
    }

    fn polar_rt() -> ObjectRuntime {
        ObjectRuntime::new(RandomizeMode::per_allocation(), RuntimeConfig::default())
    }

    #[test]
    fn field_roundtrip_under_randomization() {
        let mut rt = polar_rt();
        let info = people();
        for _ in 0..20 {
            let obj = rt.olr_malloc(&info).unwrap();
            rt.write_field(obj, info.hash(), 1, 30).unwrap();
            rt.write_field(obj, info.hash(), 2, 170).unwrap();
            assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), 30);
            assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 170);
            rt.olr_free(obj).unwrap();
        }
    }

    #[test]
    fn same_type_instances_get_diverse_layouts() {
        let mut rt = polar_rt();
        let info = people();
        let mut offsets = HashSet::new();
        let mut objs = Vec::new();
        for _ in 0..40 {
            let obj = rt.olr_malloc(&info).unwrap();
            let height = rt.olr_getptr(obj, info.hash(), 2).unwrap();
            offsets.insert(height.0 - obj.0);
            objs.push(obj);
        }
        assert!(offsets.len() > 1, "per-allocation randomization produced one layout");
    }

    #[test]
    fn static_olr_shares_one_layout_per_class() {
        let mut rt = ObjectRuntime::new(RandomizeMode::static_olr(9), RuntimeConfig::default());
        let info = people();
        let mut offsets = HashSet::new();
        for _ in 0..20 {
            let obj = rt.olr_malloc(&info).unwrap();
            offsets.insert(rt.olr_getptr(obj, info.hash(), 2).unwrap().0 - obj.0);
        }
        assert_eq!(offsets.len(), 1, "static OLR must be deterministic per class");
    }

    #[test]
    fn native_mode_uses_natural_offsets() {
        let mut rt = ObjectRuntime::new(RandomizeMode::Native, RuntimeConfig::default());
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        assert_eq!(rt.olr_getptr(obj, info.hash(), 2).unwrap().0 - obj.0, 12);
    }

    #[test]
    fn use_after_free_is_detected() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        rt.olr_free(obj).unwrap();
        let err = rt.olr_getptr(obj, info.hash(), 1).unwrap_err();
        assert!(matches!(err, RuntimeError::UseAfterFree { .. }));
        assert_eq!(rt.stats().uaf_detected, 1);
    }

    #[test]
    fn cache_does_not_mask_use_after_free() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        // Warm the cache, then free: the entry must be invalidated.
        rt.olr_getptr(obj, info.hash(), 1).unwrap();
        rt.olr_getptr(obj, info.hash(), 1).unwrap();
        assert!(rt.stats().cache_hits >= 1);
        rt.olr_free(obj).unwrap();
        assert!(matches!(
            rt.olr_getptr(obj, info.hash(), 1).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
    }

    #[test]
    fn double_free_is_detected() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        rt.olr_free(obj).unwrap();
        assert!(matches!(rt.olr_free(obj).unwrap_err(), RuntimeError::DoubleFree(_)));
    }

    #[test]
    fn type_confusion_is_detected_when_enabled() {
        let mut rt = polar_rt();
        let (a, b) = confusable();
        let obj_b = rt.olr_malloc(&b).unwrap();
        // The site believes obj_b is an A (the paper's Section III-A1
        // scenario) and reaches for the function pointer member.
        let err = rt.olr_getptr(obj_b, a.hash(), 2).unwrap_err();
        assert!(matches!(err, RuntimeError::ClassMismatch { .. }));
        assert_eq!(rt.stats().mismatch_detected, 1);
    }

    #[test]
    fn type_confusion_without_detection_resolves_through_actual_plan() {
        let mut config = RuntimeConfig::default();
        config.detect_class_mismatch = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let (a, b) = confusable();
        let obj_b = rt.olr_malloc(&b).unwrap();
        let addr = rt.olr_getptr(obj_b, a.hash(), 2).unwrap();
        // Resolution lands inside the B object's (randomized) extent.
        let plan_size = rt.object_meta(obj_b).unwrap().plan.size() as u64;
        assert!(addr.0 >= obj_b.0 && addr.0 < obj_b.0 + plan_size);
        assert_eq!(rt.stats().mismatch_detected, 1);
    }

    #[test]
    fn booby_trap_fires_on_overflow_at_free() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        // Simulate a buffer overflow smashing the whole object.
        let size = rt.object_meta(obj).unwrap().plan.size() as usize;
        rt.heap_mut().memset(obj, 0x41, size).unwrap();
        let err = rt.olr_free(obj).unwrap_err();
        assert!(matches!(err, RuntimeError::TrapTriggered(_)));
    }

    #[test]
    fn check_traps_reports_and_counts() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        assert!(rt.check_traps(obj).unwrap().is_empty());
        let dummy = rt.object_meta(obj).unwrap().plan.dummies()[0];
        rt.heap_mut()
            .write_u64(obj.offset(dummy.offset as u64), 0x4242_4242)
            .unwrap();
        let reports = rt.check_traps(obj).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].offset, dummy.offset);
        assert_eq!(rt.stats().traps_triggered, 1);
    }

    #[test]
    fn memcpy_rerandomizes_the_duplicate() {
        let mut rt = polar_rt();
        let info = people();
        let src = rt.olr_malloc(&info).unwrap();
        rt.write_field(src, info.hash(), 1, 30).unwrap();
        rt.write_field(src, info.hash(), 2, 170).unwrap();
        // Raw destination buffer: no object metadata yet.
        let dst = rt.malloc_raw(128).unwrap();
        rt.olr_memcpy(dst, src, &info).unwrap();
        // The duplicate has metadata and field values survive the
        // plan-to-plan translation.
        assert!(rt.object_meta(dst).is_some());
        assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 30);
        assert_eq!(rt.read_field(dst, info.hash(), 2).unwrap(), 170);
        assert_eq!(rt.stats().memcpys, 1);
    }

    #[test]
    fn memcpy_without_rerandomization_shares_the_plan() {
        let mut config = RuntimeConfig::default();
        config.memcpy_rerandomize = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let info = people();
        let src = rt.olr_malloc(&info).unwrap();
        let dst = rt.malloc_raw(128).unwrap();
        rt.olr_memcpy(dst, src, &info).unwrap();
        let src_plan = rt.object_meta(src).unwrap().plan.plan_hash();
        let dst_plan = rt.object_meta(dst).unwrap().plan.plan_hash();
        assert_eq!(src_plan, dst_plan);
    }

    #[test]
    fn memcpy_in_place_rerandomization_preserves_fields() {
        // Regression test for the overlapping-copy bug: `olr_memcpy(p, p,
        // …)` rerandomizes a buffer in place (deserialized natural-layout
        // bytes get a fresh randomized plan at the same address). The old
        // per-field memmove loop wrote each field to its dst offset
        // before reading the next, so any dst plan that moved an early
        // field onto a later field's source bytes corrupted the object.
        let mut rt = polar_rt();
        let info = people();
        let natural = LayoutPlan::natural_for(&info);
        for round in 0..20u64 {
            let buf = rt.malloc_raw(128).unwrap();
            // Seed natural-layout field values, as a deserializer would.
            for field in 0..natural.field_count() {
                rt.heap_mut()
                    .write_uint(
                        buf.offset(natural.offset(field) as u64),
                        1000 + round * 10 + field as u64,
                        natural.field_size(field).min(8) as usize,
                    )
                    .unwrap();
            }
            rt.olr_memcpy(buf, buf, &info).unwrap();
            for field in 0..natural.field_count() {
                assert_eq!(
                    rt.read_field(buf, info.hash(), field).unwrap(),
                    1000 + round * 10 + field as u64,
                    "round {round}: field {field} corrupted by in-place rerandomization"
                );
            }
            rt.olr_free(buf).unwrap();
        }
    }

    #[test]
    fn memcpy_with_partial_overlap_preserves_fields() {
        // Same bug, other shape: the source is an interior pointer into
        // the destination block, so the two field ranges overlap without
        // being identical.
        let mut rt = polar_rt();
        let info = people();
        let natural = LayoutPlan::natural_for(&info);
        for round in 0..20u64 {
            let buf = rt.malloc_raw(128).unwrap();
            let src = buf.offset(16);
            for field in 0..natural.field_count() {
                rt.heap_mut()
                    .write_uint(
                        src.offset(natural.offset(field) as u64),
                        2000 + round * 10 + field as u64,
                        natural.field_size(field).min(8) as usize,
                    )
                    .unwrap();
            }
            rt.olr_memcpy(buf, src, &info).unwrap();
            for field in 0..natural.field_count() {
                assert_eq!(
                    rt.read_field(buf, info.hash(), field).unwrap(),
                    2000 + round * 10 + field as u64,
                    "round {round}: field {field} corrupted by overlapping copy"
                );
            }
            rt.olr_free(buf).unwrap();
        }
    }

    #[test]
    fn memcpy_from_freed_source_is_detected() {
        let mut rt = polar_rt();
        let info = people();
        let src = rt.olr_malloc(&info).unwrap();
        let dst = rt.malloc_raw(128).unwrap();
        rt.olr_free(src).unwrap();
        assert!(matches!(
            rt.olr_memcpy(dst, src, &info).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
    }

    #[test]
    fn cache_hits_accumulate() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        for _ in 0..100 {
            rt.read_field(obj, info.hash(), 1).unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.member_accesses, 100);
        assert_eq!(stats.cache_hits, 99);
    }

    #[test]
    fn disabling_the_cache_forces_metadata_lookups() {
        let mut config = RuntimeConfig::default();
        config.offset_cache = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        for _ in 0..10 {
            rt.read_field(obj, info.hash(), 1).unwrap();
        }
        assert_eq!(rt.stats().cache_hits, 0);
    }

    #[test]
    fn field_out_of_bounds_is_rejected() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        assert!(matches!(
            rt.olr_getptr(obj, info.hash(), 99).unwrap_err(),
            RuntimeError::FieldOutOfBounds { .. }
        ));
    }

    #[test]
    fn unknown_object_is_rejected() {
        let mut rt = polar_rt();
        let info = people();
        assert!(matches!(
            rt.olr_getptr(Addr(0x9999), info.hash(), 0).unwrap_err(),
            RuntimeError::UnknownObject(_)
        ));
    }

    #[test]
    fn plan_dedup_shows_up_in_stats() {
        let mut rt = polar_rt();
        // A one-field class has very few distinct plans; allocate a lot.
        let tiny = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("Tiny").field("x", FieldKind::I64).build(),
        ));
        for _ in 0..100 {
            rt.olr_malloc(&tiny).unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.allocations, 100);
        assert!(stats.unique_plans < 100, "dedup had no effect");
        assert!(stats.dedup_saved > 0);
    }

    #[test]
    fn slot_reuse_replaces_metadata_with_new_generation() {
        let mut rt = polar_rt();
        let info = people();
        let a = rt.olr_malloc(&info).unwrap();
        let gen1 = rt.object_meta(a).unwrap().generation;
        rt.olr_free(a).unwrap();
        let b = rt.olr_malloc(&info).unwrap();
        assert_eq!(a, b, "allocator should reuse the slot");
        let meta = rt.object_meta(b).unwrap();
        assert_eq!(meta.state, ObjectState::Live);
        assert!(meta.generation > gen1);
        // The dangling pointer now resolves against the NEW object's
        // random layout — no detection, but no determinism either.
        assert!(rt.olr_getptr(a, info.hash(), 2).is_ok());
    }

    #[test]
    fn raw_allocations_are_untracked() {
        let mut rt = polar_rt();
        let buf = rt.malloc_raw(64).unwrap();
        assert!(rt.object_meta(buf).is_none());
        rt.free_raw(buf).unwrap();
        assert_eq!(rt.stats().allocations, 0);
    }

    #[test]
    fn compile_time_plans_follow_the_mode() {
        let info = people();
        // Native & POLaR binaries bake natural offsets into leftover
        // (non-instrumented) sites.
        let mut rt = ObjectRuntime::new(RandomizeMode::Native, RuntimeConfig::default());
        assert!(rt.compile_time_plan(&info).is_natural());
        let mut rt =
            ObjectRuntime::new(RandomizeMode::per_allocation(), RuntimeConfig::default());
        assert!(rt.compile_time_plan(&info).is_natural());
        // Static-OLR binaries bake the per-binary permutation — stable
        // across calls within one "binary".
        let mut rt = ObjectRuntime::new(RandomizeMode::static_olr(5), RuntimeConfig::default());
        let a = rt.compile_time_plan(&info).plan_hash();
        let b = rt.compile_time_plan(&info).plan_hash();
        assert_eq!(a, b);
    }

    #[test]
    fn memcpy_from_untracked_source_uses_the_site_class() {
        // Deserialized bytes: the source is a raw buffer laid out
        // naturally; the copy site's compile-time class interprets it.
        let mut rt = polar_rt();
        let info = people();
        let src = rt.malloc_raw(64).unwrap();
        // Write field values at their natural offsets.
        rt.heap_mut().write_uint(src.offset(8), 33, 4).unwrap(); // age
        rt.heap_mut().write_uint(src.offset(12), 180, 4).unwrap(); // height
        let dst = rt.malloc_raw(128).unwrap();
        rt.olr_memcpy(dst, src, &info).unwrap();
        assert_eq!(rt.read_field(dst, info.hash(), 1).unwrap(), 33);
        assert_eq!(rt.read_field(dst, info.hash(), 2).unwrap(), 180);
        // The duplicate is tracked and randomized.
        assert!(rt.object_meta(dst).is_some());
    }

    #[test]
    fn metadata_accounting_is_populated() {
        let mut rt = polar_rt();
        let info = people();
        for _ in 0..10 {
            rt.olr_malloc(&info).unwrap();
        }
        assert_eq!(rt.meta_records(), 10);
        let bytes = rt.estimated_metadata_bytes();
        assert!(bytes > 0);
        // More allocations → no fewer bookkeeping bytes.
        for _ in 0..10 {
            rt.olr_malloc(&info).unwrap();
        }
        assert!(rt.estimated_metadata_bytes() >= bytes);
        assert_eq!(rt.meta_records(), 20);
    }

    #[test]
    fn raw_reuse_invalidates_stale_metadata() {
        // An object's block recycled through the *raw* path (free_raw +
        // malloc_raw — paths the instrumentation does not see) must not
        // leave metadata that resolves the old randomized plan for the
        // new occupant: the generation stamp self-invalidates the record.
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        // Re-request the block's own size: the stateless path mallocs
        // the identity-independent bound, which can exceed plan.size().
        let size = rt.heap().block_at(obj).unwrap().requested;
        rt.free_raw(obj).unwrap();
        let buf = rt.malloc_raw(size).unwrap();
        assert_eq!(obj, buf, "allocator should reuse the slot");
        assert!(rt.object_meta(buf).is_none(), "stale record must not be visible");
        assert!(matches!(
            rt.olr_getptr(obj, info.hash(), 1).unwrap_err(),
            RuntimeError::UnknownObject(_)
        ));
        // And olr_free on the raw occupant behaves like plain free().
        rt.olr_free(buf).unwrap();
        assert_eq!(rt.stats().frees, 0, "raw frees are not counted as object frees");
    }

    #[test]
    fn shadow_counters_track_probe_outcomes() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        for _ in 0..3 {
            rt.olr_getptr(obj, info.hash(), 1).unwrap();
        }
        assert!(rt.olr_getptr(Addr(0x9999), info.hash(), 0).is_err());
        let stats = rt.stats();
        assert_eq!(stats.shadow_hits, 3);
        assert_eq!(stats.shadow_misses, 1);
        assert_eq!(stats.member_accesses, 4);
    }

    #[test]
    fn site_inline_cache_hits_after_first_access() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        let truth = obj.offset(rt.object_meta(obj).unwrap().plan.offset(2) as u64);
        let mut ic = SiteCache::empty();
        for _ in 0..10 {
            assert_eq!(rt.olr_getptr_ic(obj, info.hash(), 2, &mut ic).unwrap(), truth);
        }
        let stats = rt.stats();
        assert_eq!(stats.site_ic_misses, 1, "only the install access misses");
        assert_eq!(stats.site_ic_hits, 9);
        // Section V-B cache counters keep exactly the non-IC semantics.
        assert_eq!(stats.member_accesses, 10);
        assert_eq!(stats.cache_hits, 9);
    }

    #[test]
    fn site_inline_cache_respects_disabled_offset_cache() {
        let mut config = RuntimeConfig::default();
        config.offset_cache = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        let mut ic = SiteCache::empty();
        for _ in 0..5 {
            rt.olr_getptr_ic(obj, info.hash(), 1, &mut ic).unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.site_ic_hits, 0);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn site_inline_cache_does_not_mask_use_after_free() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        let mut ic = SiteCache::empty();
        rt.olr_getptr_ic(obj, info.hash(), 1, &mut ic).unwrap();
        rt.olr_getptr_ic(obj, info.hash(), 1, &mut ic).unwrap();
        assert!(rt.stats().site_ic_hits >= 1, "cache must be warm before the free");
        rt.olr_free(obj).unwrap();
        assert!(matches!(
            rt.olr_getptr_ic(obj, info.hash(), 1, &mut ic).unwrap_err(),
            RuntimeError::UseAfterFree { .. }
        ));
        assert_eq!(rt.stats().uaf_detected, 1);
    }

    #[test]
    fn site_inline_cache_follows_plan_changes() {
        // One static site iterating over many objects of the same class:
        // whenever the cached plan differs from the probed object's plan,
        // the IC must fall back and resolve the object's own layout.
        let mut rt = polar_rt();
        let info = people();
        let objs: Vec<Addr> = (0..16).map(|_| rt.olr_malloc(&info).unwrap()).collect();
        let mut ic = SiteCache::empty();
        for &obj in &objs {
            let via_ic = rt.olr_getptr_ic(obj, info.hash(), 2, &mut ic).unwrap();
            let truth = rt.object_meta(obj).unwrap().plan.offset(2) as u64;
            assert_eq!(via_ic.0 - obj.0, truth);
        }
    }

    #[test]
    fn site_inline_cache_invalidated_by_slot_reuse() {
        // free + remalloc at the same base gives the slot a new plan; an
        // IC warmed on the old object must miss (plan hash changed) and
        // resolve through the new object's layout.
        let mut rt = polar_rt();
        let info = people();
        let a = rt.olr_malloc(&info).unwrap();
        let mut ic = SiteCache::empty();
        rt.olr_getptr_ic(a, info.hash(), 2, &mut ic).unwrap();
        rt.olr_free(a).unwrap();
        let b = rt.olr_malloc(&info).unwrap();
        assert_eq!(a, b, "allocator should reuse the slot");
        let via_ic = rt.olr_getptr_ic(b, info.hash(), 2, &mut ic).unwrap();
        let truth = rt.object_meta(b).unwrap().plan.offset(2) as u64;
        assert_eq!(via_ic.0 - b.0, truth);
    }

    #[test]
    fn access_width_matches_plan_table() {
        // read_field/write_field width comes from the packed access
        // table; round-trip a narrow field to confirm no widening writes.
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        rt.write_field(obj, info.hash(), 1, u64::MAX).unwrap();
        // age is an i32 field: the stored value must be truncated to 4
        // bytes, not clobber 8.
        assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), u64::from(u32::MAX));
    }

    #[test]
    fn mode_labels() {
        assert_eq!(RandomizeMode::Native.label(), "native");
        assert_eq!(RandomizeMode::static_olr(1).label(), "static-olr");
        assert_eq!(RandomizeMode::per_allocation().label(), "polar");
    }

    #[test]
    fn pool_counters_populate_under_the_default_policy() {
        // The pooled path now serves classes the stateless default does
        // not claim; route the small test class to it explicitly.
        let mut config = RuntimeConfig::default();
        config.stateless = StatelessPolicy::off();
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let info = people();
        for _ in 0..200 {
            let obj = rt.olr_malloc(&info).unwrap();
            rt.olr_free(obj).unwrap();
        }
        let stats = rt.stats();
        // Steady state: most draws are pool hits, refills stay rare.
        assert!(stats.pool_hits > 150, "pool_hits {}", stats.pool_hits);
        assert!(stats.pool_refills > 0);
        assert!(stats.pool_refills < 30, "pool_refills {}", stats.pool_refills);
    }

    #[test]
    fn disabling_the_pool_restores_per_allocation_generation() {
        let mut config = RuntimeConfig::default();
        config.pool = PoolPolicy::disabled();
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let info = people();
        let mut offsets = HashSet::new();
        for _ in 0..40 {
            let obj = rt.olr_malloc(&info).unwrap();
            offsets.insert(rt.olr_getptr(obj, info.hash(), 2).unwrap().0 - obj.0);
        }
        assert!(offsets.len() > 1);
        let stats = rt.stats();
        assert_eq!(stats.pool_hits, 0);
        assert_eq!(stats.pool_refills, 0);
    }

    #[test]
    fn pool_does_not_affect_static_or_native_modes() {
        for mode in [RandomizeMode::Native, RandomizeMode::static_olr(9)] {
            let mut rt = ObjectRuntime::new(mode, RuntimeConfig::default());
            let info = people();
            let obj = rt.olr_malloc(&info).unwrap();
            rt.olr_free(obj).unwrap();
            assert_eq!(rt.stats().pool_hits, 0);
            assert_eq!(rt.stats().pool_refills, 0);
        }
    }

    #[test]
    fn stateless_path_roundtrips_and_rederives() {
        // Stateless is the default for small classes now.
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        assert_eq!(rt.stats().stateless_allocs, 1);
        rt.write_field(obj, info.hash(), 1, 28).unwrap();
        rt.write_field(obj, info.hash(), 2, 175).unwrap();
        assert_eq!(rt.read_field(obj, info.hash(), 1).unwrap(), 28);
        assert_eq!(rt.read_field(obj, info.hash(), 2).unwrap(), 175);
        // The stored plan is a cache over a pure derivation: recomputing
        // from (epoch key, generation, slot) reproduces it exactly —
        // virtual trap geometry included.
        let (slot, generation) = rt.heap().slot_gen(obj).unwrap();
        let meta = rt.object_meta(obj).unwrap();
        let traps = meta.plan.dummies().len();
        assert!((1..=3).contains(&traps), "virtual traps derived: {traps}");
        let rederived = polar_layout::stateless_trapped_plan(&info, rt.epoch_key, generation, slot);
        assert_eq!(meta.plan.plan_hash(), rederived.plan_hash());
        // And with traps off, the permute-only reference matches.
        let mut config = RuntimeConfig::default();
        config.stateless = StatelessPolicy::permute_only();
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let obj = rt.olr_malloc(&info).unwrap();
        let (slot, generation) = rt.heap().slot_gen(obj).unwrap();
        let meta = rt.object_meta(obj).unwrap();
        assert_eq!(meta.plan.dummies().len(), 0, "permute-only ablation has no traps");
        let rederived = polar_layout::stateless_plan(&info, rt.epoch_key, generation, slot);
        assert_eq!(meta.plan.plan_hash(), rederived.plan_hash());
    }

    #[test]
    fn stateless_probe_trap_detects_overlap() {
        let mut rt = polar_rt();
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        let plan = Arc::clone(&rt.object_meta(obj).unwrap().plan);
        // A probe overlapping a virtual trap slot trips detection...
        let dummy = plan.dummies()[0];
        let err = rt.probe_read_uint(obj.offset(u64::from(dummy.offset)), 8).unwrap_err();
        assert!(matches!(err, RuntimeError::TrapTriggered(_)), "got {err:?}");
        assert_eq!(rt.stats().probe_traps, 1);
        // ...while probing a real field's exact bytes does not.
        rt.write_field(obj, info.hash(), 1, 77).unwrap();
        let off = u64::from(plan.offset(1));
        let w = plan.field_size(1) as usize;
        assert_eq!(rt.probe_read_uint(obj.offset(off), w).unwrap(), 77);
        // With detection off the same probe reads the canary bytes raw.
        let mut config = RuntimeConfig::default();
        config.detect_probe_traps = false;
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let obj = rt.olr_malloc(&info).unwrap();
        let plan = Arc::clone(&rt.object_meta(obj).unwrap().plan);
        let dummy = plan.dummies()[0];
        assert!(rt.probe_read_uint(obj.offset(u64::from(dummy.offset)), 8).is_ok());
        assert_eq!(rt.stats().probe_traps, 0);
    }

    #[test]
    fn stateless_slot_reuse_rerandomizes_via_generation() {
        let mut rt = polar_rt();
        let info = people();
        // free + remalloc reuses the slot with a bumped generation, so
        // the derived permutation changes without any stored state.
        let mut hashes = HashSet::new();
        let mut obj = rt.olr_malloc(&info).unwrap();
        for _ in 0..12 {
            hashes.insert(rt.object_meta(obj).unwrap().plan.plan_hash());
            rt.olr_free(obj).unwrap();
            let next = rt.olr_malloc(&info).unwrap();
            assert_eq!(obj, next, "allocator should reuse the slot");
            obj = next;
        }
        assert!(hashes.len() > 1, "generation bump must re-randomize");
    }

    #[test]
    fn stateless_path_skips_large_classes() {
        let mut rt = polar_rt();
        let mut b = ClassDecl::builder("Big");
        for i in 0..12 {
            b = b.field(format!("f{i}"), FieldKind::I64);
        }
        let big = Arc::new(ClassInfo::from_decl(b.build()));
        let obj = rt.olr_malloc(&big).unwrap();
        // Large classes keep the engine path: dummies (and their traps)
        // are still woven in under the default policy.
        assert!(!rt.object_meta(obj).unwrap().plan.dummies().is_empty());
    }

    #[test]
    fn metadata_accounting_counts_static_table_and_pools() {
        // The old accounting ignored the static-OLR table entirely (the
        // "256 B" undercount) and knew nothing of pools.
        let info = people();
        let mut st = ObjectRuntime::new(RandomizeMode::static_olr(3), RuntimeConfig::default());
        let baseline = st.estimated_metadata_bytes();
        st.olr_malloc(&info).unwrap();
        let with_plan = st.estimated_metadata_bytes();
        assert!(
            with_plan > baseline + plan_payload_bytes(&st.compile_time_plan(&info)) - 1,
            "static table plans must be counted: {baseline} -> {with_plan}"
        );
        let mut config = RuntimeConfig::default();
        config.stateless = StatelessPolicy::off();
        let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        rt.olr_malloc(&info).unwrap();
        assert!(rt.pools.metadata_bytes() > 0);
        assert!(rt.estimated_metadata_bytes() > rt.pools.metadata_bytes());
        // The stateless default's own bookkeeping is counted too.
        let mut rt = polar_rt();
        let before = rt.estimated_metadata_bytes();
        rt.olr_malloc(&info).unwrap();
        assert!(rt.stateless.metadata_bytes() > 0);
        assert!(rt.estimated_metadata_bytes() > before);
    }

    #[test]
    fn placement_seed_derives_from_the_runtime_seed() {
        use polar_simheap::PlacementPolicy;

        let mut config = RuntimeConfig::default();
        config.heap.placement =
            PlacementPolicy { shuffle_depth: 8, guard_gap_bits: 4, ..Default::default() };
        let seeded = |seed: u64| {
            let mut c = config;
            c.seed = seed;
            ObjectRuntime::new(RandomizeMode::per_allocation(), c)
        };
        let a = seeded(1);
        assert_ne!(a.heap().config().placement.seed, 0, "a placement seed must be derived");
        // Same runtime seed → same placement stream → same addresses.
        let trace = |mut rt: ObjectRuntime| -> Vec<u64> {
            let info = people();
            let mut out = Vec::new();
            for _ in 0..32 {
                let a = rt.olr_malloc(&info).unwrap();
                out.push(a.0);
                rt.olr_free(a).unwrap();
            }
            out
        };
        assert_eq!(trace(a), trace(seeded(1)), "placement replay must follow the seed");
        assert_ne!(trace(seeded(1)), trace(seeded(2)), "distinct seeds must diverge");
        // An explicit placement seed is left untouched.
        let mut c = config;
        c.heap.placement.seed = 77;
        let rt = ObjectRuntime::new(RandomizeMode::per_allocation(), c);
        assert_eq!(rt.heap().config().placement.seed, 77);
    }
}
