//! [`PolarRuntime`]: the single-context runtime surface.
//!
//! The IR interpreter and the adaptive-attack harness drive "a program"
//! against "a runtime" without caring whether that runtime is the plain
//! [`ObjectRuntime`] or the lock-striped [`ShardedRuntime`] facade. This
//! trait is that seam: every instrumented entry point (`olr_*`), the raw
//! heap primitives an *uninstrumented* program would use, and the
//! statistics snapshot the evaluation reads.
//!
//! Two deliberate modeling choices:
//!
//! * The trait is `&mut self` even though [`ShardedRuntime`]'s inherent
//!   API is `&self` — a single execution context is one logical thread,
//!   and the exclusive receiver keeps the two implementations
//!   interchangeable without `Sync` bounds leaking into executors.
//! * The sharded implementation allocates from **shard 0** (its
//!   single-context home shard). Address-keyed operations still route to
//!   whichever shard owns the address, so cross-shard objects produced
//!   by `olr_memcpy` behave exactly as they would under a thread handle.

use std::sync::Arc;

use polar_classinfo::{ClassHash, ClassInfo};
use polar_layout::LayoutPlan;
use polar_simheap::{Addr, HeapError};

use crate::error::{RuntimeError, TrapReport};
use crate::runtime::{ObjectRuntime, RuntimeConfig, SiteCache};
use crate::sharded::ShardedRuntime;
use crate::stats::RuntimeStats;

/// One logical thread's view of a POLaR runtime: instrumented object
/// operations, raw heap primitives, and counters. See the module docs
/// for the design notes.
pub trait PolarRuntime {
    /// The runtime's configuration.
    fn config(&self) -> &RuntimeConfig;

    /// Statistics snapshot (folded across shards where applicable).
    fn stats(&self) -> RuntimeStats;

    /// Compile-time plan for `info` under this runtime's mode (the
    /// layout an *uninstrumented* access site believes in).
    fn compile_time_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan>;

    /// Instrumented allocation.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_malloc`].
    fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError>;

    /// Instrumented free.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_free`].
    fn olr_free(&mut self, base: Addr) -> Result<(), RuntimeError>;

    /// Instrumented member access through a call-site inline cache.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_getptr_ic`].
    fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError>;

    /// Instrumented object copy.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::olr_memcpy`].
    fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError>;

    /// Checked field read (resolve + load).
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::read_field`].
    fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError>;

    /// Checked field write (resolve + store).
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::write_field`].
    fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError>;

    /// Sweep the object's booby traps.
    ///
    /// # Errors
    ///
    /// As for [`ObjectRuntime::check_traps`].
    fn check_traps(&mut self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError>;

    /// In-heap size of the tracked object at `base` (its plan's size,
    /// dummies included), or `None` when untracked.
    fn plan_size(&self, base: Addr) -> Option<u32>;

    /// Raw (untracked, unrandomized) allocation.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    fn heap_malloc(&mut self, size: usize) -> Result<Addr, HeapError>;

    /// Raw free.
    ///
    /// # Errors
    ///
    /// Propagates heap errors.
    fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError>;

    /// Arena-bounded raw integer read — ignores block boundaries, like a
    /// real out-of-bounds load.
    ///
    /// # Errors
    ///
    /// Faults outside the arena.
    fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError>;

    /// A raw *probe* read: [`PolarRuntime::heap_read_uint`] plus
    /// booby-trap screening. A probe overlapping a live object's
    /// canary-carrying dummy — stored or stateless-derived — raises
    /// [`RuntimeError::TrapTriggered`] when the runtime's
    /// `detect_probe_traps` is on, modeling trap slots that fault on
    /// access instead of leaking bytes.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TrapTriggered`] on trap overlap; arena faults as
    /// [`RuntimeError::Heap`].
    fn probe_read_uint(&mut self, addr: Addr, width: usize) -> Result<u64, RuntimeError>;

    /// Arena-bounded raw integer write.
    ///
    /// # Errors
    ///
    /// Faults outside the arena.
    fn heap_write_uint(&mut self, addr: Addr, value: u64, width: usize)
        -> Result<(), HeapError>;

    /// Arena-bounded raw byte write.
    ///
    /// # Errors
    ///
    /// Faults outside the arena.
    fn heap_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError>;

    /// Raw `memmove`.
    ///
    /// # Errors
    ///
    /// Faults outside the arena on either endpoint.
    fn heap_memmove(&mut self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError>;

    /// Strict block-boundary check (the redzone-mode guard).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBlock`] when the access crosses its block.
    fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError>;
}

impl PolarRuntime for ObjectRuntime {
    fn config(&self) -> &RuntimeConfig {
        ObjectRuntime::config(self)
    }

    fn stats(&self) -> RuntimeStats {
        ObjectRuntime::stats(self)
    }

    fn compile_time_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan> {
        ObjectRuntime::compile_time_plan(self, info)
    }

    fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        ObjectRuntime::olr_malloc(self, info)
    }

    fn olr_free(&mut self, base: Addr) -> Result<(), RuntimeError> {
        ObjectRuntime::olr_free(self, base)
    }

    fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        ObjectRuntime::olr_getptr_ic(self, base, expected, field, ic)
    }

    fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        ObjectRuntime::olr_memcpy(self, dst, src, site_class)
    }

    fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        ObjectRuntime::read_field(self, base, expected, field)
    }

    fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        ObjectRuntime::write_field(self, base, expected, field, value)
    }

    fn check_traps(&mut self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError> {
        ObjectRuntime::check_traps(self, base)
    }

    fn plan_size(&self, base: Addr) -> Option<u32> {
        self.object_meta(base).map(|meta| meta.plan.size())
    }

    fn heap_malloc(&mut self, size: usize) -> Result<Addr, HeapError> {
        self.heap_mut().malloc(size)
    }

    fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError> {
        self.heap_mut().free(addr)
    }

    fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        self.heap().read_uint(addr, width)
    }

    fn probe_read_uint(&mut self, addr: Addr, width: usize) -> Result<u64, RuntimeError> {
        ObjectRuntime::probe_read_uint(self, addr, width)
    }

    fn heap_write_uint(
        &mut self,
        addr: Addr,
        value: u64,
        width: usize,
    ) -> Result<(), HeapError> {
        self.heap_mut().write_uint(addr, value, width)
    }

    fn heap_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        self.heap_mut().write(addr, bytes)
    }

    fn heap_memmove(&mut self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        self.heap_mut().memmove(dst, src, len)
    }

    fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        self.heap().check_in_block(addr, len)
    }
}

/// Single-context home shard for facade allocations: shard 0, matching
/// `handle(0)`.
const HOME_SHARD: usize = 0;

impl PolarRuntime for ShardedRuntime {
    fn config(&self) -> &RuntimeConfig {
        ShardedRuntime::config(self)
    }

    fn stats(&self) -> RuntimeStats {
        ShardedRuntime::stats(self)
    }

    fn compile_time_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan> {
        ShardedRuntime::compile_time_plan(self, info)
    }

    fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        self.olr_malloc_on(HOME_SHARD, info)
    }

    fn olr_free(&mut self, base: Addr) -> Result<(), RuntimeError> {
        ShardedRuntime::olr_free(self, base)
    }

    fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        ShardedRuntime::olr_getptr_ic(self, base, expected, field, ic)
    }

    fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        ShardedRuntime::olr_memcpy(self, dst, src, site_class)
    }

    fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        ShardedRuntime::read_field(self, base, expected, field)
    }

    fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        ShardedRuntime::write_field(self, base, expected, field, value)
    }

    fn check_traps(&mut self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError> {
        ShardedRuntime::check_traps(self, base)
    }

    fn plan_size(&self, base: Addr) -> Option<u32> {
        self.object_meta(base).map(|meta| meta.plan.size())
    }

    fn heap_malloc(&mut self, size: usize) -> Result<Addr, HeapError> {
        self.malloc_raw_on(HOME_SHARD, size).map_err(|err| match err {
            RuntimeError::Heap(e) => e,
            // malloc_raw only surfaces heap errors; keep the fallback
            // total anyway.
            _ => HeapError::OutOfMemory { requested: size },
        })
    }

    fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError> {
        ShardedRuntime::free_raw(self, addr).map_err(|err| match err {
            RuntimeError::Heap(e) => e,
            _ => HeapError::InvalidFree(addr),
        })
    }

    fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        ShardedRuntime::heap_read_uint(self, addr, width)
    }

    fn probe_read_uint(&mut self, addr: Addr, width: usize) -> Result<u64, RuntimeError> {
        ShardedRuntime::probe_read_uint(self, addr, width)
    }

    fn heap_write_uint(
        &mut self,
        addr: Addr,
        value: u64,
        width: usize,
    ) -> Result<(), HeapError> {
        ShardedRuntime::heap_write_uint(self, addr, value, width)
    }

    fn heap_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        ShardedRuntime::heap_write(self, addr, bytes)
    }

    fn heap_memmove(&mut self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        ShardedRuntime::heap_memmove(self, dst, src, len)
    }

    fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        ShardedRuntime::heap_check_in_block(self, addr, len)
    }
}

impl<P: PolarRuntime + ?Sized> PolarRuntime for Box<P> {
    fn config(&self) -> &RuntimeConfig {
        (**self).config()
    }

    fn stats(&self) -> RuntimeStats {
        (**self).stats()
    }

    fn compile_time_plan(&mut self, info: &Arc<ClassInfo>) -> Arc<LayoutPlan> {
        (**self).compile_time_plan(info)
    }

    fn olr_malloc(&mut self, info: &Arc<ClassInfo>) -> Result<Addr, RuntimeError> {
        (**self).olr_malloc(info)
    }

    fn olr_free(&mut self, base: Addr) -> Result<(), RuntimeError> {
        (**self).olr_free(base)
    }

    fn olr_getptr_ic(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        ic: &mut SiteCache,
    ) -> Result<Addr, RuntimeError> {
        (**self).olr_getptr_ic(base, expected, field, ic)
    }

    fn olr_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        site_class: &Arc<ClassInfo>,
    ) -> Result<(), RuntimeError> {
        (**self).olr_memcpy(dst, src, site_class)
    }

    fn read_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
    ) -> Result<u64, RuntimeError> {
        (**self).read_field(base, expected, field)
    }

    fn write_field(
        &mut self,
        base: Addr,
        expected: ClassHash,
        field: usize,
        value: u64,
    ) -> Result<(), RuntimeError> {
        (**self).write_field(base, expected, field, value)
    }

    fn check_traps(&mut self, base: Addr) -> Result<Vec<TrapReport>, RuntimeError> {
        (**self).check_traps(base)
    }

    fn plan_size(&self, base: Addr) -> Option<u32> {
        (**self).plan_size(base)
    }

    fn heap_malloc(&mut self, size: usize) -> Result<Addr, HeapError> {
        (**self).heap_malloc(size)
    }

    fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError> {
        (**self).heap_free(addr)
    }

    fn heap_read_uint(&self, addr: Addr, width: usize) -> Result<u64, HeapError> {
        (**self).heap_read_uint(addr, width)
    }

    fn probe_read_uint(&mut self, addr: Addr, width: usize) -> Result<u64, RuntimeError> {
        (**self).probe_read_uint(addr, width)
    }

    fn heap_write_uint(
        &mut self,
        addr: Addr,
        value: u64,
        width: usize,
    ) -> Result<(), HeapError> {
        (**self).heap_write_uint(addr, value, width)
    }

    fn heap_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), HeapError> {
        (**self).heap_write(addr, bytes)
    }

    fn heap_memmove(&mut self, dst: Addr, src: Addr, len: usize) -> Result<(), HeapError> {
        (**self).heap_memmove(dst, src, len)
    }

    fn heap_check_in_block(&self, addr: Addr, len: usize) -> Result<(), HeapError> {
        (**self).heap_check_in_block(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RandomizeMode;
    use polar_classinfo::{ClassDecl, FieldKind};

    fn people() -> Arc<ClassInfo> {
        Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("People")
                .field("vtable", FieldKind::VtablePtr)
                .field("age", FieldKind::I32)
                .field("height", FieldKind::I32)
                .build(),
        ))
    }

    /// The same single-context program, run against both implementations
    /// through the trait: results must agree operation for operation.
    fn drive<R: PolarRuntime>(rt: &mut R) -> (u64, bool, bool) {
        let info = people();
        let obj = rt.olr_malloc(&info).unwrap();
        rt.write_field(obj, info.hash(), 1, 30).unwrap();
        let read_back = rt.read_field(obj, info.hash(), 1).unwrap();
        let buf = rt.heap_malloc(64).unwrap();
        rt.heap_write_uint(buf, 0xFEED, 8).unwrap();
        let raw = rt.heap_read_uint(buf, 8).unwrap();
        rt.heap_free(buf).unwrap();
        let sized = rt.plan_size(obj).is_some();
        rt.olr_free(obj).unwrap();
        let uaf = matches!(
            rt.read_field(obj, info.hash(), 1),
            Err(RuntimeError::UseAfterFree { .. })
        );
        (read_back ^ raw, sized, uaf)
    }

    #[test]
    fn both_implementations_satisfy_the_contract() {
        let config = RuntimeConfig::default();
        let mut single = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
        let mut config_sharded = RuntimeConfig::default();
        config_sharded.heap.capacity = 64 << 20;
        let mut sharded =
            ShardedRuntime::new(RandomizeMode::per_allocation(), config_sharded, 4);
        assert_eq!(drive(&mut single), (0xFEED ^ 30, true, true));
        assert_eq!(drive(&mut sharded), (0xFEED ^ 30, true, true));
        // And through a boxed trait object, as the attack search uses it.
        let mut boxed: Box<dyn PolarRuntime> =
            Box::new(ObjectRuntime::new(RandomizeMode::per_allocation(), RuntimeConfig::default()));
        assert_eq!(drive(&mut boxed), (0xFEED ^ 30, true, true));
    }
}
