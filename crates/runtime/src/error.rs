//! Runtime errors and detection reports.

use std::fmt;

use polar_classinfo::ClassHash;
use polar_simheap::{Addr, HeapError};

/// A booby-trap canary found corrupted during a trap sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapReport {
    /// Base address of the object whose trap fired.
    pub base: Addr,
    /// Offset of the corrupted dummy within the object.
    pub offset: u32,
    /// The canary value that should have been present.
    pub expected: u64,
    /// The value actually found.
    pub found: u64,
}

impl fmt::Display for TrapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "booby trap at {}+{}: expected {:#x}, found {:#x}",
            self.base, self.offset, self.expected, self.found
        )
    }
}

/// Errors and detections raised by the POLaR runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Member access through a pointer to a freed object — the
    /// use-after-free detection of Section IV-A3.
    UseAfterFree {
        /// The dangling base address.
        addr: Addr,
    },
    /// The access site's expected class hash does not match the object's
    /// metadata — a type confusion caught red-handed.
    ClassMismatch {
        /// Accessed address.
        addr: Addr,
        /// Class hash the instrumented site expected.
        expected: ClassHash,
        /// Class hash recorded in the object's metadata.
        actual: ClassHash,
    },
    /// No metadata exists for the address (wild or forged pointer).
    UnknownObject(Addr),
    /// Field index out of range for the object's class.
    FieldOutOfBounds {
        /// The object's class.
        class: ClassHash,
        /// The offending field index.
        field: usize,
    },
    /// A booby-trap canary was found corrupted.
    TrapTriggered(TrapReport),
    /// The object was freed twice through the runtime.
    DoubleFree(Addr),
    /// An underlying simulated-heap failure.
    Heap(HeapError),
    /// The shard's mutex was poisoned by a panicking thread: the shard
    /// is degraded (its objects unreachable through the facade) but the
    /// caller — and every other shard — keeps running.
    ShardPoisoned {
        /// Index of the degraded shard.
        shard: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UseAfterFree { addr } => {
                write!(f, "use-after-free access to {addr}")
            }
            RuntimeError::ClassMismatch { addr, expected, actual } => write!(
                f,
                "type confusion at {addr}: site expects class {expected}, object is {actual}"
            ),
            RuntimeError::UnknownObject(addr) => {
                write!(f, "no POLaR metadata for address {addr}")
            }
            RuntimeError::FieldOutOfBounds { class, field } => {
                write!(f, "field index {field} out of bounds for class {class}")
            }
            RuntimeError::TrapTriggered(report) => write!(f, "{report}"),
            RuntimeError::DoubleFree(addr) => write!(f, "double free of object {addr}"),
            RuntimeError::Heap(e) => write!(f, "heap error: {e}"),
            RuntimeError::ShardPoisoned { shard } => {
                write!(f, "shard {shard} poisoned by a panicking thread")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for RuntimeError {
    fn from(e: HeapError) -> Self {
        RuntimeError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RuntimeError::UseAfterFree { addr: Addr(0x40) };
        assert!(e.to_string().contains("use-after-free"));
        let e = RuntimeError::ClassMismatch {
            addr: Addr(0x40),
            expected: ClassHash(1),
            actual: ClassHash(2),
        };
        assert!(e.to_string().contains("type confusion"));
        let t = TrapReport { base: Addr(0x40), offset: 8, expected: 1, found: 2 };
        assert!(RuntimeError::TrapTriggered(t).to_string().contains("booby trap"));
    }

    #[test]
    fn heap_errors_convert() {
        let e: RuntimeError = HeapError::ZeroSize.into();
        assert!(matches!(e, RuntimeError::Heap(HeapError::ZeroSize)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
