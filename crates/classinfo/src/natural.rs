//! Natural (compiler-deterministic) layout computation.
//!
//! This is the layout a conventional C/C++ compiler assigns: members placed
//! in declaration order, each aligned to its natural alignment, with the
//! struct size rounded up to the maximum member alignment. The paper's
//! Figure 1 shows exactly this layout for the `People` example; the fixed
//! constants it produces (e.g. `base + 12` for `height`) are what attackers
//! rely on and what POLaR destroys.

use crate::field::FieldDecl;

/// The deterministic layout of a class as a conventional compiler would
/// emit it.
///
/// ```
/// use polar_classinfo::{ClassDecl, FieldKind};
/// let c = ClassDecl::builder("People")
///     .field("vtable", FieldKind::VtablePtr)
///     .field("age", FieldKind::I32)
///     .field("height", FieldKind::I32)
///     .build();
/// let n = c.compute_natural_layout();
/// assert_eq!(n.offset(0), 0);  // vtable
/// assert_eq!(n.offset(1), 8);  // age
/// assert_eq!(n.offset(2), 12); // height — the paper's "base + 12"
/// assert_eq!(n.size(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NaturalLayout {
    offsets: Vec<u32>,
    size: u32,
    align: u32,
}

impl NaturalLayout {
    /// Compute the natural layout for an ordered field list.
    pub fn compute(fields: &[FieldDecl]) -> Self {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut cursor: u32 = 0;
        let mut align: u32 = 1;
        for field in fields {
            let fa = field.kind().align();
            align = align.max(fa);
            cursor = round_up(cursor, fa);
            offsets.push(cursor);
            cursor += field.kind().size();
        }
        let size = round_up(cursor.max(1), align);
        NaturalLayout { offsets, size, align }
    }

    /// Byte offset of field `index` from the object base address.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the class's field list.
    pub fn offset(&self, index: usize) -> u32 {
        self.offsets[index]
    }

    /// Offset of field `index`, or `None` when out of bounds.
    pub fn offset_checked(&self, index: usize) -> Option<u32> {
        self.offsets.get(index).copied()
    }

    /// All field offsets in declaration order.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total object size in bytes (padded to the struct alignment).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Struct alignment in bytes.
    pub fn align(&self) -> u32 {
        self.align
    }

    /// Number of fields in the layout.
    pub fn field_count(&self) -> usize {
        self.offsets.len()
    }
}

/// Round `value` up to the next multiple of `to` (a power of two).
pub(crate) fn round_up(value: u32, to: u32) -> u32 {
    debug_assert!(to.is_power_of_two());
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldDecl, FieldKind};

    fn f(name: &str, kind: FieldKind) -> FieldDecl {
        FieldDecl::new(name, kind)
    }

    #[test]
    fn paper_people_example() {
        // Figure 1 of the paper: vtable, age (i32), height (i32) with the
        // height member at base + 12.
        let n = NaturalLayout::compute(&[
            f("vtable", FieldKind::VtablePtr),
            f("age", FieldKind::I32),
            f("height", FieldKind::I32),
        ]);
        assert_eq!(n.offsets(), &[0, 8, 12]);
        assert_eq!(n.size(), 16);
        assert_eq!(n.align(), 8);
    }

    #[test]
    fn padding_is_inserted_for_alignment() {
        let n = NaturalLayout::compute(&[
            f("a", FieldKind::I8),
            f("b", FieldKind::I64),
            f("c", FieldKind::I16),
        ]);
        assert_eq!(n.offsets(), &[0, 8, 16]);
        // 18 bytes of content rounded up to 8-byte alignment.
        assert_eq!(n.size(), 24);
    }

    #[test]
    fn byte_arrays_pack_tightly() {
        let n = NaturalLayout::compute(&[
            f("tag", FieldKind::I8),
            f("name", FieldKind::Bytes(5)),
            f("next", FieldKind::Ptr),
        ]);
        assert_eq!(n.offsets(), &[0, 1, 8]);
        assert_eq!(n.size(), 16);
    }

    #[test]
    fn empty_class_occupies_one_byte() {
        let n = NaturalLayout::compute(&[]);
        assert_eq!(n.size(), 1);
        assert_eq!(n.field_count(), 0);
    }

    #[test]
    fn offset_checked_handles_out_of_bounds() {
        let n = NaturalLayout::compute(&[f("a", FieldKind::I32)]);
        assert_eq!(n.offset_checked(0), Some(0));
        assert_eq!(n.offset_checked(1), None);
    }

    #[test]
    fn fields_never_overlap() {
        let fields = vec![
            f("a", FieldKind::I8),
            f("b", FieldKind::I32),
            f("c", FieldKind::Bytes(3)),
            f("d", FieldKind::I64),
            f("e", FieldKind::I16),
        ];
        let n = NaturalLayout::compute(&fields);
        let mut spans: Vec<(u32, u32)> = fields
            .iter()
            .enumerate()
            .map(|(i, fd)| (n.offset(i), n.offset(i) + fd.kind().size()))
            .collect();
        spans.sort();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
        assert!(spans.last().unwrap().1 <= n.size());
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }
}
