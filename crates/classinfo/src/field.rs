//! Field declarations: the typed members of a class.

use std::fmt;

/// The primitive type of a single class member.
///
/// POLaR's CIE records, for each member, its size and whether it is a
/// pointer. Pointer members (and in particular vtable and function pointers)
/// are the security-critical ones: they are what exploits corrupt and what
/// the runtime shields with adjacent booby-trap fields.
///
/// ```
/// use polar_classinfo::FieldKind;
/// assert_eq!(FieldKind::I32.size(), 4);
/// assert!(FieldKind::FnPtr.is_pointer());
/// assert!(!FieldKind::F64.is_pointer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldKind {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Data pointer (8 bytes on the modeled LP64 target).
    Ptr,
    /// Function pointer — the classic control-flow hijack target.
    FnPtr,
    /// C++ virtual-table pointer, always the first member in the natural
    /// layout of a polymorphic class.
    VtablePtr,
    /// Inline byte array of the given length (e.g. a name buffer). Aligned
    /// to one byte; this is the member overflows usually start from.
    Bytes(u32),
}

impl FieldKind {
    /// Size of the member in bytes.
    pub fn size(self) -> u32 {
        match self {
            FieldKind::I8 => 1,
            FieldKind::I16 => 2,
            FieldKind::I32 | FieldKind::F32 => 4,
            FieldKind::I64 | FieldKind::F64 => 8,
            FieldKind::Ptr | FieldKind::FnPtr | FieldKind::VtablePtr => 8,
            FieldKind::Bytes(n) => n,
        }
    }

    /// Natural alignment of the member in bytes (power of two, at most 8).
    pub fn align(self) -> u32 {
        match self {
            FieldKind::Bytes(_) => 1,
            other => other.size().min(8).max(1),
        }
    }

    /// Whether the member holds an address. Pointer members are what the
    /// paper's booby traps are placed next to.
    pub fn is_pointer(self) -> bool {
        matches!(self, FieldKind::Ptr | FieldKind::FnPtr | FieldKind::VtablePtr)
    }

    /// Stable one-byte tag used when hashing a declaration.
    pub(crate) fn tag(self) -> u8 {
        match self {
            FieldKind::I8 => 1,
            FieldKind::I16 => 2,
            FieldKind::I32 => 3,
            FieldKind::I64 => 4,
            FieldKind::F32 => 5,
            FieldKind::F64 => 6,
            FieldKind::Ptr => 7,
            FieldKind::FnPtr => 8,
            FieldKind::VtablePtr => 9,
            FieldKind::Bytes(_) => 10,
        }
    }
}

impl fmt::Display for FieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKind::I8 => write!(f, "i8"),
            FieldKind::I16 => write!(f, "i16"),
            FieldKind::I32 => write!(f, "i32"),
            FieldKind::I64 => write!(f, "i64"),
            FieldKind::F32 => write!(f, "f32"),
            FieldKind::F64 => write!(f, "f64"),
            FieldKind::Ptr => write!(f, "ptr"),
            FieldKind::FnPtr => write!(f, "fnptr"),
            FieldKind::VtablePtr => write!(f, "vptr"),
            FieldKind::Bytes(n) => write!(f, "bytes[{n}]"),
        }
    }
}

/// A single declared member of a class: a name plus a [`FieldKind`].
///
/// ```
/// use polar_classinfo::{FieldDecl, FieldKind};
/// let f = FieldDecl::new("height", FieldKind::I32);
/// assert_eq!(f.name(), "height");
/// assert_eq!(f.kind().size(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldDecl {
    name: String,
    kind: FieldKind,
}

impl FieldDecl {
    /// Create a field declaration.
    pub fn new(name: impl Into<String>, kind: FieldKind) -> Self {
        FieldDecl { name: name.into(), kind }
    }

    /// The declared member name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared member type.
    pub fn kind(&self) -> FieldKind {
        self.kind
    }
}

impl fmt::Display for FieldDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_lp64_model() {
        assert_eq!(FieldKind::I8.size(), 1);
        assert_eq!(FieldKind::I16.size(), 2);
        assert_eq!(FieldKind::I32.size(), 4);
        assert_eq!(FieldKind::I64.size(), 8);
        assert_eq!(FieldKind::F32.size(), 4);
        assert_eq!(FieldKind::F64.size(), 8);
        assert_eq!(FieldKind::Ptr.size(), 8);
        assert_eq!(FieldKind::FnPtr.size(), 8);
        assert_eq!(FieldKind::VtablePtr.size(), 8);
        assert_eq!(FieldKind::Bytes(17).size(), 17);
    }

    #[test]
    fn alignment_is_power_of_two_and_bounded() {
        for kind in [
            FieldKind::I8,
            FieldKind::I16,
            FieldKind::I32,
            FieldKind::I64,
            FieldKind::F32,
            FieldKind::F64,
            FieldKind::Ptr,
            FieldKind::FnPtr,
            FieldKind::VtablePtr,
            FieldKind::Bytes(33),
        ] {
            let a = kind.align();
            assert!(a.is_power_of_two(), "{kind}: align {a}");
            assert!(a <= 8);
        }
    }

    #[test]
    fn bytes_align_to_one() {
        assert_eq!(FieldKind::Bytes(64).align(), 1);
    }

    #[test]
    fn pointer_classification() {
        assert!(FieldKind::Ptr.is_pointer());
        assert!(FieldKind::FnPtr.is_pointer());
        assert!(FieldKind::VtablePtr.is_pointer());
        for kind in [FieldKind::I64, FieldKind::Bytes(8), FieldKind::F64] {
            assert!(!kind.is_pointer());
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(FieldKind::Bytes(4).to_string(), "bytes[4]");
        assert_eq!(FieldDecl::new("x", FieldKind::Ptr).to_string(), "x: ptr");
    }
}
