//! A miniature class-declaration language.
//!
//! The paper's CIE consumes C/C++ source through Clang. Our stand-in lets
//! workloads and examples write their class inventory in a compact textual
//! form that is parsed into [`ClassDecl`]s:
//!
//! ```text
//! // comments run to end of line
//! class People {
//!     vtable: vptr,
//!     age: i32,
//!     height: i32,
//! }
//!
//! class Packet { tag: i8, len: i32, body: bytes[64], next: ptr }
//! ```
//!
//! Field types: `i8 i16 i32 i64 f32 f64 ptr fnptr vptr bytes[N]`.
//!
//! ```
//! use polar_classinfo::parse::parse_classes;
//! let decls = parse_classes("class P { v: vptr, age: i32 }")?;
//! assert_eq!(decls[0].name(), "P");
//! assert_eq!(decls[0].field_count(), 2);
//! # Ok::<(), polar_classinfo::parse::ParseError>(())
//! ```

use std::fmt;

use crate::class::ClassDecl;
use crate::field::{FieldDecl, FieldKind};

/// Error reported while parsing class declarations, with a 1-based line
/// number for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }

    /// 1-based line number the error was detected on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Class,
    Ident(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Number(u32),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0, line: 1 }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        loop {
            match self.peek() {
                None => return Ok(None),
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Line comment `// ...`.
                    let start_line = self.line;
                    self.bump();
                    if self.peek() == Some('/') {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        return Err(ParseError::new(start_line, "unexpected `/`"));
                    }
                }
                Some(_) => break,
            }
        }
        let line = self.line;
        let c = self.bump().expect("peeked");
        let tok = match c {
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            ':' => Token::Colon,
            ',' => Token::Comma,
            c if c.is_ascii_digit() => {
                let mut value = u32::from(c as u8 - b'0');
                while let Some(d) = self.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(digit))
                            .ok_or_else(|| ParseError::new(line, "number too large"))?;
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Number(value)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                ident.push(c);
                while let Some(d) = self.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if ident == "class" {
                    Token::Class
                } else {
                    Token::Ident(ident)
                }
            }
            other => {
                return Err(ParseError::new(line, format!("unexpected character `{other}`")))
            }
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(ParseError::new(line, format!("expected {what}, found {t:?}"))),
            None => Err(ParseError::new(line, format!("expected {what}, found end of input"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            Some(t) => Err(ParseError::new(line, format!("expected {what}, found {t:?}"))),
            None => Err(ParseError::new(line, format!("expected {what}, found end of input"))),
        }
    }

    fn field_kind(&mut self) -> Result<FieldKind, ParseError> {
        let line = self.line();
        let name = self.ident("a field type")?;
        let kind = match name.as_str() {
            "i8" => FieldKind::I8,
            "i16" => FieldKind::I16,
            "i32" => FieldKind::I32,
            "i64" => FieldKind::I64,
            "f32" => FieldKind::F32,
            "f64" => FieldKind::F64,
            "ptr" => FieldKind::Ptr,
            "fnptr" => FieldKind::FnPtr,
            "vptr" => FieldKind::VtablePtr,
            "bytes" => {
                self.expect(&Token::LBracket, "`[`")?;
                let len_line = self.line();
                let len = match self.next() {
                    Some(Token::Number(n)) => n,
                    other => {
                        return Err(ParseError::new(
                            len_line,
                            format!("expected byte-array length, found {other:?}"),
                        ))
                    }
                };
                if len == 0 {
                    return Err(ParseError::new(len_line, "byte array length must be non-zero"));
                }
                self.expect(&Token::RBracket, "`]`")?;
                FieldKind::Bytes(len)
            }
            other => {
                return Err(ParseError::new(line, format!("unknown field type `{other}`")))
            }
        };
        Ok(kind)
    }

    fn class(&mut self) -> Result<ClassDecl, ParseError> {
        self.expect(&Token::Class, "`class`")?;
        let name = self.ident("a class name")?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut fields = Vec::new();
        loop {
            if self.peek() == Some(&Token::RBrace) {
                self.next();
                break;
            }
            let fname = self.ident("a field name")?;
            self.expect(&Token::Colon, "`:`")?;
            let kind = self.field_kind()?;
            fields.push(FieldDecl::new(fname, kind));
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                Some(Token::RBrace) => {}
                _ => {
                    return Err(ParseError::new(self.line(), "expected `,` or `}` after field"))
                }
            }
        }
        Ok(ClassDecl::new(name, fields))
    }
}

/// Parse a sequence of class declarations from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on the first syntax error.
pub fn parse_classes(src: &str) -> Result<Vec<ClassDecl>, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    let mut parser = Parser { tokens, pos: 0 };
    let mut decls = Vec::new();
    while parser.peek().is_some() {
        decls.push(parser.class()?);
    }
    Ok(decls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let decls = parse_classes(
            "// Figure 1
             class People {
                 vtable: vptr,
                 age: i32,
                 height: i32,
             }",
        )
        .unwrap();
        assert_eq!(decls.len(), 1);
        let p = &decls[0];
        assert_eq!(p.name(), "People");
        assert_eq!(p.fields()[0].kind(), FieldKind::VtablePtr);
        assert_eq!(p.compute_natural_layout().offset(2), 12);
    }

    #[test]
    fn parses_multiple_classes_and_all_types() {
        let decls = parse_classes(
            "class A { a: i8, b: i16, c: i32, d: i64 }
             class B { e: f32, f: f64, g: ptr, h: fnptr, i: vptr, j: bytes[16] }",
        )
        .unwrap();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[1].fields()[5].kind(), FieldKind::Bytes(16));
    }

    #[test]
    fn trailing_comma_is_accepted() {
        let decls = parse_classes("class T { x: i32, }").unwrap();
        assert_eq!(decls[0].field_count(), 1);
    }

    #[test]
    fn empty_class_is_accepted() {
        let decls = parse_classes("class Empty {}").unwrap();
        assert_eq!(decls[0].field_count(), 0);
    }

    #[test]
    fn error_carries_line_numbers() {
        let err = parse_classes("class A { x: i32 }\nclass B { y: quux }").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("quux"));
        assert!(err.to_string().starts_with("line 2:"));
    }

    #[test]
    fn rejects_zero_length_byte_arrays() {
        let err = parse_classes("class T { b: bytes[0] }").unwrap_err();
        assert!(err.message().contains("non-zero"));
    }

    #[test]
    fn rejects_missing_colon() {
        assert!(parse_classes("class T { x i32 }").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(parse_classes("class T { x: i32 } #").is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse_classes("class T { x: ").is_err());
        assert!(parse_classes("class").is_err());
    }
}
