//! Class model for the POLaR reproduction.
//!
//! POLaR's *Class Information Extractor* (CIE, Section IV-A1 of the paper)
//! walks LLVM type information and emits, for every class or struct the
//! program declares, the data the runtime needs to randomize it: the member
//! list, member sizes and types, the total class size, and a stable *class
//! hash* that instrumented code uses to name the type at allocation and
//! member-access sites (Figure 4 of the paper).
//!
//! This crate is the CIE of the reproduction. It provides:
//!
//! * [`FieldKind`] / [`FieldDecl`] / [`ClassDecl`] — the declared shape of a
//!   class, independent of any layout decision;
//! * [`NaturalLayout`] — the deterministic C-style layout a conventional
//!   compiler would assign (the baseline the paper attacks);
//! * [`ClassInfo`] — a declaration combined with its natural layout and its
//!   64-bit [`ClassHash`];
//! * [`ClassRegistry`] — the table embedded in a "binary", mapping
//!   [`ClassId`]s and hashes to [`ClassInfo`];
//! * [`parse`] — a miniature class-declaration language so workloads and
//!   examples can state their classes the way C++ source states them.
//!
//! # Example
//!
//! ```
//! use polar_classinfo::{ClassDecl, FieldKind, ClassRegistry};
//!
//! let people = ClassDecl::builder("People")
//!     .field("vtable", FieldKind::VtablePtr)
//!     .field("age", FieldKind::I32)
//!     .field("height", FieldKind::I32)
//!     .build();
//!
//! let mut registry = ClassRegistry::new();
//! let id = registry.register(people).unwrap();
//! let info = registry.get(id);
//! // The natural (compiler) layout is deterministic: vtable at 0, age at 8,
//! // height at 12 — exactly the predictability POLaR removes.
//! assert_eq!(info.natural().offset(2), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod field;
mod natural;
pub mod parse;
mod registry;

pub use class::{ClassDecl, ClassDeclBuilder, ClassHash, ClassInfo};
pub use field::{FieldDecl, FieldKind};
pub use natural::NaturalLayout;
pub use registry::{ClassId, ClassRegistry, RegistryError};
