//! Class declarations, class hashes, and the combined [`ClassInfo`] record.

use std::fmt;

use crate::field::{FieldDecl, FieldKind};
use crate::natural::NaturalLayout;

/// A 64-bit stable identifier for a class declaration.
///
/// The paper's instrumented code names classes by hash at allocation and
/// member-access sites (Figure 4: the metadata table is keyed by "class
/// hash"). The hash covers the class name and the ordered member list, so
/// two structurally different classes collide with negligible probability.
///
/// ```
/// use polar_classinfo::{ClassDecl, FieldKind};
/// let a = ClassDecl::builder("A").field("x", FieldKind::I32).build();
/// let b = ClassDecl::builder("B").field("x", FieldKind::I32).build();
/// assert_ne!(a.class_hash(), b.class_hash());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassHash(pub u64);

impl fmt::Display for ClassHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The declared shape of a class: its name and ordered member list.
///
/// A `ClassDecl` carries no layout decision; both the deterministic
/// [`NaturalLayout`] and POLaR's randomized plans are derived from it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassDecl {
    name: String,
    fields: Vec<FieldDecl>,
}

impl ClassDecl {
    /// Start building a class declaration with the given name.
    pub fn builder(name: impl Into<String>) -> ClassDeclBuilder {
        ClassDeclBuilder { name: name.into(), fields: Vec::new() }
    }

    /// Construct a declaration directly from a field list.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDecl>) -> Self {
        ClassDecl { name: name.into(), fields }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered member list.
    pub fn fields(&self) -> &[FieldDecl] {
        &self.fields
    }

    /// Number of declared members.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Look up a field index by member name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }

    /// Whether any member is a pointer (vtable, data, or function pointer).
    /// Classes composed only of function pointers are what the kernel's
    /// `randstruct` randomizes unconditionally (Section II-C).
    pub fn has_pointer_field(&self) -> bool {
        self.fields.iter().any(|f| f.kind().is_pointer())
    }

    /// Whether the class consists solely of function pointers — the
    /// `randstruct` auto-selection rule.
    pub fn is_all_function_pointers(&self) -> bool {
        !self.fields.is_empty()
            && self.fields.iter().all(|f| matches!(f.kind(), FieldKind::FnPtr))
    }

    /// The stable class hash covering name and member list.
    pub fn class_hash(&self) -> ClassHash {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, self.name.as_bytes());
        fnv1a(&mut h, &[0xff]);
        for f in &self.fields {
            fnv1a(&mut h, f.name().as_bytes());
            fnv1a(&mut h, &[f.kind().tag()]);
            fnv1a(&mut h, &f.kind().size().to_le_bytes());
        }
        ClassHash(h)
    }

    /// Compute the deterministic compiler layout for this declaration.
    pub fn compute_natural_layout(&self) -> NaturalLayout {
        NaturalLayout::compute(&self.fields)
    }
}

impl fmt::Display for ClassDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class {} {{ ", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, " }}")
    }
}

/// Incremental builder for [`ClassDecl`].
///
/// ```
/// use polar_classinfo::{ClassDecl, FieldKind};
/// let c = ClassDecl::builder("Node")
///     .field("next", FieldKind::Ptr)
///     .field("value", FieldKind::I64)
///     .build();
/// assert_eq!(c.field_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClassDeclBuilder {
    name: String,
    fields: Vec<FieldDecl>,
}

impl ClassDeclBuilder {
    /// Append a member with the given name and type.
    pub fn field(mut self, name: impl Into<String>, kind: FieldKind) -> Self {
        self.fields.push(FieldDecl::new(name, kind));
        self
    }

    /// Append several members at once.
    pub fn fields<I>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = FieldDecl>,
    {
        self.fields.extend(fields);
        self
    }

    /// Finish building the declaration.
    pub fn build(self) -> ClassDecl {
        ClassDecl { name: self.name, fields: self.fields }
    }
}

/// A class declaration combined with everything the POLaR runtime needs:
/// the natural layout, total size, and the class hash.
///
/// This is the per-class record the CIE embeds into the hardened binary
/// (paper Figure 4, "Class Information generated by CIE").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    decl: ClassDecl,
    natural: NaturalLayout,
    hash: ClassHash,
}

impl ClassInfo {
    /// Build the full class record from a declaration.
    pub fn from_decl(decl: ClassDecl) -> Self {
        let natural = decl.compute_natural_layout();
        let hash = decl.class_hash();
        ClassInfo { decl, natural, hash }
    }

    /// The underlying declaration.
    pub fn decl(&self) -> &ClassDecl {
        &self.decl
    }

    /// The class name.
    pub fn name(&self) -> &str {
        self.decl.name()
    }

    /// The ordered member list.
    pub fn fields(&self) -> &[FieldDecl] {
        self.decl.fields()
    }

    /// Number of declared members.
    pub fn field_count(&self) -> usize {
        self.decl.field_count()
    }

    /// The deterministic compiler layout.
    pub fn natural(&self) -> &NaturalLayout {
        &self.natural
    }

    /// Natural object size in bytes.
    pub fn size(&self) -> u32 {
        self.natural.size()
    }

    /// The stable class hash.
    pub fn hash(&self) -> ClassHash {
        self.hash
    }
}

impl fmt::Display for ClassInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (hash {}, size {})", self.decl, self.hash, self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> ClassDecl {
        ClassDecl::builder("People")
            .field("vtable", FieldKind::VtablePtr)
            .field("age", FieldKind::I32)
            .field("height", FieldKind::I32)
            .build()
    }

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(people().class_hash(), people().class_hash());
    }

    #[test]
    fn hash_depends_on_name_fields_and_order() {
        let base = people().class_hash();
        let renamed = ClassDecl::builder("Peoples")
            .field("vtable", FieldKind::VtablePtr)
            .field("age", FieldKind::I32)
            .field("height", FieldKind::I32)
            .build();
        assert_ne!(base, renamed.class_hash());

        let reordered = ClassDecl::builder("People")
            .field("vtable", FieldKind::VtablePtr)
            .field("height", FieldKind::I32)
            .field("age", FieldKind::I32)
            .build();
        assert_ne!(base, reordered.class_hash());

        let retyped = ClassDecl::builder("People")
            .field("vtable", FieldKind::VtablePtr)
            .field("age", FieldKind::I64)
            .field("height", FieldKind::I32)
            .build();
        assert_ne!(base, retyped.class_hash());
    }

    #[test]
    fn field_index_lookup() {
        let c = people();
        assert_eq!(c.field_index("height"), Some(2));
        assert_eq!(c.field_index("weight"), None);
    }

    #[test]
    fn randstruct_fnptr_rule() {
        let ops = ClassDecl::builder("file_operations")
            .field("read", FieldKind::FnPtr)
            .field("write", FieldKind::FnPtr)
            .build();
        assert!(ops.is_all_function_pointers());
        assert!(!people().is_all_function_pointers());
        let empty = ClassDecl::builder("Empty").build();
        assert!(!empty.is_all_function_pointers());
    }

    #[test]
    fn class_info_combines_everything() {
        let info = ClassInfo::from_decl(people());
        assert_eq!(info.name(), "People");
        assert_eq!(info.size(), 16);
        assert_eq!(info.hash(), people().class_hash());
        assert_eq!(info.field_count(), 3);
    }

    #[test]
    fn display_formats() {
        let c = people();
        let s = c.to_string();
        assert!(s.contains("class People"));
        assert!(s.contains("height: i32"));
        assert!(ClassInfo::from_decl(c).to_string().contains("hash 0x"));
    }

    #[test]
    fn pointer_field_detection() {
        assert!(people().has_pointer_field());
        let plain = ClassDecl::builder("Plain").field("x", FieldKind::I32).build();
        assert!(!plain.has_pointer_field());
    }
}
