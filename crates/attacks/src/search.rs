//! The adaptive attacker: seed-deterministic search over attack tapes.
//!
//! The canned scenarios in [`crate::scenarios`] model an attacker who
//! already knows the winning input. This module models the stronger
//! adversary the paper's probabilistic argument is actually about: one
//! who *searches*. A [`Campaign`](polar_fuzz::Campaign) evolves byte
//! tapes — little allocation/free/spray/probe programs run against a
//! live runtime — guided by novelty tokens and an adjacency/score
//! gradient, in three scenario families:
//!
//! * [`heap-groom`] — Heelan-style automatic heap-layout manipulation:
//!   grooming raw buffers and sprayed objects until a victim lands
//!   adjacent to an attacker buffer, then overflowing a fake function
//!   pointer into the victim's believed field offset;
//! * [`misaligned-probe`] — RUMA-style misaligned overlapping reads:
//!   byte-granularity 8-byte loads walked across a vault object until
//!   one overlaps the secret field;
//! * [`type-confuse`] — TypePulse-style type confusion through the IR
//!   interpreter: the tape *is* the program input of
//!   [`crate::scenarios::type_confusion`], and the search discovers
//!   which store aliases the confused call site.
//!
//! Each campaign runs in three phases: **search** (evolve tapes against
//! per-execution runtime seeds), **minimize** (ddmin the shortest
//! success under its recorded seed), **evaluate** (replay the best tape
//! against fresh, disjoint seeds and report bypass/detection rates).
//! Everything is a pure function of `(scenario, mode, budget, seed)`:
//! two identical calls produce byte-identical [`CampaignReport`]s, which
//! is what lets `BENCH_security.json` be diffed and gated.

use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_fuzz::{Campaign, CampaignOptions, CampaignTarget, Feedback};
use polar_rng::{Rng, SplitMix64};
use polar_runtime::{ObjectRuntime, PolarRuntime, RuntimeError, ShardedRuntime};
use polar_simheap::Addr;

use crate::harness::{execute, prepare_module, AttackOutcome, Defense, ATTACK_VALUE};
use crate::scenarios;

/// The compile-time seed every static-OLR "binary" in the evaluation is
/// built with (the layouts are fixed once, like a shipped binary).
pub const STATIC_BINARY_SEED: u64 = 0xB1A5;

/// The defense modes the scorecard compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecMode {
    /// Unhardened: natural layouts, no detections.
    Native,
    /// Compile-time OLR: one fixed permutation per binary.
    StaticOlr,
    /// POLaR with detections armed.
    Polar,
    /// POLaR plus sim-heap placement randomization (shuffle buffers,
    /// guard gaps, arena offset entropy) — layout *and* addresses.
    PolarPlacement,
    /// Placement randomization alone on natural layouts — the isolating
    /// ablation for the layout/placement/both table (`tables --
    /// placement`). Not in [`SecMode::ALL`], so it stays out of the
    /// gated scorecard and its pins.
    PlacementOnly,
    /// POLaR with the stateless small-class path (virtual traps on —
    /// the runtime's small-class default).
    PolarStateless,
    /// The stateless permute-only ablation: derived layouts, no virtual
    /// traps (the original SPAM-style space/detection trade-off).
    StatelessNoTraps,
    /// POLaR on the sharded concurrent runtime facade.
    Sharded,
}

impl SecMode {
    /// Every mode, in scorecard order.
    pub const ALL: [SecMode; 7] = [
        SecMode::Native,
        SecMode::StaticOlr,
        SecMode::Polar,
        SecMode::PolarPlacement,
        SecMode::PolarStateless,
        SecMode::StatelessNoTraps,
        SecMode::Sharded,
    ];

    /// Display label (matches the `Defense` labels).
    pub fn label(self) -> &'static str {
        self.defense(0).label()
    }

    /// The harness [`Defense`] this mode maps to, seeded for one trial.
    pub fn defense(self, trial_seed: u64) -> Defense {
        match self {
            SecMode::Native => Defense::Native,
            SecMode::StaticOlr => Defense::StaticOlr { binary_seed: STATIC_BINARY_SEED },
            SecMode::Polar => Defense::polar(trial_seed),
            SecMode::PolarPlacement => Defense::polar_placement(trial_seed),
            SecMode::PlacementOnly => Defense::placement_only(trial_seed),
            SecMode::PolarStateless => Defense::polar_stateless(trial_seed),
            SecMode::StatelessNoTraps => Defense::polar_stateless_notraps(trial_seed),
            SecMode::Sharded => Defense::sharded(trial_seed),
        }
    }

    /// A fresh single-context runtime for one trial under this mode.
    fn runtime(self, trial_seed: u64) -> Box<dyn PolarRuntime> {
        let defense = self.defense(trial_seed);
        match defense {
            Defense::Sharded { shards, .. } => {
                Box::new(ShardedRuntime::new(defense.mode(), defense.config(), shards))
            }
            _ => Box::new(ObjectRuntime::new(defense.mode(), defense.config())),
        }
    }
}

/// Search/evaluation effort knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignBudget {
    /// Mutate → execute iterations in the search phase.
    pub search_execs: u64,
    /// Fresh-seed replays in the evaluation phase.
    pub eval_trials: u64,
}

impl CampaignBudget {
    /// The snapshot budget (what `BENCH_security.json` is built with).
    pub fn full() -> Self {
        CampaignBudget { search_execs: 800, eval_trials: 200 }
    }

    /// The CI smoke budget (what the regression gate runs).
    pub fn quick() -> Self {
        CampaignBudget { search_execs: 300, eval_trials: 64 }
    }
}

/// What one adaptive campaign concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Scenario name (one of [`SCENARIO_NAMES`]).
    pub scenario: &'static str,
    /// Defense mode evaluated.
    pub mode: SecMode,
    /// Search executions performed.
    pub search_execs: u64,
    /// Hijacks seen during the search phase itself.
    pub successes_during_search: u64,
    /// Length of the evaluated tape.
    pub tape_len: usize,
    /// Whether the evaluated tape came from a minimized success (`false`
    /// means the search never hijacked and the best-scoring tape was
    /// evaluated instead).
    pub minimized: bool,
    /// Evaluation replays performed.
    pub trials: u64,
    /// Replays that hijacked the victim pointer / recovered the secret.
    pub bypasses: u64,
    /// Replays terminated by a runtime detection.
    pub detections: u64,
}

impl CampaignReport {
    /// Fraction of evaluation replays that bypassed the defense.
    pub fn bypass_rate(&self) -> f64 {
        self.bypasses as f64 / self.trials.max(1) as f64
    }

    /// Fraction of evaluation replays the runtime detected.
    pub fn detection_rate(&self) -> f64 {
        self.detections as f64 / self.trials.max(1) as f64
    }
}

/// What one tape execution reported.
struct TapeRun {
    outcome: AttackOutcome,
    score: i64,
    tokens: Vec<u64>,
}

/// One attack family the adaptive search can run against every mode.
trait AdaptiveScenario {
    /// Hand-written starting tapes (plausible but non-winning openers).
    fn seed_tapes(&self) -> Vec<Vec<u8>>;
    /// Execute one tape against a fresh `mode` runtime seeded with
    /// `trial_seed`. Must be a pure function of its arguments.
    fn run_tape(&self, mode: SecMode, tape: &[u8], trial_seed: u64) -> TapeRun;
}

/// Token namespaces — high bits keep the different signal kinds from
/// colliding in the campaign's novelty set.
const TOK_OP: u64 = 1 << 32;
const TOK_ADJ: u64 = 2 << 32;
const TOK_OUTCOME: u64 = 3 << 32;
const TOK_PROBE: u64 = 4 << 32;

fn outcome_token(outcome: AttackOutcome) -> u64 {
    TOK_OUTCOME
        | match outcome {
            AttackOutcome::Hijacked => 0,
            AttackOutcome::Detected => 1,
            AttackOutcome::Crashed => 2,
            AttackOutcome::NoEffect => 3,
        }
}

fn classify_runtime_err(err: &RuntimeError) -> AttackOutcome {
    match err {
        RuntimeError::Heap(_) => AttackOutcome::Crashed,
        // UAF / mismatch / trap / double-free / unknown-object are all
        // the runtime regulating access — detections.
        _ => AttackOutcome::Detected,
    }
}

// ---------------------------------------------------------------------
// Scenario 1: heap grooming + linear overflow (Heelan-style).
// ---------------------------------------------------------------------

struct HeapGroom {
    victim: Arc<ClassInfo>,
    junk: Arc<ClassInfo>,
    /// Field index of the victim's function pointer.
    fp_field: usize,
    /// Its natural (source-visible) offset — the attacker's belief.
    fp_natural: u64,
}

impl HeapGroom {
    fn new() -> Self {
        let victim = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("GroomAccount")
                .field("id", FieldKind::I64)
                .field("balance", FieldKind::I64)
                .field("is_admin", FieldKind::I64)
                .field("on_update", FieldKind::FnPtr)
                .build(),
        ));
        let junk = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("GroomJunk")
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I64)
                .build(),
        ));
        let fp_natural = u64::from(victim.natural().offset(3));
        HeapGroom { victim, junk, fp_field: 3, fp_natural }
    }
}

/// Live attacker-owned raw buffer.
struct Buffer {
    addr: Addr,
    size: u64,
}

impl AdaptiveScenario for HeapGroom {
    fn seed_tapes(&self) -> Vec<Vec<u8>> {
        // Alloc one buffer, place the victim, overflow at a guessed
        // distance. The attacker knows fields are 8-aligned, so the
        // guesses sweep aligned offsets around the natural pointer
        // position; the search refines placement and distance from
        // there.
        let mut tapes: Vec<Vec<u8>> = (0..6u8)
            .map(|k| vec![0, 0, 3, 0, 4, 0, k * 8])
            .collect();
        tapes.push(vec![0, 16, 3, 0, 4, 0, self.fp_natural as u8]);
        tapes.push(vec![0, 0, 1, 0, 3, 0, 4, 0, self.fp_natural as u8]);
        tapes
    }

    fn run_tape(&self, mode: SecMode, tape: &[u8], trial_seed: u64) -> TapeRun {
        let mut rt = mode.runtime(trial_seed);
        let mut tokens = Vec::new();
        let mut buffers: Vec<Buffer> = Vec::new();
        let mut sprays: Vec<Addr> = Vec::new();
        let mut victim: Option<Addr> = None;
        let mut early: Option<AttackOutcome> = None;
        let mut cursor = 0usize;
        let next = |cursor: &mut usize| -> u8 {
            let b = tape.get(*cursor).copied().unwrap_or(0);
            *cursor += 1;
            b
        };
        'vm: while cursor < tape.len() {
            let op = next(&mut cursor) % 5;
            tokens.push(TOK_OP | u64::from(op));
            let arg = next(&mut cursor);
            match op {
                // Allocate an attacker buffer (16..64 bytes).
                0 => {
                    if buffers.len() < 8 {
                        let size = 16 + u64::from(arg) % 49;
                        match rt.heap_malloc(size as usize) {
                            Ok(addr) => buffers.push(Buffer { addr, size }),
                            Err(_) => {
                                early = Some(AttackOutcome::Crashed);
                                break 'vm;
                            }
                        }
                    }
                }
                // Spray a junk object (perturbs allocator state).
                1 => {
                    if sprays.len() < 16 {
                        match rt.olr_malloc(&self.junk) {
                            Ok(addr) => sprays.push(addr),
                            Err(err) => {
                                early = Some(classify_runtime_err(&err));
                                break 'vm;
                            }
                        }
                    }
                }
                // Free an attacker buffer (creates a reusable hole).
                2 => {
                    if !buffers.is_empty() {
                        let i = usize::from(arg) % buffers.len();
                        let buf = buffers.swap_remove(i);
                        if rt.heap_free(buf.addr).is_err() {
                            early = Some(AttackOutcome::Crashed);
                            break 'vm;
                        }
                    }
                }
                // Place the victim (once) and initialize it legitimately.
                3 => {
                    if victim.is_none() {
                        let hash = self.victim.hash();
                        let placed = rt.olr_malloc(&self.victim).and_then(|v| {
                            rt.write_field(v, hash, 0, 7)?;
                            rt.write_field(v, hash, 1, 100)?;
                            rt.write_field(v, hash, self.fp_field, 0x1000)?;
                            Ok(v)
                        });
                        match placed {
                            Ok(v) => victim = Some(v),
                            Err(err) => {
                                early = Some(classify_runtime_err(&err));
                                break 'vm;
                            }
                        }
                    }
                }
                // The corruption primitive: linear overflow off a buffer's
                // end — `dist` filler bytes, then the fake pointer.
                _ => {
                    let dist = u64::from(next(&mut cursor));
                    if !buffers.is_empty() {
                        let i = usize::from(arg) % buffers.len();
                        let end = Addr(buffers[i].addr.0 + buffers[i].size);
                        let filler = vec![0x20u8; dist as usize];
                        let write = rt
                            .heap_write(end, &filler)
                            .and_then(|()| {
                                rt.heap_write_uint(Addr(end.0 + dist), ATTACK_VALUE, 8)
                            });
                        if write.is_err() {
                            early = Some(AttackOutcome::Crashed);
                            break 'vm;
                        }
                        tokens.push(TOK_PROBE | dist);
                    }
                }
            }
        }
        // Adjacency gradient: how close the victim sits to a live
        // buffer's end (what the grooming is trying to minimize).
        let mut score = 0i64;
        if let Some(v) = victim {
            if let Some(gap) = buffers
                .iter()
                .map(|b| v.0.abs_diff(b.addr.0 + b.size))
                .min()
            {
                let gap = gap.min(400);
                score += 400 - gap as i64;
                tokens.push(TOK_ADJ | gap / 16);
            }
        }
        // The trigger: the program "calls" the victim's pointer.
        let mut outcome = early.unwrap_or(AttackOutcome::NoEffect);
        if early.is_none() {
            if let Some(v) = victim {
                match rt.read_field(v, self.victim.hash(), self.fp_field) {
                    Ok(fp) if fp == ATTACK_VALUE => outcome = AttackOutcome::Hijacked,
                    Ok(_) => {}
                    Err(err) => outcome = classify_runtime_err(&err),
                }
                // Teardown frees sweep booby traps: a corrupted dummy is
                // caught here even when the pointer write missed.
                if outcome != AttackOutcome::Hijacked {
                    if let Err(err) = rt.olr_free(v) {
                        outcome = classify_runtime_err(&err);
                    }
                }
            }
            if outcome == AttackOutcome::NoEffect {
                for s in sprays {
                    if let Err(err) = rt.olr_free(s) {
                        outcome = classify_runtime_err(&err);
                        break;
                    }
                }
            }
        }
        if outcome == AttackOutcome::Hijacked {
            score += 10_000;
        }
        tokens.push(outcome_token(outcome));
        TapeRun { outcome, score, tokens }
    }
}

// ---------------------------------------------------------------------
// Scenario 2: RUMA-style misaligned overlapping reads.
// ---------------------------------------------------------------------

struct MisalignedProbe {
    vault: Arc<ClassInfo>,
    junk: Arc<ClassInfo>,
}

/// How many probe reads one tape may perform (the leak primitive is
/// assumed rate-limited, as in RUMA's remote setting).
const PROBE_CAP: usize = 3;

/// Probe window past the vault base, in bytes.
const PROBE_WINDOW: u64 = 40;

impl MisalignedProbe {
    fn new() -> Self {
        // Four 8-byte fields: small enough for the stateless path, so
        // this scenario exercises keyed permutation without dummies.
        let vault = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("ProbeVault")
                .field("owner", FieldKind::I64)
                .field("nonce", FieldKind::I64)
                .field("secret", FieldKind::I64)
                .field("tag", FieldKind::I64)
                .build(),
        ));
        let junk = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("ProbeJunk")
                .field("x", FieldKind::I64)
                .field("y", FieldKind::I64)
                .build(),
        ));
        MisalignedProbe { vault, junk }
    }

    /// The secret value for one trial — odd, so zeroed memory can never
    /// false-positive the oracle.
    fn secret(trial_seed: u64) -> u64 {
        SplitMix64::stream(trial_seed ^ 0x5EC2_E700, 1).next_u64() | 1
    }
}

impl AdaptiveScenario for MisalignedProbe {
    fn seed_tapes(&self) -> Vec<Vec<u8>> {
        // Place the vault, probe the natural secret offset and a
        // misaligned neighbor.
        let natural = self.vault.natural().offset(2) as u8;
        vec![
            vec![1, 0, 2, natural],
            vec![1, 0, 2, natural.wrapping_add(3), 2, 0],
            vec![0, 0, 1, 0, 2, 8],
        ]
    }

    fn run_tape(&self, mode: SecMode, tape: &[u8], trial_seed: u64) -> TapeRun {
        let mut rt = mode.runtime(trial_seed);
        let secret = Self::secret(trial_seed);
        let mut tokens = Vec::new();
        let mut vault: Option<Addr> = None;
        let mut noise: Vec<Addr> = Vec::new();
        let mut probes = 0usize;
        let mut recovered = false;
        let mut early: Option<AttackOutcome> = None;
        let mut score = 0i64;
        let mut cursor = 0usize;
        'vm: while cursor + 1 < tape.len() || cursor < tape.len() {
            let op = tape[cursor] % 3;
            let arg = tape.get(cursor + 1).copied().unwrap_or(0);
            cursor += 2;
            tokens.push(TOK_OP | u64::from(op));
            match op {
                // Noise allocation.
                0 => {
                    if noise.len() < 16 {
                        match rt.olr_malloc(&self.junk) {
                            Ok(addr) => noise.push(addr),
                            Err(err) => {
                                early = Some(classify_runtime_err(&err));
                                break 'vm;
                            }
                        }
                    }
                }
                // Place the vault (once), fields written legitimately.
                1 => {
                    if vault.is_none() {
                        let hash = self.vault.hash();
                        let placed = rt.olr_malloc(&self.vault).and_then(|v| {
                            rt.write_field(v, hash, 0, 1)?;
                            rt.write_field(v, hash, 1, 2)?;
                            rt.write_field(v, hash, 2, secret)?;
                            rt.write_field(v, hash, 3, 3)?;
                            Ok(v)
                        });
                        match placed {
                            Ok(v) => vault = Some(v),
                            Err(err) => {
                                early = Some(classify_runtime_err(&err));
                                break 'vm;
                            }
                        }
                    }
                }
                // The leak primitive: a raw (possibly misaligned,
                // possibly overlapping) 8-byte read near the vault.
                _ => {
                    if let Some(v) = vault {
                        if probes < PROBE_CAP {
                            probes += 1;
                            let off = u64::from(arg) % PROBE_WINDOW;
                            tokens.push(TOK_PROBE | off);
                            // Probe reads go through the trap-screened
                            // path: a read overlapping a booby-trap slot
                            // (stored or stateless-derived) is a
                            // detection, not a silent leak.
                            match rt.probe_read_uint(Addr(v.0 + off), 8) {
                                Ok(value) => {
                                    if value == secret {
                                        recovered = true;
                                    } else if value != 0 {
                                        // Touched *something* — weak
                                        // gradient toward live data.
                                        score += 5;
                                    }
                                }
                                Err(err) => {
                                    early = Some(classify_runtime_err(&err));
                                    break 'vm;
                                }
                            }
                        }
                    }
                }
            }
        }
        let outcome = early.unwrap_or(if recovered {
            AttackOutcome::Hijacked
        } else {
            AttackOutcome::NoEffect
        });
        if outcome == AttackOutcome::Hijacked {
            score += 10_000;
        }
        tokens.push(outcome_token(outcome));
        TapeRun { outcome, score, tokens }
    }
}

// ---------------------------------------------------------------------
// Scenario 3: type confusion through the IR interpreter.
// ---------------------------------------------------------------------

struct TypeConfuse {
    scenario: scenarios::Scenario,
}

impl TypeConfuse {
    fn new() -> Self {
        TypeConfuse { scenario: scenarios::type_confusion() }
    }
}

impl AdaptiveScenario for TypeConfuse {
    fn seed_tapes(&self) -> Vec<Vec<u8>> {
        // The attacker value with three different field selectors; none
        // is guaranteed right under a permuted layout.
        let mut tapes = Vec::new();
        for k in [0u8, 1, 2] {
            let mut t = ATTACK_VALUE.to_le_bytes().to_vec();
            t.extend([k, 0]);
            tapes.push(t);
        }
        tapes
    }

    fn run_tape(&self, mode: SecMode, tape: &[u8], trial_seed: u64) -> TapeRun {
        let defense = mode.defense(trial_seed);
        let module = prepare_module(&self.scenario, &defense);
        // The tape is the program's input; pad to the header the
        // scenario parses.
        let mut input = tape.to_vec();
        if input.len() < 10 {
            input.resize(10, 0);
        }
        let report = execute(&module, &defense, &input);
        let outcome = AttackOutcome::classify(&report);
        let mut tokens = vec![
            outcome_token(outcome),
            TOK_PROBE | u64::from(input[8]),
        ];
        let mut score = 0i64;
        if let Some(&out) = report.output.first() {
            // Any nonzero, non-legitimate value reaching the call site is
            // progress toward aliasing the pointer field.
            tokens.push(TOK_ADJ | (out & 0xFF));
            if out != 0 && out != 0x1000 {
                score += 100;
            }
        }
        if outcome == AttackOutcome::Hijacked {
            score += 10_000;
        }
        TapeRun { outcome, score, tokens }
    }
}

// ---------------------------------------------------------------------
// Scenario 4: placement prediction (pure inter-object distance).
// ---------------------------------------------------------------------

/// The distance-prediction scenario: the attacker grooms the allocator,
/// then allocates two fresh buffers and bets on the exact byte distance
/// between them. No memory is ever corrupted — the "hijack" is a correct
/// prediction, which is precisely the allocator-determinism primitive
/// Heelan-style grooming builds on. Layout randomization (intra-object)
/// does nothing here; only *placement* randomization moves the score.
struct PlaceGroom {
    junk: Arc<ClassInfo>,
}

/// Buffer size the predictor allocates (one size class, no rounding
/// ambiguity in the predicted delta).
const PLACE_BUF: usize = 32;

impl PlaceGroom {
    fn new() -> Self {
        let junk = Arc::new(ClassInfo::from_decl(
            ClassDecl::builder("PlaceJunk")
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I64)
                .build(),
        ));
        PlaceGroom { junk }
    }
}

impl AdaptiveScenario for PlaceGroom {
    fn seed_tapes(&self) -> Vec<Vec<u8>> {
        // Predict the bump-allocator distance (delta == PLACE_BUF) cold,
        // after a groom, and after punching a hole.
        let d = PLACE_BUF as u8;
        vec![
            vec![3, d, 0],
            vec![0, 0, 0, 0, 3, d, 0],
            vec![0, 0, 1, 0, 2, 0, 3, d, 0],
        ]
    }

    fn run_tape(&self, mode: SecMode, tape: &[u8], trial_seed: u64) -> TapeRun {
        let mut rt = mode.runtime(trial_seed);
        let mut tokens = Vec::new();
        let mut buffers: Vec<Addr> = Vec::new();
        let mut sprays: Vec<Addr> = Vec::new();
        let mut predicted: Option<(u64, u64)> = None; // (guess, actual)
        let mut early: Option<AttackOutcome> = None;
        let mut cursor = 0usize;
        let next = |cursor: &mut usize| -> u8 {
            let b = tape.get(*cursor).copied().unwrap_or(0);
            *cursor += 1;
            b
        };
        'vm: while cursor < tape.len() {
            let op = next(&mut cursor) % 4;
            tokens.push(TOK_OP | u64::from(op));
            let arg = next(&mut cursor);
            match op {
                // Groom: allocate a raw buffer.
                0 => {
                    if buffers.len() < 12 {
                        match rt.heap_malloc(PLACE_BUF) {
                            Ok(addr) => buffers.push(addr),
                            Err(_) => {
                                early = Some(AttackOutcome::Crashed);
                                break 'vm;
                            }
                        }
                    }
                }
                // Groom: punch a hole.
                1 => {
                    if !buffers.is_empty() {
                        let i = usize::from(arg) % buffers.len();
                        let addr = buffers.swap_remove(i);
                        if rt.heap_free(addr).is_err() {
                            early = Some(AttackOutcome::Crashed);
                            break 'vm;
                        }
                    }
                }
                // Groom: spray a managed object (perturbs the same pools).
                2 => {
                    if sprays.len() < 8 {
                        match rt.olr_malloc(&self.junk) {
                            Ok(addr) => sprays.push(addr),
                            Err(err) => {
                                early = Some(classify_runtime_err(&err));
                                break 'vm;
                            }
                        }
                    }
                }
                // The bet (once): allocate two fresh buffers, predict
                // their signed byte distance. `arg` is the guess's low
                // byte; the next tape byte is its high byte, and the
                // guess is sign-extended from 16 bits so the search can
                // bet on reuse *below* the second allocation too.
                _ => {
                    if predicted.is_none() {
                        let hi = next(&mut cursor);
                        let guess = i64::from(i16::from_le_bytes([arg, hi])) as u64;
                        let pair = rt
                            .heap_malloc(PLACE_BUF)
                            .and_then(|a| rt.heap_malloc(PLACE_BUF).map(|b| (a, b)));
                        match pair {
                            Ok((a, b)) => {
                                let actual = b.0.wrapping_sub(a.0);
                                predicted = Some((guess, actual));
                                tokens.push(TOK_PROBE | (guess & 0xFFFF));
                            }
                            Err(_) => {
                                early = Some(AttackOutcome::Crashed);
                                break 'vm;
                            }
                        }
                    }
                }
            }
        }
        // Distance gradient: how close the bet came, in bytes.
        let mut score = 0i64;
        let mut outcome = early.unwrap_or(AttackOutcome::NoEffect);
        if early.is_none() {
            if let Some((guess, actual)) = predicted {
                let miss = guess.abs_diff(actual).min(400);
                score += 400 - miss as i64;
                tokens.push(TOK_ADJ | miss / 16);
                if guess == actual {
                    outcome = AttackOutcome::Hijacked;
                }
            }
        }
        if outcome == AttackOutcome::Hijacked {
            score += 10_000;
        }
        tokens.push(outcome_token(outcome));
        TapeRun { outcome, score, tokens }
    }
}

// ---------------------------------------------------------------------
// The campaign driver.
// ---------------------------------------------------------------------

/// Scenario names, in scorecard order.
pub const SCENARIO_NAMES: [&str; 4] =
    ["heap-groom", "misaligned-probe", "type-confuse", "place-groom"];

fn scenario_by_name(name: &str) -> Box<dyn AdaptiveScenario> {
    match name {
        "heap-groom" => Box::new(HeapGroom::new()),
        "misaligned-probe" => Box::new(MisalignedProbe::new()),
        "type-confuse" => Box::new(TypeConfuse::new()),
        "place-groom" => Box::new(PlaceGroom::new()),
        other => panic!("unknown adaptive scenario {other:?}"),
    }
}

/// FNV-1a, used to salt the root seed per (scenario, mode) so campaigns
/// never share RNG streams.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Disjoint SplitMix64 stream indices per phase.
const SEARCH_STREAM: u64 = 1;
const EVAL_STREAM: u64 = 2;

/// The [`CampaignTarget`] adapter: one scenario under one mode, each
/// execution drawing a fresh trial seed from the search stream.
struct Driver {
    scenario: Box<dyn AdaptiveScenario>,
    mode: SecMode,
    rng: SplitMix64,
    /// Shortest hijacking tape plus the trial seed it hijacked under
    /// (minimization replays need the exact seed).
    best_success: Option<(Vec<u8>, u64)>,
}

impl CampaignTarget for Driver {
    fn execute(&mut self, tape: &[u8]) -> Feedback {
        let trial_seed = self.rng.next_u64();
        let run = self.scenario.run_tape(self.mode, tape, trial_seed);
        let success = run.outcome == AttackOutcome::Hijacked;
        if success
            && self
                .best_success
                .as_ref()
                .is_none_or(|(t, _)| tape.len() < t.len())
        {
            self.best_success = Some((tape.to_vec(), trial_seed));
        }
        Feedback { tokens: run.tokens, score: run.score, success }
    }
}

/// Run one full adaptive campaign: search, minimize, evaluate.
///
/// Deterministic: the report is a pure function of the four arguments.
///
/// # Panics
///
/// Panics when `scenario` is not one of [`SCENARIO_NAMES`].
pub fn run_campaign(
    scenario: &str,
    mode: SecMode,
    budget: CampaignBudget,
    root_seed: u64,
) -> CampaignReport {
    let root = root_seed ^ fnv1a(scenario) ^ fnv1a(mode.label()).rotate_left(17);
    let driver = Driver {
        scenario: scenario_by_name(scenario),
        mode,
        rng: SplitMix64::stream(root, SEARCH_STREAM),
        best_success: None,
    };
    let mut campaign = Campaign::new(driver, CampaignOptions { seed: root, max_tape_len: 96 });
    for tape in campaign.target().scenario.seed_tapes() {
        campaign.seed_tape(tape);
    }
    campaign.run(budget.search_execs);
    let successes_during_search = campaign.stats().successes;

    // Minimize the shortest success under its recorded trial seed (the
    // predicate must be deterministic for ddmin to converge).
    let mut minimized = false;
    if campaign.target().best_success.is_some() {
        campaign.minimize_success(|driver, candidate| {
            let seed = driver.best_success.as_ref().expect("success recorded").1;
            driver.scenario.run_tape(driver.mode, candidate, seed).outcome
                == AttackOutcome::Hijacked
        });
        minimized = true;
    }

    // Evaluate the best tape against fresh seeds the search never saw.
    let tape: Vec<u8> = campaign
        .best_success()
        .or(campaign.best_tape())
        .unwrap_or(&[])
        .to_vec();
    let driver = campaign.into_target();
    let mut eval_rng = SplitMix64::stream(root, EVAL_STREAM);
    let mut bypasses = 0u64;
    let mut detections = 0u64;
    for _ in 0..budget.eval_trials {
        let trial_seed = eval_rng.next_u64();
        match driver.scenario.run_tape(mode, &tape, trial_seed).outcome {
            AttackOutcome::Hijacked => bypasses += 1,
            AttackOutcome::Detected => detections += 1,
            _ => {}
        }
    }
    CampaignReport {
        scenario: SCENARIO_NAMES
            .iter()
            .find(|n| **n == scenario)
            .expect("known scenario"),
        mode,
        search_execs: budget.search_execs,
        successes_during_search,
        tape_len: tape.len(),
        minimized,
        trials: budget.eval_trials,
        bypasses,
        detections,
    }
}

/// The full scorecard: every scenario × every mode.
pub fn scorecard(budget: CampaignBudget, root_seed: u64) -> Vec<CampaignReport> {
    let mut reports = Vec::new();
    for scenario in SCENARIO_NAMES {
        for mode in SecMode::ALL {
            reports.push(run_campaign(scenario, mode, budget, root_seed));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SecMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), SecMode::ALL.len());
    }

    #[test]
    fn native_groom_is_searchable_and_fully_replayable() {
        let report = run_campaign(
            "heap-groom",
            SecMode::Native,
            CampaignBudget::quick(),
            0xDEC0DE,
        );
        assert!(report.successes_during_search > 0, "{report:?}");
        assert!(report.bypass_rate() > 0.9, "{report:?}");
    }

    #[test]
    fn polar_resists_the_adaptive_groomer() {
        let native = run_campaign(
            "heap-groom",
            SecMode::Native,
            CampaignBudget::quick(),
            0xDEC0DE,
        );
        let polar = run_campaign(
            "heap-groom",
            SecMode::Polar,
            CampaignBudget::quick(),
            0xDEC0DE,
        );
        assert!(
            polar.bypass_rate() < native.bypass_rate(),
            "polar {polar:?} vs native {native:?}"
        );
        assert!(polar.bypass_rate() < 0.5, "{polar:?}");
    }

    #[test]
    fn placement_breaks_the_distance_predictor() {
        let native = run_campaign(
            "place-groom",
            SecMode::Native,
            CampaignBudget::quick(),
            0xDEC0DE,
        );
        let placed = run_campaign(
            "place-groom",
            SecMode::PolarPlacement,
            CampaignBudget::quick(),
            0xDEC0DE,
        );
        // The deterministic allocator is fully predictable; layout-only
        // modes share that fate (addresses are untouched), and placement
        // is what breaks the bet.
        assert!(native.bypass_rate() > 0.9, "{native:?}");
        assert!(
            placed.bypass_rate() < 0.5,
            "placement should randomize inter-object distance: {placed:?}"
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        for scenario in SCENARIO_NAMES {
            let a = run_campaign(scenario, SecMode::Polar, CampaignBudget::quick(), 7);
            let b = run_campaign(scenario, SecMode::Polar, CampaignBudget::quick(), 7);
            assert_eq!(a, b, "{scenario} diverged across identical runs");
        }
    }

    #[test]
    fn confusion_is_detected_by_polar_and_stateless() {
        for mode in [SecMode::Polar, SecMode::PolarStateless, SecMode::Sharded] {
            let report =
                run_campaign("type-confuse", mode, CampaignBudget::quick(), 11);
            assert!(
                report.detection_rate() > 0.5,
                "{} should detect confusion: {report:?}",
                mode.label()
            );
        }
    }
}
