//! The Figure 2 experiment: layout diversity across instances and
//! executions.
//!
//! Figure 2 of the paper contrasts OLR and POLaR visually: under
//! compile-time OLR every instance of a type shares one (per-binary)
//! layout that survives re-execution; under POLaR every allocation draws
//! its own. This module measures exactly that.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_layout::{PlanHash, StatelessPolicy};
use polar_runtime::{ObjectRuntime, PoolPolicy, RandomizeMode, RuntimeConfig};

use crate::harness::Defense;

/// Diversity measurements for one defense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiversityReport {
    /// Defense label.
    pub defense: &'static str,
    /// Instances allocated per execution.
    pub instances: usize,
    /// Distinct layouts among one execution's instances.
    pub distinct_within_run: usize,
    /// Distinct layouts across two executions (union).
    pub distinct_across_runs: usize,
    /// Whether execution 2 reproduced execution 1's layouts exactly.
    pub identical_across_runs: bool,
}

impl fmt::Display for DiversityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>4} instances: {:>4} layouts/run, {:>4} across runs, replay {}",
            self.defense,
            self.instances,
            self.distinct_within_run,
            self.distinct_across_runs,
            if self.identical_across_runs { "identical" } else { "differs" },
        )
    }
}

/// The People-like probe class used for the measurement.
pub fn probe_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Probe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I64)
            .field("c", FieldKind::I32)
            .field("d", FieldKind::I32)
            .field("next", FieldKind::Ptr)
            .build(),
    ))
}

fn layouts_of_run(defense: &Defense, run: u64, instances: usize) -> Vec<PlanHash> {
    let info = probe_class();
    let (mode, mut config) = match defense {
        Defense::Native | Defense::Redzone | Defense::PlacementOnly { .. } => {
            (RandomizeMode::Native, RuntimeConfig::default())
        }
        Defense::StaticOlr { binary_seed } => {
            (RandomizeMode::static_olr(*binary_seed), RuntimeConfig::default())
        }
        Defense::Polar { process_seed, .. }
        | Defense::PolarPlacement { process_seed }
        | Defense::PolarStateless { process_seed, .. }
        | Defense::Sharded { process_seed, .. } => {
            let mut c = RuntimeConfig::default();
            // Fresh process entropy per execution.
            c.seed = process_seed ^ (run.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            // Mirror the harness configs: stateful plans for polar and
            // sharded, derived plans (traps per variant) for stateless.
            c.stateless = match defense {
                Defense::PolarStateless { traps: true, .. } => StatelessPolicy::on(),
                Defense::PolarStateless { traps: false, .. } => StatelessPolicy::permute_only(),
                _ => StatelessPolicy::off(),
            };
            (RandomizeMode::per_allocation(), c)
        }
    };
    config.heap.capacity = 256 << 20;
    let mut rt = ObjectRuntime::new(mode, config);
    (0..instances)
        .map(|_| match defense {
            // Compile-time layouts: what the binary bakes in.
            Defense::Native
            | Defense::Redzone
            | Defense::PlacementOnly { .. }
            | Defense::StaticOlr { .. } => rt.compile_time_plan(&info).plan_hash(),
            // POLaR: one metadata record per allocation.
            Defense::Polar { .. }
            | Defense::PolarPlacement { .. }
            | Defense::PolarStateless { .. }
            | Defense::Sharded { .. } => {
                let base = rt.olr_malloc(&info).expect("alloc");
                rt.object_meta(base).expect("meta").plan.plan_hash()
            }
        })
        .collect()
}

/// Measure layout diversity for `defense` over two simulated executions
/// of `instances` allocations each.
pub fn measure(defense: Defense, instances: usize) -> DiversityReport {
    let run1 = layouts_of_run(&defense, 1, instances);
    let run2 = layouts_of_run(&defense, 2, instances);
    let within: HashSet<PlanHash> = run1.iter().copied().collect();
    let mut across = within.clone();
    across.extend(run2.iter().copied());
    DiversityReport {
        defense: defense.label(),
        instances,
        distinct_within_run: within.len(),
        distinct_across_runs: across.len(),
        identical_across_runs: run1 == run2,
    }
}

/// Probability that two consecutive same-class allocations share a
/// layout, estimated over `pairs` adjacent allocation pairs.
///
/// Plan pooling makes POLaR's per-allocation guarantee explicitly
/// probabilistic: a sampled pool of `K` interned plans shares between
/// neighbours at rate ≈ `1/K`
/// ([`PoolPolicy::expected_consecutive_share`]), against ~0 for
/// unpooled draws and 1 for static OLR. The estimator warms the pool
/// past its fill phase first so the rate reflects the steady state the
/// policy configures.
pub fn consecutive_share_rate(seed: u64, pool: PoolPolicy, pairs: usize) -> f64 {
    assert!(pairs > 0, "need at least one pair");
    let info = probe_class();
    let mut config = RuntimeConfig::default();
    config.seed = seed;
    config.pool = pool;
    // This estimator characterizes the *stored-plan pool*; the stateless
    // derived path never consults it, so pin it off.
    config.stateless = StatelessPolicy::off();
    config.heap.capacity = 256 << 20;
    let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
    for _ in 0..2 * pool.size.max(1) {
        let a = rt.olr_malloc(&info).expect("alloc");
        rt.olr_free(a).expect("free");
    }
    let mut prev: Option<PlanHash> = None;
    let mut shared = 0usize;
    for _ in 0..=pairs {
        let base = rt.olr_malloc(&info).expect("alloc");
        let hash = rt.object_meta(base).expect("meta").plan.plan_hash();
        rt.olr_free(base).expect("free");
        if prev == Some(hash) {
            shared += 1;
        }
        prev = Some(hash);
    }
    shared as f64 / pairs as f64
}

/// The full Figure 2 comparison: native vs static OLR vs POLaR.
pub fn figure2(instances: usize) -> Vec<DiversityReport> {
    vec![
        measure(Defense::Native, instances),
        measure(Defense::StaticOlr { binary_seed: 0xB1A5 }, instances),
        measure(Defense::polar(0x5EED), instances),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_has_one_layout_everywhere() {
        let r = measure(Defense::Native, 64);
        assert_eq!(r.distinct_within_run, 1);
        assert_eq!(r.distinct_across_runs, 1);
        assert!(r.identical_across_runs);
    }

    #[test]
    fn static_olr_is_per_binary_and_replayable() {
        let r = measure(Defense::StaticOlr { binary_seed: 9 }, 64);
        assert_eq!(r.distinct_within_run, 1, "one layout per class per binary");
        assert!(r.identical_across_runs, "re-execution reproduces the layout");
        // Different binaries diversify.
        let other = measure(Defense::StaticOlr { binary_seed: 10 }, 64);
        let _ = other; // (hashes live in separate runtimes; diversity across
                       // binaries is asserted in polar-layout's tests)
    }

    #[test]
    fn polar_diversifies_within_and_across_runs() {
        let r = measure(Defense::polar(1), 64);
        assert!(
            r.distinct_within_run > 16,
            "per-allocation randomization: {} distinct layouts",
            r.distinct_within_run
        );
        assert!(!r.identical_across_runs);
        assert!(r.distinct_across_runs > r.distinct_within_run / 2);
    }

    #[test]
    fn consecutive_share_matches_the_default_pool_policy() {
        // Diversity regression for the allocation fast path: pooling may
        // only dilute per-allocation diversity to the configured rate
        // (~1/32 for the default sampled pool), not collapse it.
        let pool = PoolPolicy::default();
        let expect = pool.expected_consecutive_share();
        let rate = consecutive_share_rate(0xD1CE, pool, 4000);
        assert!(
            rate > expect * 0.3 && rate < expect * 3.0,
            "consecutive-share rate {rate:.4} far from configured {expect:.4}"
        );
    }

    #[test]
    fn disabling_the_pool_restores_full_per_allocation_diversity() {
        let rate = consecutive_share_rate(7, PoolPolicy::disabled(), 2000);
        assert!(rate < 0.01, "unpooled consecutive-share rate {rate:.4} should be ~0");
    }

    #[test]
    fn degenerate_single_plan_pool_shares_almost_always() {
        // The other extreme pins the estimator's sign: a size-1 sampled
        // pool behaves like static OLR between churn points.
        let rate = consecutive_share_rate(3, PoolPolicy::sampled(1, 8), 500);
        assert!(rate > 0.8, "size-1 pool consecutive-share rate {rate:.4} should be ~1");
    }

    #[test]
    fn figure2_orders_the_three_defenses() {
        let rows = figure2(32);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].distinct_within_run <= rows[1].distinct_within_run);
        assert!(rows[1].distinct_within_run < rows[2].distinct_within_run);
    }
}
