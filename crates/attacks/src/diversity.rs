//! The Figure 2 experiment: layout diversity across instances and
//! executions.
//!
//! Figure 2 of the paper contrasts OLR and POLaR visually: under
//! compile-time OLR every instance of a type shares one (per-binary)
//! layout that survives re-execution; under POLaR every allocation draws
//! its own. This module measures exactly that.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_layout::PlanHash;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

use crate::harness::Defense;

/// Diversity measurements for one defense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiversityReport {
    /// Defense label.
    pub defense: &'static str,
    /// Instances allocated per execution.
    pub instances: usize,
    /// Distinct layouts among one execution's instances.
    pub distinct_within_run: usize,
    /// Distinct layouts across two executions (union).
    pub distinct_across_runs: usize,
    /// Whether execution 2 reproduced execution 1's layouts exactly.
    pub identical_across_runs: bool,
}

impl fmt::Display for DiversityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>4} instances: {:>4} layouts/run, {:>4} across runs, replay {}",
            self.defense,
            self.instances,
            self.distinct_within_run,
            self.distinct_across_runs,
            if self.identical_across_runs { "identical" } else { "differs" },
        )
    }
}

/// The People-like probe class used for the measurement.
pub fn probe_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Probe")
            .field("vtable", FieldKind::VtablePtr)
            .field("a", FieldKind::I64)
            .field("b", FieldKind::I64)
            .field("c", FieldKind::I32)
            .field("d", FieldKind::I32)
            .field("next", FieldKind::Ptr)
            .build(),
    ))
}

fn layouts_of_run(defense: &Defense, run: u64, instances: usize) -> Vec<PlanHash> {
    let info = probe_class();
    let (mode, mut config) = match defense {
        Defense::Native | Defense::Redzone => (RandomizeMode::Native, RuntimeConfig::default()),
        Defense::StaticOlr { binary_seed } => {
            (RandomizeMode::static_olr(*binary_seed), RuntimeConfig::default())
        }
        Defense::Polar { process_seed, .. } => {
            let mut c = RuntimeConfig::default();
            // Fresh process entropy per execution.
            c.seed = process_seed ^ (run.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            (RandomizeMode::per_allocation(), c)
        }
    };
    config.heap.capacity = 256 << 20;
    let mut rt = ObjectRuntime::new(mode, config);
    (0..instances)
        .map(|_| match defense {
            // Compile-time layouts: what the binary bakes in.
            Defense::Native | Defense::Redzone | Defense::StaticOlr { .. } => {
                rt.compile_time_plan(&info).plan_hash()
            }
            // POLaR: one metadata record per allocation.
            Defense::Polar { .. } => {
                let base = rt.olr_malloc(&info).expect("alloc");
                rt.object_meta(base).expect("meta").plan.plan_hash()
            }
        })
        .collect()
}

/// Measure layout diversity for `defense` over two simulated executions
/// of `instances` allocations each.
pub fn measure(defense: Defense, instances: usize) -> DiversityReport {
    let run1 = layouts_of_run(&defense, 1, instances);
    let run2 = layouts_of_run(&defense, 2, instances);
    let within: HashSet<PlanHash> = run1.iter().copied().collect();
    let mut across = within.clone();
    across.extend(run2.iter().copied());
    DiversityReport {
        defense: defense.label(),
        instances,
        distinct_within_run: within.len(),
        distinct_across_runs: across.len(),
        identical_across_runs: run1 == run2,
    }
}

/// The full Figure 2 comparison: native vs static OLR vs POLaR.
pub fn figure2(instances: usize) -> Vec<DiversityReport> {
    vec![
        measure(Defense::Native, instances),
        measure(Defense::StaticOlr { binary_seed: 0xB1A5 }, instances),
        measure(Defense::polar(0x5EED), instances),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_has_one_layout_everywhere() {
        let r = measure(Defense::Native, 64);
        assert_eq!(r.distinct_within_run, 1);
        assert_eq!(r.distinct_across_runs, 1);
        assert!(r.identical_across_runs);
    }

    #[test]
    fn static_olr_is_per_binary_and_replayable() {
        let r = measure(Defense::StaticOlr { binary_seed: 9 }, 64);
        assert_eq!(r.distinct_within_run, 1, "one layout per class per binary");
        assert!(r.identical_across_runs, "re-execution reproduces the layout");
        // Different binaries diversify.
        let other = measure(Defense::StaticOlr { binary_seed: 10 }, 64);
        let _ = other; // (hashes live in separate runtimes; diversity across
                       // binaries is asserted in polar-layout's tests)
    }

    #[test]
    fn polar_diversifies_within_and_across_runs() {
        let r = measure(Defense::polar(1), 64);
        assert!(
            r.distinct_within_run > 16,
            "per-allocation randomization: {} distinct layouts",
            r.distinct_within_run
        );
        assert!(!r.identical_across_runs);
        assert!(r.distinct_across_runs > r.distinct_within_run / 2);
    }

    #[test]
    fn figure2_orders_the_three_defenses() {
        let rows = figure2(32);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].distinct_within_run <= rows[1].distinct_within_run);
        assert!(rows[1].distinct_within_run < rows[2].distinct_within_run);
    }
}
