//! The six minipng CVEs: crafted exploits and the Table IV comparison.
//!
//! For each planted CVE this module carries the exploit input a
//! binary-aware attacker would send against the *native* build, a
//! success predicate, and the TaintClass-vs-ground-truth check of the
//! paper's Table IV ("TaintClass successfully included all the objects
//! that we discovered by manually analyzing the exploitation").

use std::collections::BTreeSet;
use std::fmt;

use polar_instrument::{instrument, InstrumentOptions};
use polar_ir::interp::{run_with_mode, ExecLimits, ExecReport};
use polar_runtime::{RandomizeMode, RuntimeConfig};
use polar_taint::{analyze_corpus, TaintConfig};
use polar_workloads::minipng::{self, build, file, safe_input, CveInfo, COLOR16_SECRET};

/// Craft the exploit input for a CVE id (natural-layout targeting — what
/// a binary-aware attacker computes against the unhardened build).
///
/// # Panics
///
/// Panics on an unknown CVE id.
pub fn exploit_input(id: &str) -> Vec<u8> {
    match id {
        // `Z` before any header: info.row_buf is NULL.
        "CVE-2016-10087" => file(&[(b'Z', vec![])]),
        // 32 palette entries (96 bytes): bytes 88..96 land on
        // png_struct_def.row_fn (palette block 64 + natural offset 24).
        "CVE-2015-8126" => {
            let mut payload = vec![32u8];
            payload.extend(std::iter::repeat(0u8).take(96));
            for k in 0..8 {
                payload[1 + 88 + k] = 0x42;
            }
            file(&[(b'P', payload)])
        }
        // tIME with extra=40: the scratch string is 8 bytes in a 16-byte
        // block; the adjacent png_color16's `red` (natural offset 2)
        // leaks at positions 18/19.
        "CVE-2015-7981" => file(&[(b'M', vec![0, 0, 1, 1, 1, 0, 40])]),
        // Valid header (128-byte rows), then an IDAT-like chunk of 152
        // bytes: bytes 144..152 land on the adjacent victim's `size`
        // (row block 128 + natural offset 16).
        "CVE-2015-0973" => {
            let mut payload = vec![0u8; 152];
            for k in 144..152 {
                payload[k] = 0x42;
            }
            file(&[(b'H', vec![16, 0, 8, 0, 8, 0]), (b'O', payload)])
        }
        // width·depth = 512 but the allocation truncates to 0 (→ a
        // 16-byte block); a big unknown chunk extends the heap, then the
        // row copy writes 512 bytes: bytes 32..40 land on the victim's
        // `size` (row block 16 + natural offset 16).
        "CVE-2013-7353" => {
            let mut row = vec![0u8; 512];
            for k in 32..40 {
                row[k] = 0x42;
            }
            file(&[
                (b'H', vec![32, 0, 8, 0, 16, 0]),
                (b'U', vec![0u8; 600]),
                (b'R', row),
            ])
        }
        // 48-byte text chunk: bytes 40..48 land on png_text_struct.key
        // (text block 32 + natural offset 8).
        "CVE-2011-3048" => {
            let mut payload = vec![0u8; 48];
            for k in 40..48 {
                payload[k] = 0x42;
            }
            file(&[(b'T', payload)])
        }
        other => panic!("unknown CVE id {other}"),
    }
}

const ATTACK: u64 = 0x4242_4242_4242_4242;

/// Whether the exploit achieved its goal in this execution.
pub fn exploited(id: &str, report: &ExecReport) -> bool {
    match id {
        // Denial of service: the null dereference fired.
        "CVE-2016-10087" => report.crashed(),
        // Control-flow hijack: row_fn reads back the planted value.
        "CVE-2015-8126" => report.output.first() == Some(&ATTACK),
        // Information leak: the secret's bytes appear at the predicted
        // leak positions.
        "CVE-2015-7981" => {
            report.output.get(18) == Some(&(COLOR16_SECRET & 0xFF))
                && report.output.get(19) == Some(&(COLOR16_SECRET >> 8))
        }
        // Neighbour corruption: the victim's size field took the value.
        "CVE-2015-0973" | "CVE-2013-7353" => report.output.get(1) == Some(&ATTACK),
        // Neighbour corruption: the text object's untouched key pointer
        // took the value (output[2] for an input without H or M chunks).
        "CVE-2011-3048" => report.output.get(2) == Some(&ATTACK),
        other => panic!("unknown CVE id {other}"),
    }
}

/// Evaluation of one CVE under native and POLaR builds. The POLaR side is
/// probabilistic (per-execution layouts), so it is measured over several
/// process seeds.
#[derive(Debug, Clone)]
pub struct CveEvaluation {
    /// CVE metadata.
    pub info: CveInfo,
    /// Exploit succeeded against the native build (deterministic).
    pub native_exploited: bool,
    /// Fraction of POLaR executions the exploit succeeded in.
    pub polar_exploit_rate: f64,
    /// Fraction of POLaR executions ended by a detection.
    pub polar_detect_rate: f64,
    /// POLaR executions measured.
    pub polar_trials: u32,
}

impl CveEvaluation {
    /// Whether the exploit remains reliable against POLaR.
    pub fn polar_exploited(&self) -> bool {
        self.polar_exploit_rate >= 0.5
    }

    /// Whether POLaR detected at least one attempt.
    pub fn polar_detected(&self) -> bool {
        self.polar_detect_rate > 0.0
    }
}

impl fmt::Display for CveEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:<24} native: {:<9} polar: {:>3.0}% exploited, {:>3.0}% detected ({} runs)",
            self.info.id,
            self.info.kind,
            if self.native_exploited { "exploited" } else { "survived" },
            self.polar_exploit_rate * 100.0,
            self.polar_detect_rate * 100.0,
            self.polar_trials,
        )
    }
}

/// Run every CVE exploit against the native build (once — it is
/// deterministic) and the POLaR build (across `trials` process seeds
/// derived from `polar_seed`).
pub fn evaluate_all(polar_seed: u64) -> Vec<CveEvaluation> {
    const TRIALS: u32 = 12;
    let png = build();
    let (hardened, _) = instrument(&png.module, &InstrumentOptions::default());
    minipng::cve_catalog()
        .into_iter()
        .map(|info| {
            let input = exploit_input(info.id);
            let native = run_with_mode(
                &png.module,
                RandomizeMode::Native,
                RuntimeConfig::default(),
                &input,
                ExecLimits::default(),
            );
            let mut exploited_runs = 0u32;
            let mut detected_runs = 0u32;
            for t in 0..TRIALS {
                let mut config = RuntimeConfig::default();
                config.seed = polar_seed.wrapping_add(u64::from(t).wrapping_mul(0x9E37));
                let polar = run_with_mode(
                    &hardened,
                    RandomizeMode::per_allocation(),
                    config,
                    &input,
                    ExecLimits::default(),
                );
                if exploited(info.id, &polar) {
                    exploited_runs += 1;
                }
                if polar.detected() {
                    detected_runs += 1;
                }
            }
            CveEvaluation {
                native_exploited: exploited(info.id, &native),
                polar_exploit_rate: f64::from(exploited_runs) / f64::from(TRIALS),
                polar_detect_rate: f64::from(detected_runs) / f64::from(TRIALS),
                polar_trials: TRIALS,
                info,
            }
        })
        .collect()
}

/// One row of the reproduced Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// CVE metadata and ground-truth object list.
    pub info: CveInfo,
    /// Classes TaintClass discovered from the corpus.
    pub discovered: BTreeSet<String>,
    /// Whether every exploit-related class was discovered.
    pub covered: bool,
}

impl fmt::Display for Table4Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:<26} {} [{}]",
            self.info.id,
            self.info.kind,
            if self.covered { "all discovered" } else { "MISSED" },
            self.info.exploit_classes.join(", "),
        )
    }
}

/// Reproduce Table IV: run TaintClass over a corpus containing the benign
/// file and each exploit, then check that every exploit-related object
/// was discovered.
pub fn table4() -> Vec<Table4Row> {
    let png = build();
    minipng::cve_catalog()
        .into_iter()
        .map(|info| {
            let exploit = exploit_input(info.id);
            let safe = safe_input();
            let corpus: Vec<&[u8]> = vec![&safe[..], &exploit[..]];
            let report = analyze_corpus(
                &png.module,
                corpus,
                ExecLimits::default(),
                &TaintConfig::default(),
            );
            let discovered: BTreeSet<String> = report
                .tainted_classes()
                .into_iter()
                .filter_map(|c| {
                    png.module.registry.get_checked(c).map(|i| i.name().to_owned())
                })
                .collect();
            let covered = info
                .exploit_classes
                .iter()
                .all(|name| discovered.contains(*name));
            Table4Row { info, discovered, covered }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cve_exploits_the_native_build() {
        for eval in evaluate_all(0xA77AC4) {
            assert!(eval.native_exploited, "{eval}");
        }
    }

    #[test]
    fn polar_stops_the_corruption_cves() {
        // The null-deref (DoS) is out of scope for layout randomization;
        // every memory-corruption CVE must become unreliable (< 50 %
        // success) or be detected under POLaR.
        for eval in evaluate_all(0xA77AC4) {
            if eval.info.id == "CVE-2016-10087" {
                continue;
            }
            assert!(
                !eval.polar_exploited() || eval.polar_detected(),
                "{eval}"
            );
        }
    }

    #[test]
    fn table4_covers_every_exploit_object() {
        for row in table4() {
            assert!(row.covered, "{row}: discovered {:?}", row.discovered);
        }
    }
}
