//! Canned vulnerable programs — one per attack family of Section III.
//!
//! Each scenario gives the attacker a realistic corruption primitive
//! whose *placement* is controlled through the program input, mirroring
//! how real exploits parameterize their memory writes:
//!
//! * [`overflow`] — a linear heap buffer overflow (unchecked copy with an
//!   attacker-chosen length) running off a buffer into the adjacent
//!   object's function pointer;
//! * [`intra_object_overflow`] — the same unchecked copy, but through an
//!   inline byte-array member, so the corruption never leaves the heap
//!   block (the case §VII-C says redzones cannot see);
//! * [`type_confusion`] — an object of class `Form` later accessed
//!   through a `Doc`-typed site (the Section III-A1 integer/function-
//!   pointer confusion); the attacker chooses which `Form` field to fill;
//! * [`use_after_free`] — a freed `Session` whose slot the attacker
//!   reoccupies with a `Packet` before the dangling read of the session's
//!   handler (Section III-A2).
//!
//! Input encoding (shared): bytes `0..8` = attacker value (LE), bytes
//! `8..10` = placement parameter (overflow offset or field selector).

use polar_classinfo::ClassId;
use polar_ir::builder::ModuleBuilder;
use polar_ir::{BinOp, BlockId, CmpOp, Module, Reg};

/// Attack families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Linear heap overflow into an adjacent object.
    Overflow,
    /// Overflow of a byte-array member into its *own* object's siblings —
    /// invisible to redzone defenses (Section VII-C), caught by POLaR's
    /// randomization plus booby traps.
    IntraObjectOverflow,
    /// Object type confusion.
    TypeConfusion,
    /// Use-after-free with slot reoccupation.
    UseAfterFree,
}

impl ScenarioKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Overflow => "heap-overflow",
            ScenarioKind::IntraObjectOverflow => "in-object-overflow",
            ScenarioKind::TypeConfusion => "type-confusion",
            ScenarioKind::UseAfterFree => "use-after-free",
        }
    }
}

/// A vulnerable program plus the facts an attacker (and the harness)
/// needs about it.
#[derive(Debug)]
pub struct Scenario {
    /// Which family this is.
    pub kind: ScenarioKind,
    /// The vulnerable program (uninstrumented).
    pub module: Module,
    /// The class holding the hijack target.
    pub victim_class: ClassId,
    /// Field index of the hijack target (a function pointer).
    pub victim_field: u16,
    /// The class whose instance the attacker controls (confusion/UAF).
    pub spray_class: Option<ClassId>,
    /// Heap-block size of the overflowed buffer (overflow only): the
    /// victim object starts this many bytes past the buffer.
    pub buffer_block: u64,
}

/// Read the 8-byte attacker value from input bytes 0..8 into a register.
fn read_value(f: &mut polar_ir::builder::FunctionBuilder, bb: BlockId) -> Reg {
    let acc = f.const_(bb, 0);
    for i in (0..8u64).rev() {
        let idx = f.const_(bb, i);
        let byte = f.input_byte(bb, idx);
        let shifted = f.bini(bb, BinOp::Shl, acc, 8);
        let merged = f.bin(bb, BinOp::Or, shifted, byte);
        f.mov_to(bb, acc, merged);
    }
    acc
}

/// Read the 16-bit placement parameter from input bytes 8..10.
fn read_param(f: &mut polar_ir::builder::FunctionBuilder, bb: BlockId) -> Reg {
    let i8_ = f.const_(bb, 8);
    let lo = f.input_byte(bb, i8_);
    let i9 = f.const_(bb, 9);
    let hi = f.input_byte(bb, i9);
    let hi8 = f.bini(bb, BinOp::Shl, hi, 8);
    f.bin(bb, BinOp::Or, lo, hi8)
}

/// Build the heap-overflow scenario: an unchecked linear copy of the
/// attacker's payload (input bytes `10..`) into a 32-byte buffer, with
/// the copy length taken from input bytes `8..10`. The victim object sits
/// directly after the buffer's block.
pub fn overflow() -> Scenario {
    let mut mb = ModuleBuilder::new("attack-overflow");
    let account = mb
        .add_classes_src(
            "class Account { id: i64, balance: i64, is_admin: i64, on_update: fnptr }",
        )
        .expect("classes parse")[0];
    let mut f = mb.function("main", 0);
    let bb = f.entry_block();
    // The overflowable buffer, then the victim right after it.
    let buf = f.alloc_buf_bytes(bb, 32);
    let acct = f.alloc_obj(bb, account);
    let legit = f.const_(bb, 0x1000);
    let fp_fld = f.gep(bb, acct, account, 3);
    f.store(bb, fp_fld, legit, 8);
    // The bug: memcpy(buf, payload, attacker_len) with no bound check.
    let len = read_param(&mut f, bb);
    let copy = util_for(&mut f, bb, len);
    let src_i = f.bini(copy.body, BinOp::Add, copy.i, 10);
    let byte = f.input_byte(copy.body, src_i);
    let dst = f.bin(copy.body, BinOp::Add, buf, copy.i);
    f.store(copy.body, dst, byte, 1);
    util_end(&mut f, &copy, copy.body);
    // The victim's function pointer is then "called".
    let fp_fld2 = f.gep(copy.exit, acct, account, 3);
    let fp = f.load(copy.exit, fp_fld2, 8);
    f.out(copy.exit, fp);
    f.free_obj(copy.exit, acct);
    f.ret(copy.exit, Some(fp));
    mb.finish_function(f);
    Scenario {
        kind: ScenarioKind::Overflow,
        module: mb.build().expect("valid module"),
        victim_class: account,
        victim_field: 3,
        spray_class: None,
        buffer_block: 32,
    }
}

/// Build the intra-object overflow scenario: a record with an inline name
/// buffer whose unchecked copy can run into the sibling function pointer
/// **inside the same heap block**.
///
/// Input encoding: bytes `8..10` = copy length, bytes `10..` = the copied
/// "name" payload (the attacker positions the fake pointer inside it).
pub fn intra_object_overflow() -> Scenario {
    let mut mb = ModuleBuilder::new("attack-intra-overflow");
    let record = mb
        .add_classes_src(
            "class Record { name: bytes[16], balance: i64, on_notify: fnptr }",
        )
        .expect("classes parse")[0];
    let mut f = mb.function("main", 0);
    let bb = f.entry_block();
    let rec = f.alloc_obj(bb, record);
    let legit = f.const_(bb, 0x1000);
    let fp_fld = f.gep(bb, rec, record, 2);
    f.store(bb, fp_fld, legit, 8);
    // The bug: strcpy-style copy of the attacker's "name" into the inline
    // buffer with an attacker-controlled length.
    let len = read_param(&mut f, bb);
    let name_fld = f.gep(bb, rec, record, 0);
    let copy = crate::scenarios::util_for(&mut f, bb, len);
    let src_i = f.bini(copy.body, polar_ir::BinOp::Add, copy.i, 10);
    let byte = f.input_byte(copy.body, src_i);
    let dst = f.bin(copy.body, polar_ir::BinOp::Add, name_fld, copy.i);
    f.store(copy.body, dst, byte, 1);
    crate::scenarios::util_end(&mut f, &copy, copy.body);
    // The record's callback is then "invoked".
    let fp_fld2 = f.gep(copy.exit, rec, record, 2);
    let fp = f.load(copy.exit, fp_fld2, 8);
    f.out(copy.exit, fp);
    f.free_obj(copy.exit, rec);
    f.ret(copy.exit, Some(fp));
    mb.finish_function(f);
    Scenario {
        kind: ScenarioKind::IntraObjectOverflow,
        module: mb.build().expect("valid module"),
        victim_class: record,
        victim_field: 2,
        spray_class: None,
        buffer_block: 0,
    }
}

/// Build the type-confusion scenario.
pub fn type_confusion() -> Scenario {
    let mut mb = ModuleBuilder::new("attack-confusion");
    let ids = mb
        .add_classes_src(
            "class Doc  { meta: i64, on_render: fnptr, len: i64 }
             class Form { meta: i64, user_id: i64, submit_count: i64 }",
        )
        .expect("classes parse");
    let (doc, form) = (ids[0], ids[1]);
    let mut f = mb.function("main", 0);
    let bb = f.entry_block();
    let b = f.alloc_obj(bb, form);
    let val = read_value(&mut f, bb);
    let k = read_param(&mut f, bb);
    // Store the attacker value into Form field k (legitimate API use —
    // e.g. the user's integer id).
    let join = f.block();
    let mut cur = bb;
    for field in 0..3u16 {
        let hit = f.block();
        let next = f.block();
        let is_k = f.cmpi(cur, CmpOp::Eq, k, u64::from(field));
        f.br(cur, is_k, hit, next);
        let fld = f.gep(hit, b, form, field);
        f.store(hit, fld, val, 8);
        f.jmp(hit, join);
        cur = next;
    }
    f.jmp(cur, join);
    // The confusion bug: the same object reaches a Doc-typed call site.
    let fp_fld = f.gep(join, b, doc, 1);
    let fp = f.load(join, fp_fld, 8);
    f.out(join, fp);
    f.free_obj(join, b);
    f.ret(join, Some(fp));
    mb.finish_function(f);
    Scenario {
        kind: ScenarioKind::TypeConfusion,
        module: mb.build().expect("valid module"),
        victim_class: doc,
        victim_field: 1,
        spray_class: Some(form),
        buffer_block: 0,
    }
}

/// Build the use-after-free scenario.
pub fn use_after_free() -> Scenario {
    let mut mb = ModuleBuilder::new("attack-uaf");
    let ids = mb
        .add_classes_src(
            "class Session { key: i64, privileged: i64, on_close: fnptr }
             class Packet  { f0: i64, f1: i64, f2: i64 }",
        )
        .expect("classes parse");
    let (session, packet) = (ids[0], ids[1]);
    let mut f = mb.function("main", 0);
    let bb = f.entry_block();
    let s = f.alloc_obj(bb, session);
    let legit = f.const_(bb, 0x1000);
    let h_fld = f.gep(bb, s, session, 2);
    f.store(bb, h_fld, legit, 8);
    // The bug: the session is freed but the pointer lives on.
    f.free_obj(bb, s);
    // The attacker reoccupies the slot with a same-sized Packet and
    // fills field k with the fake handler.
    let p = f.alloc_obj(bb, packet);
    let val = read_value(&mut f, bb);
    let k = read_param(&mut f, bb);
    let join = f.block();
    let mut cur = bb;
    for field in 0..3u16 {
        let hit = f.block();
        let next = f.block();
        let is_k = f.cmpi(cur, CmpOp::Eq, k, u64::from(field));
        f.br(cur, is_k, hit, next);
        let fld = f.gep(hit, p, packet, field);
        f.store(hit, fld, val, 8);
        f.jmp(hit, join);
        cur = next;
    }
    f.jmp(cur, join);
    // The dangling use: the stale Session pointer's handler is "called".
    let h_fld2 = f.gep(join, s, session, 2);
    let h = f.load(join, h_fld2, 8);
    f.out(join, h);
    f.ret(join, Some(h));
    mb.finish_function(f);
    Scenario {
        kind: ScenarioKind::UseAfterFree,
        module: mb.build().expect("valid module"),
        victim_class: session,
        victim_field: 2,
        spray_class: Some(packet),
        buffer_block: 0,
    }
}

/// All four scenarios.
pub fn all() -> Vec<Scenario> {
    vec![overflow(), intra_object_overflow(), type_confusion(), use_after_free()]
}

// Local loop helpers (duplicated from polar-workloads to avoid a
// dependency cycle; the IR builder has no loop sugar of its own).
pub(crate) struct MiniLoop {
    pub(crate) head: BlockId,
    pub(crate) body: BlockId,
    pub(crate) exit: BlockId,
    pub(crate) i: Reg,
}

pub(crate) fn util_for(
    f: &mut polar_ir::builder::FunctionBuilder,
    cur: BlockId,
    count: Reg,
) -> MiniLoop {
    let i = f.const_(cur, 0);
    let head = f.block();
    let body = f.block();
    let exit = f.block();
    f.jmp(cur, head);
    let cond = f.cmp(head, CmpOp::Lt, i, count);
    f.br(head, cond, body, exit);
    MiniLoop { head, body, exit, i }
}

pub(crate) fn util_end(
    f: &mut polar_ir::builder::FunctionBuilder,
    lp: &MiniLoop,
    cur: BlockId,
) {
    let next = f.bini(cur, BinOp::Add, lp.i, 1);
    f.mov_to(cur, lp.i, next);
    f.jmp(cur, lp.head);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_ir::interp::{run_native, ExecLimits};

    #[test]
    fn benign_inputs_leave_the_pointer_alone() {
        for s in all() {
            // Value 0, placement 0: harmless writes.
            let input = vec![0u8; 10];
            let report = run_native(&s.module, &input, ExecLimits::default());
            assert!(report.result.is_ok(), "{}: {:?}", s.kind.label(), report.result);
        }
    }

    #[test]
    fn overflow_scenario_hijacks_at_the_natural_offset() {
        let s = overflow();
        let natural = s.module.registry.get(s.victim_class).natural().offset(3) as u64;
        let rel = (s.buffer_block + natural) as usize;
        let mut input = vec![0x42u8; 8];
        let len = rel + 8;
        input.push((len & 0xFF) as u8);
        input.push((len >> 8) as u8);
        let mut payload = vec![0u8; len];
        payload[rel..rel + 8].copy_from_slice(&0x4242_4242_4242_4242u64.to_le_bytes());
        input.extend(payload);
        let report = run_native(&s.module, &input, ExecLimits::default());
        assert_eq!(report.output[0], 0x4242_4242_4242_4242);
    }

    #[test]
    fn confusion_scenario_hijacks_via_field_1() {
        let s = type_confusion();
        let mut input = vec![0x42u8; 8];
        input.extend([1u8, 0]); // Form.user_id overlaps Doc.on_render
        let report = run_native(&s.module, &input, ExecLimits::default());
        assert_eq!(report.output[0], 0x4242_4242_4242_4242);
    }

    #[test]
    fn uaf_scenario_hijacks_via_field_2() {
        let s = use_after_free();
        let mut input = vec![0x42u8; 8];
        input.extend([2u8, 0]); // Packet.f2 overlaps Session.on_close
        let report = run_native(&s.module, &input, ExecLimits::default());
        assert_eq!(report.output[0], 0x4242_4242_4242_4242);
    }
}
