//! The reproduction problem (§III-B2), quantified with a *probing*
//! attacker.
//!
//! "The once-randomized object layout remains same across multiple
//! executions. Therefore attacker can observe deterministic behavior by
//! triggering the memory corruption with the same input data. This allows
//! the attacker to infer and analyze the changed object layout."
//!
//! The probing attacker here has **no copy of the binary**. It enumerates
//! candidate pointer locations one execution at a time, watching a simple
//! oracle (did the hijack value come back out?). Against compile-time OLR
//! the layout never changes, so each probe permanently eliminates
//! candidates and a successful offset stays valid forever — after a
//! handful of runs the exploit is 100 % reliable. Against POLaR every
//! execution re-randomizes, so observations do not transfer and no stable
//! exploit ever emerges.

use crate::harness::{run_attack_with_param, Defense};
use crate::scenarios::{self, Scenario};

/// Result of a probing campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbingResult {
    /// Defense label.
    pub defense: &'static str,
    /// Executions spent before a *stable* exploit was found (`None` =
    /// never within the budget).
    pub attempts_until_stable: Option<u32>,
    /// Hijacks observed during the whole campaign.
    pub total_hijacks: u32,
    /// Executions performed.
    pub executions: u32,
}

impl std::fmt::Display for ProbingResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.attempts_until_stable {
            Some(n) => write!(
                f,
                "{:<12} stable exploit after {:>3} probes ({} hijacks / {} runs)",
                self.defense, n, self.total_hijacks, self.executions
            ),
            None => write!(
                f,
                "{:<12} NO stable exploit ({} lucky hijacks / {} runs)",
                self.defense, self.total_hijacks, self.executions
            ),
        }
    }
}

/// How many consecutive successes the attacker demands before declaring
/// the exploit production-ready.
const STABILITY: u32 = 5;

/// Run the probing campaign. `defense_for_run` supplies the defense for
/// execution `i` — static OLR keeps one binary seed (same binary
/// redeployed), POLaR draws fresh process entropy every run.
pub fn probe(
    scenario: &Scenario,
    defense_for_run: impl Fn(u32) -> Defense,
    max_executions: u32,
) -> ProbingResult {
    // Candidate placements: every 8-byte-aligned offset a pointer could
    // occupy within a generously-sized victim block.
    let candidates: Vec<u64> = (0..16u64).map(|k| k * 8).collect();
    let mut run = 0u32;
    let mut hijacks = 0u32;
    let mut defense_label = "?";

    let mut cursor = 0usize;
    while run < max_executions {
        let guess = candidates[cursor % candidates.len()];
        let param = scenario.buffer_block + guess + 8;
        let defense = defense_for_run(run);
        defense_label = defense.label();
        let hit = run_attack_with_param(scenario, &defense, param, guess);
        run += 1;
        if hit {
            hijacks += 1;
            // Candidate found: verify stability on fresh executions.
            let mut stable = true;
            for _ in 0..STABILITY {
                if run >= max_executions {
                    stable = false;
                    break;
                }
                let defense = defense_for_run(run);
                let again = run_attack_with_param(scenario, &defense, param, guess);
                run += 1;
                if again {
                    hijacks += 1;
                } else {
                    stable = false;
                    break;
                }
            }
            if stable {
                return ProbingResult {
                    defense: defense_label,
                    attempts_until_stable: Some(run),
                    total_hijacks: hijacks,
                    executions: run,
                };
            }
        }
        cursor += 1;
    }
    ProbingResult {
        defense: defense_label,
        attempts_until_stable: None,
        total_hijacks: hijacks,
        executions: run,
    }
}

/// The canned §III-B2 comparison on the heap-overflow scenario.
pub fn reproduction_problem(max_executions: u32) -> Vec<ProbingResult> {
    let scenario = scenarios::overflow();
    vec![
        probe(&scenario, |_| Defense::StaticOlr { binary_seed: 0x5EED }, max_executions),
        probe(&scenario, |run| Defense::polar(0xAB00 + u64::from(run)), max_executions),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probing_breaks_static_olr_without_the_binary() {
        let scenario = scenarios::overflow();
        let result =
            probe(&scenario, |_| Defense::StaticOlr { binary_seed: 0x1234 }, 200);
        assert!(
            result.attempts_until_stable.is_some(),
            "deterministic replay must let probing converge: {result}"
        );
        // 16 candidates + 5 verification runs is the worst case.
        assert!(result.attempts_until_stable.unwrap() <= 16 + 5);
    }

    #[test]
    fn probing_never_stabilizes_against_polar() {
        let scenario = scenarios::overflow();
        let result = probe(&scenario, |run| Defense::polar(0x77 + u64::from(run)), 200);
        assert!(
            result.attempts_until_stable.is_none(),
            "per-execution randomization must deny stable exploits: {result}"
        );
        // Lucky single hits may occur, but far below static OLR's 100%.
        assert!(result.total_hijacks < result.executions / 2, "{result}");
    }
}
