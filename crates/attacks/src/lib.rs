//! Security evaluation: exploit simulations against POLaR.
//!
//! Section III of the paper argues POLaR's security through three attack
//! families — heap overflow, type confusion, and use-after-free — and
//! Section V-C validates TaintClass against real libpng CVEs (Table IV).
//! This crate makes those arguments executable:
//!
//! * [`scenarios`] — small vulnerable programs, one per attack family,
//!   each with an attacker-controlled corruption primitive;
//! * [`harness`] — runs a scenario under a [`Defense`] (native binary,
//!   compile-time OLR, POLaR), models attacker knowledge (an attacker who
//!   has reverse-engineered the binary can reconstruct static-OLR layouts
//!   — the paper's *hidden binary problem*), and measures success /
//!   detection rates and replay determinism over many trials;
//! * [`diversity`] — the Figure 2 experiment: layout diversity across
//!   instances and executions under each defense;
//! * [`cve`] — crafted exploit inputs for the six minipng CVEs and the
//!   Table IV TaintClass-vs-ground-truth comparison;
//! * [`metadata_leak`] — the Section VI-A limitation quantified: an
//!   attacker who can read the runtime's metadata defeats POLaR;
//! * [`probing`] — the Section III-B2 reproduction problem quantified: a
//!   binary-less attacker converges on static OLR by repeated probing but
//!   never stabilizes against POLaR;
//! * [`search`] — the adaptive adversary: seed-deterministic campaigns
//!   (built on `polar-fuzz`) that *evolve* allocation/free/spray/probe
//!   tapes against each defense mode and report per-mode bypass rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod diversity;
pub mod harness;
pub mod metadata_leak;
pub mod probing;
pub mod scenarios;
pub mod search;

pub use harness::{AttackOutcome, Attacker, Defense, TrialStats};
pub use scenarios::{Scenario, ScenarioKind};
pub use search::{run_campaign, scorecard, CampaignBudget, CampaignReport, SecMode};
