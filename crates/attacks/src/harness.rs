//! The attack harness: defenses, attacker models, trials, and metrics.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use polar_classinfo::ClassInfo;
use polar_instrument::{instrument, InstrumentOptions};
use polar_ir::interp::{run, run_with_mode, ExecLimits, ExecReport};
use polar_ir::trace::NopTracer;
use polar_layout::{LayoutPlan, RandomizationPolicy, StaticOlrTable};
use polar_runtime::{RandomizeMode, RuntimeConfig, ShardedRuntime};

use crate::scenarios::{Scenario, ScenarioKind};

/// The attacker's value of choice (what a hijacked pointer reads back).
pub const ATTACK_VALUE: u64 = 0x4242_4242_4242_4242;

/// Which hardening the target binary carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Defense {
    /// Unhardened binary: deterministic natural layouts.
    Native,
    /// Compile-time OLR (`randstruct`/DSLR/RFOR): layouts permuted once
    /// per binary, baked into the code, identical across executions.
    StaticOlr {
        /// The binary's randomization seed.
        binary_seed: u64,
    },
    /// POLaR: the instrumented binary with per-allocation randomization.
    Polar {
        /// The process's runtime entropy (fresh per execution).
        process_seed: u64,
        /// Whether the runtime's class-mismatch/UAF detections are armed
        /// (on by default in the paper's prototype; off isolates the
        /// purely probabilistic layout defense).
        detect: bool,
    },
    /// POLaR plus placement randomization: the same per-allocation
    /// layout engine as [`Defense::Polar`], with the sim heap's
    /// [`PlacementPolicy`](polar_simheap::PlacementPolicy) armed —
    /// shuffle buffers, guard gaps, and arena offset entropy — so the
    /// *addresses* the groomer relies on are randomized too.
    PolarPlacement {
        /// The process's runtime entropy (fresh per execution).
        process_seed: u64,
    },
    /// Placement randomization *alone*: natural (native) layouts on a
    /// heap with the same [`PlacementPolicy`](polar_simheap::PlacementPolicy)
    /// as [`Defense::PolarPlacement`]. The isolating ablation for the
    /// layout-only / placement-only / both comparison (`tables --
    /// placement`); deliberately not part of the gated scorecard.
    PlacementOnly {
        /// Seed for the heap's placement stream.
        process_seed: u64,
    },
    /// POLaR with the stateless small-class path: classes at or under
    /// the stateless field bound get keyed-permutation layouts derived
    /// from heap identity (SPAM-style). With `traps` on — the runtime's
    /// default — the derived plans interleave virtual booby-trap slots
    /// whose geometry rederives from the same identity; with `traps`
    /// off this is the original permute-only space/detection trade-off,
    /// kept as a measured ablation. Metadata checks stay armed.
    PolarStateless {
        /// The process's runtime entropy (fresh per execution).
        process_seed: u64,
        /// Whether derived plans carry virtual booby traps.
        traps: bool,
    },
    /// POLaR on the concurrent sharded runtime facade (single-context
    /// embedding: allocations from shard 0, accesses routed by address).
    Sharded {
        /// The process's runtime entropy (fresh per execution).
        process_seed: u64,
        /// Shard count.
        shards: usize,
    },
    /// Redzone-based memory safety (ASan-style, Section VII-C of the
    /// paper): natural layouts, but every raw access is checked against
    /// its heap block.
    Redzone,
}

impl Defense {
    /// POLaR with detections armed.
    pub fn polar(process_seed: u64) -> Self {
        Defense::Polar { process_seed, detect: true }
    }

    /// POLaR with placement randomization on top (layout + addresses).
    pub fn polar_placement(process_seed: u64) -> Self {
        Defense::PolarPlacement { process_seed }
    }

    /// Placement randomization alone (native layouts; the ablation row).
    pub fn placement_only(process_seed: u64) -> Self {
        Defense::PlacementOnly { process_seed }
    }

    /// POLaR with the stateless small-class path on, virtual traps
    /// included (the runtime's default posture for small classes).
    pub fn polar_stateless(process_seed: u64) -> Self {
        Defense::PolarStateless { process_seed, traps: true }
    }

    /// The permute-only stateless ablation: no virtual traps.
    pub fn polar_stateless_notraps(process_seed: u64) -> Self {
        Defense::PolarStateless { process_seed, traps: false }
    }

    /// POLaR on the sharded facade (four shards).
    pub fn sharded(process_seed: u64) -> Self {
        Defense::Sharded { process_seed, shards: 4 }
    }

    /// Display label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Defense::Native => "native",
            Defense::StaticOlr { .. } => "static-olr",
            Defense::Polar { detect: true, .. } => "polar",
            Defense::Polar { detect: false, .. } => "polar(no-detect)",
            Defense::PolarPlacement { .. } => "polar+placement",
            Defense::PlacementOnly { .. } => "placement-only",
            Defense::PolarStateless { traps: true, .. } => "polar-stateless",
            Defense::PolarStateless { traps: false, .. } => "stateless-notraps",
            Defense::Sharded { .. } => "sharded",
            Defense::Redzone => "redzone",
        }
    }

    pub(crate) fn mode(&self) -> RandomizeMode {
        match self {
            Defense::Native | Defense::Redzone | Defense::PlacementOnly { .. } => {
                RandomizeMode::Native
            }
            Defense::StaticOlr { binary_seed } => RandomizeMode::static_olr(*binary_seed),
            Defense::Polar { .. }
            | Defense::PolarPlacement { .. }
            | Defense::PolarStateless { .. }
            | Defense::Sharded { .. } => RandomizeMode::per_allocation(),
        }
    }

    pub(crate) fn config(&self) -> RuntimeConfig {
        let mut config = RuntimeConfig::default();
        match self {
            Defense::Polar { process_seed, detect } => {
                config.seed = *process_seed;
                config.detect_class_mismatch = *detect;
                config.detect_use_after_free = *detect;
                config.check_traps_on_free = *detect;
                config.detect_probe_traps = *detect;
                // The "polar" scorecard row measures the *stateful*
                // engine path (stored plans, engine-drawn dummies);
                // keep it pinned there even though the runtime default
                // flipped small classes to stateless.
                config.stateless = polar_layout::StatelessPolicy::off();
            }
            Defense::PolarPlacement { process_seed } => {
                config.seed = *process_seed;
                config.detect_class_mismatch = true;
                config.detect_use_after_free = true;
                config.check_traps_on_free = true;
                config.detect_probe_traps = true;
                config.stateless = polar_layout::StatelessPolicy::off();
                // The placement column: layout engine identical to
                // `polar`, plus address randomization. Seed 0 means the
                // runtime derives the placement stream from its own seed,
                // so one `process_seed` still replays the whole trial.
                config.heap.placement = polar_simheap::PlacementPolicy {
                    shuffle_depth: 16,
                    offset_entropy_bits: 8,
                    guard_gap_bits: 6,
                    seed: 0,
                };
            }
            Defense::PlacementOnly { process_seed } => {
                // Native layouts, no detections: everything stays at the
                // unhardened default except the placement policy, so the
                // row isolates address entropy from layout entropy.
                config.seed = *process_seed;
                config.heap.placement = polar_simheap::PlacementPolicy {
                    shuffle_depth: 16,
                    offset_entropy_bits: 8,
                    guard_gap_bits: 6,
                    seed: 0,
                };
            }
            Defense::PolarStateless { process_seed, traps } => {
                config.seed = *process_seed;
                config.stateless = if *traps {
                    polar_layout::StatelessPolicy::on()
                } else {
                    polar_layout::StatelessPolicy::permute_only()
                };
            }
            Defense::Sharded { process_seed, .. } => {
                config.seed = *process_seed;
                // Stateful plans on every shard, as for `polar`.
                config.stateless = polar_layout::StatelessPolicy::off();
                // The scenarios touch a few hundred bytes; a small total
                // arena keeps per-trial facade construction cheap.
                config.heap.capacity = 4 << 20;
            }
            Defense::Redzone => {
                config.redzone_checks = true;
                // ASan pads every allocation with poisoned no-man's-land,
                // quarantines freed blocks, and poisons their contents.
                config.heap.redzone = 16;
                config.heap.quarantine = 64;
                config.heap.poison = Some(0xDD);
            }
            _ => {}
        }
        config
    }
}

/// How much the attacker knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attacker {
    /// Only the source-visible (natural) layout — the hidden-binary
    /// situation static OLR assumes.
    NaturalLayout,
    /// Has the binary and can reconstruct any compile-time layout — the
    /// public-binary threat model POLaR is designed for (Section III-B1).
    BinaryAware,
}

/// Outcome of one attack execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// The hijack value reached the indirect-call site.
    Hijacked,
    /// A POLaR detection terminated the program first.
    Detected,
    /// The program crashed without a useful hijack.
    Crashed,
    /// The attack fizzled: the program ran but the pointer was unharmed
    /// or corrupted with the wrong value.
    NoEffect,
}

impl AttackOutcome {
    /// Classify an execution report: hijack beats detection beats crash.
    pub fn classify(report: &ExecReport) -> Self {
        use polar_ir::interp::ExecError;
        use polar_simheap::HeapError;
        if report.output.first() == Some(&ATTACK_VALUE) {
            AttackOutcome::Hijacked
        } else if report.detected()
            || matches!(report.result, Err(ExecError::Fault(HeapError::OutOfBlock { .. })))
        {
            // Redzone violations are that defense's detection signal.
            AttackOutcome::Detected
        } else if report.crashed() {
            AttackOutcome::Crashed
        } else {
            AttackOutcome::NoEffect
        }
    }
}

/// Reconstruct the layout a compile-time-randomized binary uses for a
/// class (what reverse engineering the binary reveals).
fn reconstruct_static_plan(info: &Arc<ClassInfo>, binary_seed: u64) -> LayoutPlan {
    let mut table = StaticOlrTable::new(RandomizationPolicy::permute_only(), binary_seed);
    Arc::try_unwrap(table.plan_for(info)).unwrap_or_else(|arc| (*arc).clone())
}

/// The attacker's belief about the victim/spray layouts under `defense`.
fn believed_plans(
    scenario: &Scenario,
    defense: &Defense,
    attacker: Attacker,
) -> (LayoutPlan, Option<LayoutPlan>) {
    let registry = &scenario.module.registry;
    let victim = registry.get(scenario.victim_class);
    let spray = scenario.spray_class.map(|c| registry.get(c));
    match (defense, attacker) {
        (Defense::StaticOlr { binary_seed }, Attacker::BinaryAware) => (
            reconstruct_static_plan(victim, *binary_seed),
            spray.map(|s| reconstruct_static_plan(s, *binary_seed)),
        ),
        // Everything else: the attacker can only assume natural layout
        // (against POLaR even the binary reveals nothing).
        _ => (
            LayoutPlan::natural_for(victim),
            spray.map(|s| LayoutPlan::natural_for(s)),
        ),
    }
}

/// Craft the exploit input the given attacker would send.
pub fn craft_input(scenario: &Scenario, defense: &Defense, attacker: Attacker) -> Vec<u8> {
    let (victim_plan, spray_plan) = believed_plans(scenario, defense, attacker);
    let target_off = victim_plan.offset(usize::from(scenario.victim_field)) as u64;
    let param: u64 = match scenario.kind {
        // Copy length reaching through the buffer into the believed
        // pointer location of the adjacent object.
        ScenarioKind::Overflow => scenario.buffer_block + target_off + 8,
        ScenarioKind::IntraObjectOverflow => {
            // Copy length: from the believed start of `name` (field 0)
            // through the end of the believed pointer location.
            let name_off = victim_plan.offset(0) as u64;
            target_off.saturating_sub(name_off) + 8
        }
        ScenarioKind::TypeConfusion | ScenarioKind::UseAfterFree => {
            // Pick the spray-class field whose believed offset overlaps
            // the victim field.
            let spray = spray_plan.expect("spray plan for confusion/uaf");
            (0..spray.field_count())
                .find(|&k| spray.offset(k) as u64 == target_off)
                .unwrap_or(0) as u64
        }
    };
    let mut input = ATTACK_VALUE.to_le_bytes().to_vec();
    input.push((param & 0xFF) as u8);
    input.push((param >> 8) as u8);
    match scenario.kind {
        ScenarioKind::Overflow => {
            // Filler through the buffer, fake pointer at the believed
            // victim-field position.
            let rel = (scenario.buffer_block + target_off) as usize;
            let mut payload = vec![0x20u8; rel + 8];
            payload[rel..rel + 8].copy_from_slice(&ATTACK_VALUE.to_le_bytes());
            input.extend(payload);
        }
        ScenarioKind::IntraObjectOverflow => {
            // The copied "name": filler with the fake pointer positioned
            // at the believed (pointer − name) distance.
            let name_off = victim_plan.offset(0) as u64;
            let rel = target_off.saturating_sub(name_off) as usize;
            let mut payload = vec![0x20u8; rel + 8];
            payload[rel..rel + 8].copy_from_slice(&ATTACK_VALUE.to_le_bytes());
            input.extend(payload);
        }
        _ => {}
    }
    input
}

/// Run one overflow-style attack with an explicit probed placement:
/// copy length `param`, hijack value positioned `guess` bytes past the
/// victim block's start. Returns whether the hijack value came back out
/// (the probing attacker's oracle).
pub fn run_attack_with_param(
    scenario: &Scenario,
    defense: &Defense,
    param: u64,
    guess: u64,
) -> bool {
    let mut input = ATTACK_VALUE.to_le_bytes().to_vec();
    input.push((param & 0xFF) as u8);
    input.push((param >> 8) as u8);
    let rel = (scenario.buffer_block + guess) as usize;
    let mut payload = vec![0x20u8; rel + 8];
    payload[rel..rel + 8].copy_from_slice(&ATTACK_VALUE.to_le_bytes());
    input.extend(payload);
    let module = prepare_module(scenario, defense);
    let report = execute(&module, defense, &input);
    report.output.first() == Some(&ATTACK_VALUE)
}

pub(crate) fn prepare_module(scenario: &Scenario, defense: &Defense) -> polar_ir::Module {
    match defense {
        Defense::Polar { .. }
        | Defense::PolarPlacement { .. }
        | Defense::PolarStateless { .. }
        | Defense::Sharded { .. } => {
            let (hardened, _) = instrument(&scenario.module, &InstrumentOptions::default());
            hardened
        }
        // Native, compile-time OLR and redzone binaries are not
        // instrumented; static permutation lives in the interpreter's
        // compile-time layout resolution.
        _ => scenario.module.clone(),
    }
}

/// One execution under `defense`'s runtime: the sharded defense builds
/// the lock-striped facade; every other defense runs on a fresh
/// single-context runtime.
pub(crate) fn execute(module: &polar_ir::Module, defense: &Defense, input: &[u8]) -> ExecReport {
    match defense {
        Defense::Sharded { shards, .. } => {
            let mut rt = ShardedRuntime::new(defense.mode(), defense.config(), *shards);
            run(module, &mut rt, input, ExecLimits::default(), &mut NopTracer)
        }
        _ => run_with_mode(module, defense.mode(), defense.config(), input, ExecLimits::default()),
    }
}

/// Run one attack execution and classify the outcome.
pub fn run_attack(scenario: &Scenario, defense: &Defense, attacker: Attacker) -> AttackOutcome {
    let input = craft_input(scenario, defense, attacker);
    let module = prepare_module(scenario, defense);
    AttackOutcome::classify(&execute(&module, defense, &input))
}

/// Aggregated trial results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Total executions.
    pub trials: u64,
    /// Successful hijacks.
    pub hijacked: u64,
    /// POLaR detections.
    pub detected: u64,
    /// Crashes.
    pub crashed: u64,
    /// No observable effect.
    pub no_effect: u64,
    outcome_counts: HashMap<AttackOutcome, u64>,
}

impl TrialStats {
    fn record(&mut self, outcome: AttackOutcome) {
        self.trials += 1;
        match outcome {
            AttackOutcome::Hijacked => self.hijacked += 1,
            AttackOutcome::Detected => self.detected += 1,
            AttackOutcome::Crashed => self.crashed += 1,
            AttackOutcome::NoEffect => self.no_effect += 1,
        }
        *self.outcome_counts.entry(outcome).or_insert(0) += 1;
    }

    /// Fraction of trials that hijacked control flow.
    pub fn hijack_rate(&self) -> f64 {
        self.hijacked as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials POLaR detected.
    pub fn detection_rate(&self) -> f64 {
        self.detected as f64 / self.trials.max(1) as f64
    }

    /// Replay determinism: the fraction of trials sharing the modal
    /// outcome (1.0 = the attack behaves identically on every attempt —
    /// the paper's *reproduction problem*).
    pub fn determinism(&self) -> f64 {
        let modal = self.outcome_counts.values().copied().max().unwrap_or(0);
        modal as f64 / self.trials.max(1) as f64
    }
}

impl fmt::Display for TrialStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials: {:.1}% hijacked, {:.1}% detected, {:.1}% crashed, {:.1}% no effect \
             (determinism {:.2})",
            self.trials,
            self.hijack_rate() * 100.0,
            self.detection_rate() * 100.0,
            self.crashed as f64 / self.trials.max(1) as f64 * 100.0,
            self.no_effect as f64 / self.trials.max(1) as f64 * 100.0,
            self.determinism(),
        )
    }
}

/// Run `n` attack executions. Per trial, native binaries never change;
/// static-OLR binaries keep their (single) binary seed — replaying the
/// same binary; POLaR processes draw fresh runtime entropy per execution,
/// exactly the per-execution model of Section III-B2.
pub fn trials(
    scenario: &Scenario,
    defense_for_trial: impl Fn(u64) -> Defense,
    attacker: Attacker,
    n: u64,
) -> TrialStats {
    let mut stats = TrialStats::default();
    for t in 0..n {
        let defense = defense_for_trial(t);
        stats.record(run_attack(scenario, &defense, attacker));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn native_binaries_fall_deterministically() {
        for s in scenarios::all() {
            let stats = trials(&s, |_| Defense::Native, Attacker::NaturalLayout, 10);
            assert_eq!(stats.hijacked, 10, "{}: {stats}", s.kind.label());
            assert_eq!(stats.determinism(), 1.0);
        }
    }

    #[test]
    fn static_olr_resists_blind_attackers_but_not_binary_aware_ones() {
        for s in scenarios::all() {
            let blind = trials(
                &s,
                |_| Defense::StaticOlr { binary_seed: 77 },
                Attacker::NaturalLayout,
                12,
            );
            let aware = trials(
                &s,
                |_| Defense::StaticOlr { binary_seed: 77 },
                Attacker::BinaryAware,
                12,
            );
            // The hidden-binary assumption: blind attacks are down to
            // layout luck; with the binary, success is total again —
            // except for the forward-only intra-object write, whose
            // exploitability genuinely depends on whether this binary's
            // permutation put the buffer before the pointer (still
            // all-or-nothing and fully predictable from the binary).
            if s.kind == crate::scenarios::ScenarioKind::IntraObjectOverflow {
                assert!(
                    aware.hijacked == 12 || aware.hijacked == 0,
                    "{}: {aware}",
                    s.kind.label()
                );
            } else {
                assert_eq!(aware.hijacked, 12, "{}: {aware}", s.kind.label());
            }
            assert!(
                blind.hijacked == 0 || blind.hijacked == 12,
                "static OLR must be deterministic per binary: {blind}"
            );
            assert_eq!(blind.determinism(), 1.0);
        }
    }

    #[test]
    fn static_olr_is_deterministic_across_reexecution() {
        let s = scenarios::overflow();
        // The same binary replayed 8 times: one outcome.
        let stats =
            trials(&s, |_| Defense::StaticOlr { binary_seed: 3 }, Attacker::BinaryAware, 8);
        assert_eq!(stats.determinism(), 1.0);
    }

    #[test]
    fn polar_defeats_binary_aware_attackers() {
        for s in scenarios::all() {
            let stats = trials(&s, |t| Defense::polar(1000 + t), Attacker::BinaryAware, 20);
            assert!(
                stats.hijack_rate() < 0.5,
                "{}: POLaR should break determinism: {stats}",
                s.kind.label()
            );
            // Confusion/UAF are *detected* by the metadata checks.
            if s.kind != crate::scenarios::ScenarioKind::Overflow {
                assert!(
                    stats.detection_rate() > 0.5,
                    "{}: expected detections: {stats}",
                    s.kind.label()
                );
            }
        }
    }

    #[test]
    fn polar_outcomes_vary_across_executions() {
        let s = scenarios::overflow();
        let stats = trials(&s, |t| Defense::polar(500 + t), Attacker::BinaryAware, 30);
        assert!(
            stats.determinism() < 1.0,
            "per-allocation randomization must vary across runs: {stats}"
        );
    }
}
