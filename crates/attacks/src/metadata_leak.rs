//! The Section VI-A limitation, made executable: POLaR's security rests
//! on its metadata staying secret.
//!
//! "POLaR keeps the randomized offset information per each object as its
//! metadata. There are some chances in which vulnerabilities bypass our
//! POLaR protection … and corrupt [or read] the metadata information. At
//! this point, POLaR does not provide a solution for securely keeping its
//! metadata secret" (§VI-A). The paper proposes MPX/SGX/MPK/TrustZone as
//! future work.
//!
//! This module quantifies the exposure: an attacker armed with an
//! arbitrary-read primitive over the runtime's metadata table learns the
//! victim object's layout plan and lands the corrupting write on the
//! first try — POLaR degrades to no defense. The same attacker without
//! the leak is reduced to guessing.

use std::sync::Arc;

use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

/// Outcome of one metadata-leak trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakTrial {
    /// The corrupting write landed on the function pointer.
    pub hijacked: bool,
    /// A booby trap caught the write at free time.
    pub trapped: bool,
}

/// Aggregate over many processes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakReport {
    /// Trials performed.
    pub trials: u32,
    /// Hijack rate with the metadata leak.
    pub with_leak_hijack: f64,
    /// Trap rate with the metadata leak.
    pub with_leak_trapped: f64,
    /// Hijack rate without the leak (natural-offset guessing).
    pub without_leak_hijack: f64,
    /// Trap rate without the leak.
    pub without_leak_trapped: f64,
}

fn victim_class() -> Arc<ClassInfo> {
    Arc::new(ClassInfo::from_decl(
        ClassDecl::builder("Handler")
            .field("id", FieldKind::I64)
            .field("state", FieldKind::I64)
            .field("callback", FieldKind::FnPtr)
            .field("arg", FieldKind::I64)
            .build(),
    ))
}

const CALLBACK: usize = 2;
const FAKE: u64 = 0x4242_4242_4242_4242;

/// Whether the simulated process shields its metadata (the MPK/SGX
/// deployment the paper proposes as future work in §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataShield {
    /// Metadata readable by any arbitrary-read primitive (the prototype).
    Exposed,
    /// Metadata in a protected region: the leak primitive fails and the
    /// attacker falls back to guessing.
    Protected,
}

fn one_trial(seed: u64, leak: bool) -> LeakTrial {
    one_trial_shielded(seed, leak, MetadataShield::Exposed)
}

fn one_trial_shielded(seed: u64, leak: bool, shield: MetadataShield) -> LeakTrial {
    let info = victim_class();
    let mut config = RuntimeConfig::default();
    config.seed = seed;
    let mut rt = ObjectRuntime::new(RandomizeMode::per_allocation(), config);
    let victim = rt.olr_malloc(&info).expect("alloc");
    rt.write_field(victim, info.hash(), CALLBACK, 0x1000).expect("init");

    // The attacker's raw 8-byte write primitive at victim + offset.
    let offset = if leak && shield == MetadataShield::Exposed {
        // Arbitrary-read over the metadata table (the §VI-A gap): the
        // plan reveals the callback's true location.
        u64::from(rt.object_meta(victim).expect("meta").plan.offset(CALLBACK))
    } else {
        // No leak (or the read bounced off the protected region): best
        // guess is the natural layout from the source.
        u64::from(info.natural().offset(CALLBACK))
    };
    rt.heap_mut()
        .write_u64(victim.offset(offset), FAKE)
        .expect("raw write stays in the arena");

    let hijacked = rt.read_field(victim, info.hash(), CALLBACK).expect("read") == FAKE;
    let trapped = rt.olr_free(victim).is_err();
    LeakTrial { hijacked, trapped }
}

/// Run the leak experiment against a process whose metadata lives in a
/// protected region (MPK/SGX-style): returns the leak-armed attacker's
/// hijack rate, which collapses back to the guessing rate.
pub fn experiment_protected(trials: u32) -> f64 {
    let mut hijacks = 0u32;
    for t in 0..trials {
        let seed = 0xDEAD ^ (u64::from(t) * 0x9E37_79B9);
        if one_trial_shielded(seed, true, MetadataShield::Protected).hijacked {
            hijacks += 1;
        }
    }
    f64::from(hijacks) / f64::from(trials.max(1))
}

/// Run the experiment over `trials` simulated processes.
pub fn experiment(trials: u32) -> LeakReport {
    let mut report = LeakReport { trials, ..Default::default() };
    for t in 0..trials {
        let seed = 0xDEAD ^ (u64::from(t) * 0x9E37_79B9);
        let with = one_trial(seed, true);
        let without = one_trial(seed, false);
        report.with_leak_hijack += f64::from(u8::from(with.hijacked));
        report.with_leak_trapped += f64::from(u8::from(with.trapped));
        report.without_leak_hijack += f64::from(u8::from(without.hijacked));
        report.without_leak_trapped += f64::from(u8::from(without.trapped));
    }
    let n = f64::from(trials.max(1));
    report.with_leak_hijack /= n;
    report.with_leak_trapped /= n;
    report.without_leak_hijack /= n;
    report.without_leak_trapped /= n;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_leak_defeats_polar() {
        let report = experiment(40);
        // With the leak: every write lands exactly on the callback, no
        // trap is touched — POLaR offers nothing (the §VI-A admission).
        assert_eq!(report.with_leak_hijack, 1.0, "{report:?}");
        assert_eq!(report.with_leak_trapped, 0.0, "{report:?}");
        // Without it, the guess mostly misses and traps fire often.
        assert!(report.without_leak_hijack < 0.5, "{report:?}");
        assert!(report.without_leak_trapped > 0.2, "{report:?}");
    }

    #[test]
    fn protected_metadata_restores_the_defense() {
        let exposed = experiment(40);
        let protected_rate = experiment_protected(40);
        assert_eq!(exposed.with_leak_hijack, 1.0);
        assert!(
            protected_rate <= exposed.without_leak_hijack + 1e-9,
            "shielded metadata must reduce the leak attacker to guessing:              {protected_rate} vs {}",
            exposed.without_leak_hijack
        );
    }

    #[test]
    fn leak_trials_are_deterministic_per_seed() {
        assert_eq!(one_trial(7, true), one_trial(7, true));
        assert_eq!(one_trial(7, false), one_trial(7, false));
    }
}
