//! The layout generation algorithm.

use polar_classinfo::ClassInfo;
use polar_rng::seq::SliceRandom;
use polar_rng::{Rng, RngExt};

use crate::plan::{DummySlot, LayoutPlan};
use crate::policy::{PermuteMode, RandomizationPolicy};

/// Generates [`LayoutPlan`]s according to a [`RandomizationPolicy`].
///
/// The engine is stateless apart from its policy; randomness comes from the
/// caller-supplied RNG, which is what lets the runtime draw a fresh plan
/// per allocation while tests stay deterministic with a seeded RNG.
#[derive(Debug, Clone)]
pub struct LayoutEngine {
    policy: RandomizationPolicy,
}

/// An element being placed: a real field or a dummy.
#[derive(Debug, Clone, Copy)]
enum Item {
    Field(usize),
    Dummy,
}

impl LayoutEngine {
    /// Create an engine with the given policy.
    pub fn new(policy: RandomizationPolicy) -> Self {
        LayoutEngine { policy }
    }

    /// The engine's policy.
    pub fn policy(&self) -> &RandomizationPolicy {
        &self.policy
    }

    /// Generate a randomized layout plan for `info`.
    ///
    /// With [`RandomizationPolicy::off`] this returns the natural layout
    /// (marked as such, so the runtime can skip the metadata fast-path).
    pub fn generate<R: Rng + ?Sized>(&self, info: &ClassInfo, rng: &mut R) -> LayoutPlan {
        let fields = info.fields();
        let policy = &self.policy;
        if matches!(policy.permute, PermuteMode::Off) && policy.dummies.max == 0 {
            return LayoutPlan::natural_for(info);
        }

        // 1. Decide the relative order of the real fields.
        let order: Vec<usize> = match policy.permute {
            PermuteMode::Off => (0..fields.len()).collect(),
            PermuteMode::Full => {
                let mut order: Vec<usize> = (0..fields.len()).collect();
                order.shuffle(rng);
                order
            }
            PermuteMode::CacheLineAware { line_size } => {
                // Pack declaration order into line-sized groups, shuffle
                // only within each group (randstruct's partial mode).
                let mut order = Vec::with_capacity(fields.len());
                let mut group: Vec<usize> = Vec::new();
                let mut used: u32 = 0;
                for (i, f) in fields.iter().enumerate() {
                    let size = f.kind().size();
                    if used + size > line_size && !group.is_empty() {
                        group.shuffle(rng);
                        order.append(&mut group);
                        used = 0;
                    }
                    group.push(i);
                    used += size;
                }
                group.shuffle(rng);
                order.append(&mut group);
                order
            }
        };

        // 2. Weave dummies into the ordered item stream: one guard before
        //    every pointer member (when guarding), plus a random count of
        //    free-floating dummies at random positions.
        let mut items: Vec<Item> = Vec::with_capacity(order.len() * 2);
        for &idx in &order {
            if policy.dummies.guard_pointers
                && policy.dummies.max > 0
                && fields[idx].kind().is_pointer()
            {
                items.push(Item::Dummy);
            }
            items.push(Item::Field(idx));
        }
        let extra = if policy.dummies.max > policy.dummies.min {
            rng.random_range(policy.dummies.min..=policy.dummies.max)
        } else {
            policy.dummies.min
        };
        for _ in 0..extra {
            let pos = rng.random_range(0..=items.len());
            items.insert(pos, Item::Dummy);
        }

        // 3. Lay the items out sequentially with natural alignment.
        let mut field_offsets = vec![0u32; fields.len()];
        let field_sizes: Vec<u32> = fields.iter().map(|f| f.kind().size()).collect();
        let mut dummies = Vec::new();
        let mut cursor: u32 = 0;
        let mut max_align: u32 = 1;
        let dummy_size = policy.dummies.size.max(1);
        let dummy_align = dummy_size.min(8).next_power_of_two().min(8);
        for item in items {
            match item {
                Item::Field(idx) => {
                    let kind = fields[idx].kind();
                    let align = kind.align();
                    max_align = max_align.max(align);
                    cursor = round_up(cursor, align);
                    field_offsets[idx] = cursor;
                    cursor += kind.size();
                }
                Item::Dummy => {
                    max_align = max_align.max(dummy_align);
                    cursor = round_up(cursor, dummy_align);
                    let canary = if policy.dummies.booby_trap {
                        Some(rng.random::<u64>())
                    } else {
                        None
                    };
                    dummies.push(DummySlot { offset: cursor, size: dummy_size, canary });
                    cursor += dummy_size;
                }
            }
        }
        let size = round_up(cursor.max(1), max_align);
        let field_aligns = fields.iter().map(|f| f.kind().align()).collect();
        LayoutPlan::with_aligns(
            info.hash(),
            field_offsets,
            field_sizes,
            field_aligns,
            dummies,
            size,
            false,
        )
    }

    /// The deterministic (non-randomized) plan for `info`.
    pub fn natural(&self, info: &ClassInfo) -> LayoutPlan {
        LayoutPlan::natural_for(info)
    }
}

fn round_up(value: u32, to: u32) -> u32 {
    debug_assert!(to.is_power_of_two());
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DummyPolicy;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_rng::rngs::StdRng;
    use polar_rng::SeedableRng;
    use std::collections::HashSet;

    fn info(fields: &[(&str, FieldKind)]) -> ClassInfo {
        let mut b = ClassDecl::builder("T");
        for (name, kind) in fields {
            b = b.field(*name, *kind);
        }
        ClassInfo::from_decl(b.build())
    }

    fn people() -> ClassInfo {
        info(&[
            ("vtable", FieldKind::VtablePtr),
            ("age", FieldKind::I32),
            ("height", FieldKind::I32),
        ])
    }

    #[test]
    fn off_policy_returns_natural() {
        let engine = LayoutEngine::new(RandomizationPolicy::off());
        let mut rng = StdRng::seed_from_u64(1);
        let plan = engine.generate(&people(), &mut rng);
        assert!(plan.is_natural());
        assert_eq!(plan.field_offsets(), &[0, 8, 12]);
    }

    #[test]
    fn generated_plans_validate() {
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(2);
        let classes = [
            people(),
            info(&[("a", FieldKind::I8)]),
            info(&[
                ("buf", FieldKind::Bytes(24)),
                ("fp", FieldKind::FnPtr),
                ("n", FieldKind::I16),
                ("m", FieldKind::I64),
            ]),
            info(&[]),
        ];
        for class in &classes {
            for _ in 0..50 {
                let plan = engine.generate(class, &mut rng);
                plan.validate().unwrap_or_else(|e| panic!("{class:?}: {e}"));
                assert!(plan.size() >= 1);
            }
        }
    }

    #[test]
    fn permutation_varies_across_allocations() {
        let engine = LayoutEngine::new(RandomizationPolicy::permute_only());
        let mut rng = StdRng::seed_from_u64(3);
        let class = info(&[
            ("a", FieldKind::I64),
            ("b", FieldKind::I64),
            ("c", FieldKind::I64),
            ("d", FieldKind::I64),
            ("e", FieldKind::I64),
        ]);
        let perms: HashSet<Vec<usize>> =
            (0..100).map(|_| engine.generate(&class, &mut rng).permutation()).collect();
        // 5! = 120 possible orders; 100 draws should hit many of them.
        assert!(perms.len() > 20, "only {} distinct permutations", perms.len());
    }

    #[test]
    fn guard_dummy_precedes_every_pointer() {
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(4);
        let class = info(&[
            ("fp", FieldKind::FnPtr),
            ("n", FieldKind::I32),
            ("p", FieldKind::Ptr),
        ]);
        for _ in 0..50 {
            let plan = engine.generate(&class, &mut rng);
            for (idx, field) in class.fields().iter().enumerate() {
                if field.kind().is_pointer() {
                    let off = plan.offset(idx);
                    let guarded = plan.dummies().iter().any(|d| {
                        d.canary.is_some() && d.offset + d.size <= off && off - (d.offset + d.size) < 8
                    });
                    assert!(guarded || off == 0 || has_adjacent_dummy(&plan, off),
                        "pointer field {idx} at {off} lacks a nearby trap: {plan}");
                }
            }
        }
    }

    fn has_adjacent_dummy(plan: &LayoutPlan, off: u32) -> bool {
        plan.dummies().iter().any(|d| d.offset + d.size == off)
    }

    #[test]
    fn dummy_count_respects_bounds() {
        let policy = RandomizationPolicy {
            permute: PermuteMode::Full,
            dummies: DummyPolicy { min: 2, max: 4, size: 8, booby_trap: false, guard_pointers: false },
        };
        let engine = LayoutEngine::new(policy);
        let mut rng = StdRng::seed_from_u64(5);
        let class = people();
        for _ in 0..50 {
            let plan = engine.generate(&class, &mut rng);
            let n = plan.dummies().len();
            assert!((2..=4).contains(&n), "dummy count {n} out of bounds");
            assert!(plan.dummies().iter().all(|d| d.canary.is_none()));
        }
    }

    #[test]
    fn cache_line_aware_keeps_groups_in_order() {
        // Fields larger than one line worth: with a 16-byte "line" the
        // groups are {a,b}, {c,d}; cross-group order must be preserved.
        let policy = RandomizationPolicy {
            permute: PermuteMode::CacheLineAware { line_size: 16 },
            dummies: DummyPolicy::none(),
        };
        let engine = LayoutEngine::new(policy);
        let mut rng = StdRng::seed_from_u64(6);
        let class = info(&[
            ("a", FieldKind::I64),
            ("b", FieldKind::I64),
            ("c", FieldKind::I64),
            ("d", FieldKind::I64),
        ]);
        for _ in 0..30 {
            let plan = engine.generate(&class, &mut rng);
            let perm = plan.permutation();
            let pos = |i: usize| perm.iter().position(|&x| x == i).unwrap();
            // Every first-group field sits before every second-group field.
            for x in [0usize, 1] {
                for y in [2usize, 3] {
                    assert!(pos(x) < pos(y), "cross-line reorder in {perm:?}");
                }
            }
        }
    }

    #[test]
    fn trapped_dummies_carry_canaries() {
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(7);
        let plan = engine.generate(&people(), &mut rng);
        assert!(!plan.dummies().is_empty());
        assert!(plan.dummies().iter().all(|d| d.canary.is_some()));
    }

    #[test]
    fn dummies_grow_object_size() {
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(8);
        let class = people();
        let plan = engine.generate(&class, &mut rng);
        assert!(plan.size() > class.size());
    }

    #[test]
    fn empty_class_still_gets_a_plan() {
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(9);
        let plan = engine.generate(&info(&[]), &mut rng);
        plan.validate().unwrap();
        assert!(plan.size() >= 1);
    }
}
