//! Compile-time OLR baseline: one randomized layout per class per binary.
//!
//! Models the state of the art POLaR improves on — the Linux kernel's
//! `randstruct`, DSLR, and RFOR (Sections II-C and VII-A of the paper).
//! The randomization is fixed at "compile time": a binary seed determines
//! every class's layout, the layout is identical for all instances of a
//! type, and it is identical across executions of the same binary. Those
//! are precisely the two weaknesses (hidden-binary assumption, determinism
//! under replay) that the per-allocation approach removes.

use std::collections::HashMap;
use std::sync::Arc;

use polar_classinfo::{ClassHash, ClassInfo};
use polar_rng::rngs::StdRng;
use polar_rng::SeedableRng;

use crate::engine::LayoutEngine;
use crate::plan::LayoutPlan;
use crate::policy::RandomizationPolicy;

/// Per-binary layout table produced by compile-time OLR.
///
/// ```
/// use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
/// use polar_layout::{RandomizationPolicy, StaticOlrTable};
///
/// let info = ClassInfo::from_decl(
///     ClassDecl::builder("sock")
///         .field("ops", FieldKind::Ptr)
///         .field("state", FieldKind::I32)
///         .field("uid", FieldKind::I32)
///         .build(),
/// );
/// let mut binary_a = StaticOlrTable::new(RandomizationPolicy::permute_only(), 1);
/// // Every instance in binary A shares one layout…
/// let p1 = binary_a.plan_for(&info);
/// let p2 = binary_a.plan_for(&info);
/// assert_eq!(p1.plan_hash(), p2.plan_hash());
/// // …and re-running binary A reproduces it exactly (the paper's
/// // "reproduction problem").
/// let mut rerun = StaticOlrTable::new(RandomizationPolicy::permute_only(), 1);
/// assert_eq!(rerun.plan_for(&info).plan_hash(), p1.plan_hash());
/// ```
#[derive(Debug)]
pub struct StaticOlrTable {
    engine: LayoutEngine,
    binary_seed: u64,
    plans: HashMap<ClassHash, Arc<LayoutPlan>>,
}

impl StaticOlrTable {
    /// Create the table for a "binary" identified by `binary_seed`.
    pub fn new(policy: RandomizationPolicy, binary_seed: u64) -> Self {
        StaticOlrTable { engine: LayoutEngine::new(policy), binary_seed, plans: HashMap::new() }
    }

    /// The binary seed (what an attacker learns by reverse-engineering
    /// the binary — with it, every layout is reconstructible).
    pub fn binary_seed(&self) -> u64 {
        self.binary_seed
    }

    /// The single layout this binary uses for `info`, generated lazily and
    /// deterministically from the binary seed and the class hash.
    pub fn plan_for(&mut self, info: &ClassInfo) -> Arc<LayoutPlan> {
        if let Some(plan) = self.plans.get(&info.hash()) {
            return Arc::clone(plan);
        }
        let mut rng = StdRng::seed_from_u64(self.binary_seed ^ info.hash().0);
        let plan = Arc::new(self.engine.generate(info, &mut rng));
        self.plans.insert(info.hash(), Arc::clone(&plan));
        plan
    }

    /// Number of classes randomized so far.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether any class has been randomized yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterate over the per-class plans generated so far (metadata
    /// accounting walks this; the table is memory like any other).
    pub fn iter(&self) -> impl Iterator<Item = &Arc<LayoutPlan>> {
        self.plans.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};

    fn class(n: usize) -> ClassInfo {
        let mut b = ClassDecl::builder(format!("C{n}"));
        for i in 0..6 {
            b = b.field(format!("f{i}"), FieldKind::I64);
        }
        ClassInfo::from_decl(b.build())
    }

    #[test]
    fn same_binary_same_layout_for_all_instances() {
        let info = class(0);
        let mut table = StaticOlrTable::new(RandomizationPolicy::permute_only(), 42);
        let plans: Vec<_> = (0..10).map(|_| table.plan_for(&info)).collect();
        assert!(plans.windows(2).all(|w| w[0].plan_hash() == w[1].plan_hash()));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn different_binaries_diversify() {
        let info = class(0);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut table = StaticOlrTable::new(RandomizationPolicy::permute_only(), seed);
            seen.insert(table.plan_for(&info).plan_hash());
        }
        assert!(seen.len() > 5, "binary diversity too low: {}", seen.len());
    }

    #[test]
    fn rerunning_the_binary_reproduces_layouts() {
        let info = class(1);
        let mut run1 = StaticOlrTable::new(RandomizationPolicy::default(), 7);
        let mut run2 = StaticOlrTable::new(RandomizationPolicy::default(), 7);
        assert_eq!(run1.plan_for(&info).plan_hash(), run2.plan_for(&info).plan_hash());
    }

    #[test]
    fn layouts_are_per_class() {
        let mut table = StaticOlrTable::new(RandomizationPolicy::permute_only(), 3);
        let a = table.plan_for(&class(0));
        let b = table.plan_for(&class(1));
        assert_ne!(a.class(), b.class());
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }
}
