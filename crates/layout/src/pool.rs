//! Per-class plan pools: the allocation fast path (paper §V-B).
//!
//! Generating a fresh [`LayoutPlan`] on every `olr_malloc` — shuffle,
//! dummy weaving, canary draws, interner probe — is what makes polar
//! allocation ~8x slower than static OLR. §V-B's observation is that the
//! *generation* cost can be amortized without giving up per-allocation
//! diversity: keep a small ring of pregenerated, interned plans per
//! class, draw one with a single random index, and regenerate entries in
//! batch / in the background of the draw cadence.
//!
//! [`PoolPolicy`] makes the entropy-vs-speed trade explicit:
//!
//! * [`DrawMode::Sampled`] — draw with replacement from a `size`-entry
//!   pool. Each allocation costs one buffered-RNG index plus an `Arc`
//!   clone; every `refill_batch` draws one ring entry is regenerated
//!   (round-robin churn) so the pool contents keep rotating. Two
//!   consecutive same-class allocations share a layout with probability
//!   ≈ `1/size` — measurable with the estimator in
//!   `crates/attacks/src/diversity.rs`.
//! * [`DrawMode::Unique`] — every allocation consumes a distinct
//!   pregenerated plan; the pool is refilled `refill_batch` at a time
//!   when it runs dry. Diversity is identical to the unpooled path (one
//!   fresh generation per allocation, amortized in batches); only the
//!   batching locality is bought.
//!
//! Pools interact with the [`PlanInterner`] exactly like the unpooled
//! path: every generated plan is interned, so pooled and unpooled plans
//! have identical metadata semantics (shared access tables, dedup
//! accounting, canary sharing across structurally equal plans).

use std::collections::HashMap;
use std::mem::size_of;
use std::sync::Arc;

use polar_classinfo::{ClassHash, ClassInfo};
use polar_rng::{Rng, RngExt};

use crate::engine::LayoutEngine;
use crate::intern::PlanInterner;
use crate::plan::LayoutPlan;

/// How allocations draw from a class's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrawMode {
    /// Consume a distinct pregenerated plan per allocation; regenerate
    /// the pool `refill_batch` at a time when it runs dry. Per-allocation
    /// entropy identical to the unpooled path.
    Unique,
    /// Draw with replacement via one random index; churn one entry every
    /// `refill_batch` draws. P(two consecutive same-class allocations
    /// share a layout) ≈ `1/size`.
    Sampled,
}

/// The entropy-vs-speed knob for the allocation fast path.
///
/// `size == 0` (see [`PoolPolicy::disabled`]) turns pooling off: the
/// runtime falls back to one fresh generation per allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPolicy {
    /// Ring capacity per class (distinct pregenerated plans kept live).
    pub size: usize,
    /// Generation batch: how many plans are (re)generated per refill
    /// event, and (in `Sampled` mode) the churn period in draws.
    pub refill_batch: usize,
    /// Draw discipline; see [`DrawMode`].
    pub draw: DrawMode,
}

impl Default for PoolPolicy {
    /// The measured default: 32-entry sampled ring, refilled 16 at a
    /// time. Consecutive-share probability ≈ 1/32 ≈ 3%, amortized
    /// generation cost ≈ 1/16 of the unpooled path.
    fn default() -> Self {
        PoolPolicy {
            size: 32,
            refill_batch: 16,
            draw: DrawMode::Sampled,
        }
    }
}

impl PoolPolicy {
    /// Pooling off: every allocation generates a fresh plan (the
    /// pre-fast-path behaviour).
    pub fn disabled() -> Self {
        PoolPolicy {
            size: 0,
            refill_batch: 0,
            draw: DrawMode::Unique,
        }
    }

    /// A sampled pool of `size` entries churned/refilled `refill_batch`
    /// at a time.
    pub fn sampled(size: usize, refill_batch: usize) -> Self {
        PoolPolicy {
            size,
            refill_batch,
            draw: DrawMode::Sampled,
        }
    }

    /// A unique-draw pool refilled `batch` at a time.
    pub fn unique(batch: usize) -> Self {
        PoolPolicy {
            size: batch,
            refill_batch: batch,
            draw: DrawMode::Unique,
        }
    }

    /// Whether the pool path is active at all.
    pub fn enabled(&self) -> bool {
        self.size > 0 && self.refill_batch > 0
    }

    /// Expected probability that two consecutive same-class allocations
    /// draw the same pool slot (structural plan collisions add a little
    /// on top for tiny classes). `Unique` mode never re-serves a slot.
    pub fn expected_consecutive_share(&self) -> f64 {
        match self.draw {
            DrawMode::Unique => 0.0,
            DrawMode::Sampled => 1.0 / self.size.max(1) as f64,
        }
    }
}

/// Draw/refill counters, mirrored into `RuntimeStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Draws served from the ring without generating a plan inline.
    pub hits: u64,
    /// Refill events (batch fills and churn regenerations).
    pub refills: u64,
    /// Total plans generated on behalf of pools.
    pub generated: u64,
}

/// One class's ring of pregenerated plans.
#[derive(Debug, Clone, Default)]
struct ClassPool {
    plans: Vec<Arc<LayoutPlan>>,
    /// `Unique` mode: next unconsumed entry.
    cursor: usize,
    /// `Sampled` mode: total draws (drives the churn cadence).
    draws: u64,
    /// `Sampled` mode: next ring entry to regenerate (round-robin).
    victim: usize,
}

/// The per-class pool registry the runtime owns.
///
/// Lookup is a one-entry inline cache (allocation sites overwhelmingly
/// repeat the same class back-to-back) backed by a `ClassHash` map.
#[derive(Debug, Clone, Default)]
pub struct PlanPools {
    policy: PoolPolicy,
    pools: Vec<ClassPool>,
    index: HashMap<ClassHash, u32>,
    last: Option<(ClassHash, u32)>,
    stats: PoolStats,
}

impl PlanPools {
    /// An empty registry under `policy`.
    pub fn new(policy: PoolPolicy) -> Self {
        PlanPools {
            policy,
            ..Self::default()
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Draw/refill counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of classes with a live pool.
    pub fn class_count(&self) -> usize {
        self.pools.len()
    }

    /// Current ring occupancy for `class` (0 if never drawn from).
    pub fn pool_len(&self, class: ClassHash) -> usize {
        self.index
            .get(&class)
            .map_or(0, |&id| self.pools[id as usize].plans.len())
    }

    /// Bytes of pool bookkeeping (ring slots holding `Arc` handles plus
    /// the class index). The plans themselves are interner-owned and
    /// accounted for there.
    pub fn metadata_bytes(&self) -> usize {
        let rings: usize = self
            .pools
            .iter()
            .map(|p| p.plans.capacity() * size_of::<Arc<LayoutPlan>>() + size_of::<ClassPool>())
            .sum();
        rings + self.index.len() * (size_of::<ClassHash>() + size_of::<u32>())
    }

    /// Draw a plan for `info`: the pooled replacement for
    /// `interner.intern(engine.generate(info, rng))`.
    ///
    /// All randomness flows through `rng`, so for a fixed seed the draw
    /// sequence — and every plan it returns — is deterministic.
    pub fn draw<R: Rng + ?Sized>(
        &mut self,
        info: &ClassInfo,
        engine: &LayoutEngine,
        interner: &mut PlanInterner,
        rng: &mut R,
    ) -> Arc<LayoutPlan> {
        debug_assert!(self.policy.enabled(), "draw() on a disabled pool");
        let id = self.class_pool_id(info.hash());
        self.draw_at(id, info, engine, interner, rng)
    }

    /// Draw `k` plans for `info` into `out`: stream-equivalent to `k`
    /// sequential [`draw`](PlanPools::draw) calls — identical RNG
    /// consumption, identical returned sequence — with the class lookup
    /// hoisted out of the loop. The sharded runtime's magazine
    /// front-end refills with this, so batching does not perturb the
    /// per-thread plan streams the determinism tests pin down.
    pub fn draw_batch<R: Rng + ?Sized>(
        &mut self,
        info: &ClassInfo,
        engine: &LayoutEngine,
        interner: &mut PlanInterner,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Arc<LayoutPlan>>,
    ) {
        debug_assert!(self.policy.enabled(), "draw_batch() on a disabled pool");
        let id = self.class_pool_id(info.hash());
        out.reserve(k);
        for _ in 0..k {
            let plan = self.draw_at(id, info, engine, interner, rng);
            out.push(plan);
        }
    }

    /// Pool id for `class`, creating an empty ring on first sight, with
    /// the one-entry inline cache in front.
    #[inline]
    fn class_pool_id(&mut self, hash: ClassHash) -> u32 {
        if let Some((cached, id)) = self.last {
            if cached == hash {
                return id;
            }
        }
        let id = match self.index.get(&hash) {
            Some(&id) => id,
            None => {
                let id = self.pools.len() as u32;
                self.pools.push(ClassPool::default());
                self.index.insert(hash, id);
                id
            }
        };
        self.last = Some((hash, id));
        id
    }

    /// One draw from an already-resolved class pool (the body shared by
    /// [`draw`](PlanPools::draw) and [`draw_batch`](PlanPools::draw_batch)).
    fn draw_at<R: Rng + ?Sized>(
        &mut self,
        id: u32,
        info: &ClassInfo,
        engine: &LayoutEngine,
        interner: &mut PlanInterner,
        rng: &mut R,
    ) -> Arc<LayoutPlan> {
        let policy = self.policy;
        let pool = &mut self.pools[id as usize];
        match policy.draw {
            DrawMode::Unique => {
                if pool.cursor == pool.plans.len() {
                    pool.plans.clear();
                    pool.cursor = 0;
                    let batch = policy.refill_batch.min(policy.size).max(1);
                    for _ in 0..batch {
                        pool.plans.push(interner.intern(engine.generate(info, rng)));
                    }
                    self.stats.refills += 1;
                    self.stats.generated += batch as u64;
                } else {
                    self.stats.hits += 1;
                }
                let plan = Arc::clone(&pool.plans[pool.cursor]);
                pool.cursor += 1;
                plan
            }
            DrawMode::Sampled => {
                if pool.plans.len() < policy.size {
                    // Warm-up: batch-fill toward capacity.
                    let batch = policy.refill_batch.max(1).min(policy.size - pool.plans.len());
                    for _ in 0..batch {
                        pool.plans.push(interner.intern(engine.generate(info, rng)));
                    }
                    self.stats.refills += 1;
                    self.stats.generated += batch as u64;
                } else if pool.draws % policy.refill_batch as u64 == 0 {
                    // Steady state: churn one ring entry every
                    // `refill_batch` draws so pool contents keep moving.
                    let victim = pool.victim;
                    pool.plans[victim] = interner.intern(engine.generate(info, rng));
                    pool.victim = (victim + 1) % pool.plans.len();
                    self.stats.refills += 1;
                    self.stats.generated += 1;
                } else {
                    self.stats.hits += 1;
                }
                pool.draws += 1;
                let idx = rng.random_range(0..pool.plans.len());
                Arc::clone(&pool.plans[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RandomizationPolicy;
    use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
    use polar_rng::{rngs::StdRng, SeedableRng};

    fn probe() -> ClassInfo {
        ClassInfo::from_decl(
            ClassDecl::builder("Probe")
                .field("vtable", FieldKind::VtablePtr)
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I64)
                .field("c", FieldKind::I32)
                .field("d", FieldKind::I32)
                .build(),
        )
    }

    fn draw_hashes(policy: PoolPolicy, seed: u64, n: usize) -> Vec<u64> {
        let info = probe();
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut interner = PlanInterner::new();
        let mut pools = PlanPools::new(policy);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| pools.draw(&info, &engine, &mut interner, &mut rng).plan_hash().0)
            .collect()
    }

    #[test]
    fn draw_batch_matches_sequential_draws() {
        for policy in [PoolPolicy::default(), PoolPolicy::unique(8), PoolPolicy::sampled(4, 2)] {
            let info = probe();
            let engine = LayoutEngine::new(RandomizationPolicy::default());
            let (mut ia, mut ib) = (PlanInterner::new(), PlanInterner::new());
            let (mut pa, mut pb) = (PlanPools::new(policy), PlanPools::new(policy));
            let (mut ra, mut rb) = (StdRng::seed_from_u64(42), StdRng::seed_from_u64(42));
            let sequential: Vec<u64> = (0..50)
                .map(|_| pa.draw(&info, &engine, &mut ia, &mut ra).plan_hash().0)
                .collect();
            let mut batched = Vec::new();
            pb.draw_batch(&info, &engine, &mut ib, &mut rb, 32, &mut batched);
            pb.draw_batch(&info, &engine, &mut ib, &mut rb, 18, &mut batched);
            let batched: Vec<u64> = batched.iter().map(|p| p.plan_hash().0).collect();
            assert_eq!(sequential, batched, "policy {policy:?} diverged");
            assert_eq!(pa.stats(), pb.stats(), "policy {policy:?} stats diverged");
        }
    }

    #[test]
    fn sampled_draws_are_deterministic_per_seed() {
        let a = draw_hashes(PoolPolicy::default(), 77, 100);
        let b = draw_hashes(PoolPolicy::default(), 77, 100);
        let c = draw_hashes(PoolPolicy::default(), 78, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_pool_amortizes_generation() {
        let info = probe();
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut interner = PlanInterner::new();
        let mut pools = PlanPools::new(PoolPolicy::sampled(32, 16));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            pools.draw(&info, &engine, &mut interner, &mut rng);
        }
        let stats = pools.stats();
        // 32 warm-up generations plus ~1000/16 churn regenerations.
        assert!(stats.generated < 120, "generated {}", stats.generated);
        assert!(stats.hits > 850, "hits {}", stats.hits);
        assert!(stats.refills > 0);
        assert_eq!(pools.pool_len(info.hash()), 32);
    }

    #[test]
    fn unique_mode_consumes_distinct_generations() {
        let info = probe();
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut interner = PlanInterner::new();
        let mut pools = PlanPools::new(PoolPolicy::unique(8));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..64 {
            pools.draw(&info, &engine, &mut interner, &mut rng);
        }
        let stats = pools.stats();
        // 64 draws at batch 8: 8 refills, one generation per draw.
        assert_eq!(stats.generated, 64);
        assert_eq!(stats.refills, 8);
        assert_eq!(stats.hits, 64 - 8);
    }

    #[test]
    fn sampled_pool_preserves_within_run_diversity() {
        let hashes = draw_hashes(PoolPolicy::default(), 9, 64);
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        // Sampling 64 times from a 32-ring: expect ~28 distinct layouts.
        assert!(distinct.len() > 16, "only {} distinct", distinct.len());
    }

    #[test]
    fn churn_rotates_pool_contents() {
        // After many draws the ring should no longer equal its warm-up
        // contents: churn regenerated every slot at least once.
        let info = probe();
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut interner = PlanInterner::new();
        let mut pools = PlanPools::new(PoolPolicy::sampled(4, 2));
        let mut rng = StdRng::seed_from_u64(13);
        pools.draw(&info, &engine, &mut interner, &mut rng);
        let warm: Vec<u64> = pools.pools[0].plans.iter().map(|p| p.plan_hash().0).collect();
        for _ in 0..64 {
            pools.draw(&info, &engine, &mut interner, &mut rng);
        }
        let now: Vec<u64> = pools.pools[0].plans.iter().map(|p| p.plan_hash().0).collect();
        assert_ne!(warm, now);
    }

    #[test]
    fn pools_track_multiple_classes_through_inline_cache() {
        let a = probe();
        let b = ClassInfo::from_decl(
            ClassDecl::builder("Other")
                .field("x", FieldKind::I64)
                .field("y", FieldKind::Ptr)
                .build(),
        );
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut interner = PlanInterner::new();
        let mut pools = PlanPools::new(PoolPolicy::default());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let pa = pools.draw(&a, &engine, &mut interner, &mut rng);
            let pb = pools.draw(&b, &engine, &mut interner, &mut rng);
            assert_eq!(pa.field_count(), 5);
            assert_eq!(pb.field_count(), 2);
        }
        assert_eq!(pools.class_count(), 2);
        assert!(pools.metadata_bytes() > 0);
    }

    #[test]
    fn disabled_policy_reports_inactive() {
        assert!(!PoolPolicy::disabled().enabled());
        assert!(PoolPolicy::default().enabled());
        assert_eq!(PoolPolicy::default().expected_consecutive_share(), 1.0 / 32.0);
        assert_eq!(PoolPolicy::unique(8).expected_consecutive_share(), 0.0);
    }
}
