//! Entropy accounting for randomized layouts.
//!
//! The security argument of OLR-style defenses is probabilistic: an
//! attacker who must guess where a member lives succeeds with probability
//! `2^-H` per attempt, where `H` is the layout entropy in bits. This
//! module computes the analytic entropy of a class under a policy and
//! offers an empirical estimator used by the ablation experiments.

use std::collections::HashSet;

use polar_classinfo::ClassInfo;
use polar_rng::Rng;

use crate::engine::LayoutEngine;
use crate::policy::{PermuteMode, RandomizationPolicy};

/// Natural log of `n!` computed by summation (exact enough for n ≤ a few
/// thousand fields).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// log2 of `n!`.
fn log2_factorial(n: u64) -> f64 {
    ln_factorial(n) / std::f64::consts::LN_2
}

/// log2 of the binomial coefficient C(n, k).
fn log2_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k)
}

/// Analytic layout entropy (bits) of `info` under `policy`.
///
/// Counts the distinct *orderings* the engine can emit:
///
/// * permutation of the real fields — `log2(n!)` for full mode, the sum of
///   per-group `log2(k!)` terms for cache-line-aware mode, `0` when off;
/// * dummy placement — for each admissible dummy count `d`, dummies can
///   occupy any of `C(slots + d, d)` interleavings; counts are averaged
///   over the uniform choice of `d` in `[min, max]`.
///
/// This is an upper bound on attacker uncertainty about a *specific*
/// member's location (distinct orderings can place one member at the same
/// offset), and it is exactly the quantity DSLR-style analyses report.
///
/// ```
/// use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
/// use polar_layout::{entropy, RandomizationPolicy};
///
/// let mut b = ClassDecl::builder("T");
/// for i in 0..8 {
///     b = b.field(format!("f{i}"), FieldKind::I64);
/// }
/// let info = ClassInfo::from_decl(b.build());
/// let bits = entropy::layout_entropy_bits(&info, &RandomizationPolicy::permute_only());
/// assert!((bits - 15.29).abs() < 0.01); // log2(8!) ≈ 15.299
/// ```
pub fn layout_entropy_bits(info: &ClassInfo, policy: &RandomizationPolicy) -> f64 {
    let n = info.field_count() as u64;
    let perm_bits = match policy.permute {
        PermuteMode::Off => 0.0,
        PermuteMode::Full => log2_factorial(n),
        PermuteMode::CacheLineAware { line_size } => {
            // Reconstruct the greedy grouping the engine uses.
            let mut bits = 0.0;
            let mut group_len: u64 = 0;
            let mut used: u32 = 0;
            for f in info.fields() {
                let size = f.kind().size();
                if used + size > line_size && group_len > 0 {
                    bits += log2_factorial(group_len);
                    group_len = 0;
                    used = 0;
                }
                group_len += 1;
                used += size;
            }
            bits + log2_factorial(group_len)
        }
    };
    let dummy_bits = if policy.dummies.max == 0 {
        0.0
    } else {
        // Guards are deterministic given the permutation; only the free
        // dummies add placement entropy.
        let counts = policy.dummies.min..=policy.dummies.max;
        let mut total = 0.0f64;
        let mut n_counts = 0u32;
        for d in counts {
            total += log2_choose(n + u64::from(d), u64::from(d)).max(0.0);
            n_counts += 1;
        }
        let avg = if n_counts > 0 { total / f64::from(n_counts) } else { 0.0 };
        // Count choice itself adds log2(max - min + 1) bits.
        avg + f64::from(policy.dummies.max - policy.dummies.min + 1).log2()
    };
    perm_bits + dummy_bits
}

/// Empirical estimate: how many structurally distinct plans appear over
/// `trials` generations. Saturates at the true layout count for small
/// classes; used by tests and the ablation bench.
pub fn empirical_distinct_plans<R: Rng + ?Sized>(
    engine: &LayoutEngine,
    info: &ClassInfo,
    trials: usize,
    rng: &mut R,
) -> usize {
    let mut seen = HashSet::new();
    for _ in 0..trials {
        seen.insert(engine.generate(info, rng).plan_hash());
    }
    seen.len()
}

/// Probability that a single guess of one member's offset is correct,
/// estimated empirically: the highest observed frequency of any offset for
/// `field` over `trials` plans. This is the success probability of the
/// paper's "attacker writes at the expected offset" model.
pub fn guess_success_probability<R: Rng + ?Sized>(
    engine: &LayoutEngine,
    info: &ClassInfo,
    field: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for _ in 0..trials {
        let plan = engine.generate(info, rng);
        *counts.entry(plan.offset(field)).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0) as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_rng::rngs::StdRng;
    use polar_rng::SeedableRng;

    fn uniform_class(n: usize) -> ClassInfo {
        let mut b = ClassDecl::builder(format!("U{n}"));
        for i in 0..n {
            b = b.field(format!("f{i}"), FieldKind::I64);
        }
        ClassInfo::from_decl(b.build())
    }

    #[test]
    fn factorial_log_identities() {
        assert_eq!(log2_factorial(0), 0.0);
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(4) - (24f64).log2()).abs() < 1e-9);
        assert!((log2_choose(5, 2) - (10f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn permute_only_entropy_is_log2_factorial() {
        let info = uniform_class(6);
        let bits = layout_entropy_bits(&info, &RandomizationPolicy::permute_only());
        assert!((bits - log2_factorial(6)).abs() < 1e-9);
    }

    #[test]
    fn off_policy_has_zero_entropy() {
        let info = uniform_class(6);
        assert_eq!(layout_entropy_bits(&info, &RandomizationPolicy::off()), 0.0);
    }

    #[test]
    fn dummies_increase_entropy() {
        let info = uniform_class(6);
        let without = layout_entropy_bits(&info, &RandomizationPolicy::permute_only());
        let with = layout_entropy_bits(&info, &RandomizationPolicy::default());
        assert!(with > without);
    }

    #[test]
    fn cache_line_mode_has_less_entropy_than_full() {
        let info = uniform_class(16); // 128 bytes of i64 fields = 2 lines
        let full = layout_entropy_bits(&info, &RandomizationPolicy::permute_only());
        let partial = layout_entropy_bits(&info, &RandomizationPolicy::randstruct_like());
        assert!(partial < full);
        assert!(partial > 0.0);
    }

    #[test]
    fn empirical_distinct_plans_saturates_for_tiny_class() {
        let info = uniform_class(2);
        let engine = LayoutEngine::new(RandomizationPolicy::permute_only());
        let mut rng = StdRng::seed_from_u64(1);
        let distinct = empirical_distinct_plans(&engine, &info, 300, &mut rng);
        assert_eq!(distinct, 2);
    }

    #[test]
    fn guess_probability_drops_with_field_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let engine = LayoutEngine::new(RandomizationPolicy::permute_only());
        let p_small = guess_success_probability(&engine, &uniform_class(2), 0, 400, &mut rng);
        let p_large = guess_success_probability(&engine, &uniform_class(8), 0, 400, &mut rng);
        assert!(p_small > 0.4 && p_small < 0.6, "p_small = {p_small}");
        assert!(p_large < 0.25, "p_large = {p_large}");
    }
}
