//! Stateless small-class permutations (SPAM-style keyed Feistel).
//!
//! For the dominant population of small objects (≤ 8 fields), storing a
//! full randomized [`LayoutPlan`] per allocation is overkill: the
//! permutation itself can be *derived* from identity the runtime already
//! tracks — the heap block's (slot id, generation) pair — keyed by a
//! per-process epoch key, in the style of SPAM's keyed index
//! transformation. The runtime then stores only the 64-bit key; the plan
//! for any live or historical allocation is recomputable on demand, and
//! the set of distinct derived plans is bounded by the (small) number of
//! field permutations, which caps interner growth.
//!
//! The derivation is a 4-round balanced Feistel network over a 4-bit
//! index domain (16 ≥ 8 fields) with cycle-walking to restrict the
//! bijection to `[0, n)`. Feistel networks are bijective for *any* round
//! function, so every (key, generation, slot) triple yields a valid
//! permutation; cycle-walking preserves bijectivity because it walks the
//! orbit of a permutation until it re-enters the target domain.
//!
//! # The fast path
//!
//! [`permute_index`]/[`stateless_plan`] are the *reference* derivation —
//! kept byte-for-byte as introduced with the stateless mode, and what
//! the property tests compare against. The allocation hot path never
//! calls them:
//!
//! * [`RoundKeys`] interns the per-epoch-key round-key schedule once per
//!   runtime. Per (generation, slot) there are only `ROUNDS × 2^HALF_BITS
//!   = 16` distinct round-function outputs, so one batch of 16
//!   independent `mix64` calls (instruction-level parallel — no serial
//!   Feistel dependency) yields a lookup table that turns the whole
//!   16-point Feistel mapping into table walks.
//! * [`PermBlock`] buffers derived permutation codes for a run of
//!   consecutive generations of one slot, `BufferedRng`-style: block
//!   reuse (malloc/free churn on one slot) pays one batched refill per
//!   [`PERM_BLOCK_RUN`] allocations.
//! * A permutation is summarized as a packed [`PermCode`] (4 bits per
//!   position), which the runtime uses as the key of a tiny per-class
//!   plan cache — repeated codes reuse one interned [`LayoutPlan`] `Arc`
//!   with no plan construction, hashing, or interner probe.
//!
//! # Virtual booby traps
//!
//! Derived plans optionally interleave *virtual trap slots* between the
//! permuted fields: 8-byte canary-carrying dummies whose count,
//! interleave positions, and canary values are all pure functions of
//! (epoch key, permutation code) — and therefore of the same
//! (generation, slot, epoch) identity the permutation derives from. No
//! per-object trap state is stored; a misaligned probe that overlaps a
//! trap slot is detectable by rederiving the geometry from the identity
//! alone. This closes the trade the original permute-only mode made
//! (metadata savings at the price of zero trap coverage), which is why
//! the stateless path is now the runtime's *default* for small classes
//! ([`StatelessPolicy`]).

use polar_classinfo::ClassInfo;

use crate::plan::{DummySlot, LayoutPlan};

/// Largest field count served by the stateless path.
pub const STATELESS_MAX_FIELDS: usize = 8;

/// Feistel domain: 4-bit indices, two 2-bit halves.
const DOMAIN: u32 = 16;
const HALF_BITS: u32 = 2;
const HALF_MASK: u32 = (1 << HALF_BITS) - 1;
const ROUNDS: u32 = 4;

/// Maximum virtual trap slots interleaved into a trapped stateless plan
/// (the derived count is 1..=this, mirroring the stateful dummy policy).
pub const STATELESS_TRAP_MAX: u32 = 3;

/// Size (and alignment) of one virtual trap slot, in bytes.
pub const TRAP_SLOT_BYTES: u32 = 8;

/// Generations covered by one derivation block (a cache line of codes).
pub const PERM_BLOCK_RUN: usize = 8;

/// The per-process secret keying every stateless permutation. Derived
/// from the runtime seed; leaking a single object's layout does not
/// reveal the key (the round function is a one-way mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochKey(pub u64);

/// A derived permutation packed 4 bits per position (`perm[p]` in bits
/// `4p..4p+4`): the identity of a stateless layout, used as the plan
/// cache key. Fits `u32` because `STATELESS_MAX_FIELDS ≤ 8`.
pub type PermCode = u32;

/// Which classes the runtime serves statelessly — the config switch the
/// allocation path consults next to [`PoolPolicy`](crate::PoolPolicy).
///
/// The default is **on** with virtual traps for classes at or under
/// [`STATELESS_MAX_FIELDS`] fields: small classes get keyed-permutation
/// layouts with derived trap slots and near-zero stored metadata, while
/// larger classes keep the pooled stateful path. [`StatelessPolicy::off`]
/// restores pooled plans for every class; [`StatelessPolicy::permute_only`]
/// is the original trap-free ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatelessPolicy {
    /// Master switch for the stateless path.
    pub enabled: bool,
    /// Classes with at most this many fields derive their layouts
    /// (clamped to [`STATELESS_MAX_FIELDS`]).
    pub max_fields: usize,
    /// Interleave derived virtual trap slots between the permuted
    /// fields. Off = the original permute-only SPAM trade.
    pub virtual_traps: bool,
}

impl StatelessPolicy {
    /// Stateless-by-default with virtual traps (the runtime default).
    pub fn on() -> Self {
        StatelessPolicy {
            enabled: true,
            max_fields: STATELESS_MAX_FIELDS,
            virtual_traps: true,
        }
    }

    /// Every class takes the stateful (pooled) path.
    pub fn off() -> Self {
        StatelessPolicy { enabled: false, ..Self::on() }
    }

    /// Stateless without traps: the original space/detection trade-off,
    /// kept as a measured ablation.
    pub fn permute_only() -> Self {
        StatelessPolicy { virtual_traps: false, ..Self::on() }
    }

    /// Whether a class with `field_count` fields is served statelessly.
    #[inline]
    pub fn applies_to(&self, field_count: usize) -> bool {
        self.enabled && field_count <= self.max_fields.min(STATELESS_MAX_FIELDS)
    }
}

impl Default for StatelessPolicy {
    fn default() -> Self {
        Self::on()
    }
}

/// The nibble-SWAR start state: lane `i` of the `u64` holds `i`.
const SWAR_IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

/// One Feistel round advanced across all 16 domain points at once.
///
/// `state` carries `(left << 2) | right` for every point in 4-bit
/// lanes. The round function — a 2-bit lookup `f[right]` — becomes a
/// branch-free 4-way mux in XOR form over broadcast constants
/// (`f[r] = c0 ^ (r0 & c1) ^ (r1 & c2) ^ (r0 & r1 & c3)`), so a round
/// costs 4 independent `mix64` calls plus ~15 register ops with zero
/// loads. Byte-identity with the reference Feistel is property-tested.
#[inline]
fn swar_round(rk_row: &[u64; (HALF_MASK + 1) as usize], rot: u64, state: u64) -> u64 {
    /// Bit 0 of every nibble lane.
    const LANES: u64 = 0x1111_1111_1111_1111;
    /// Bits 0-1 of every nibble lane (the `right` half).
    const TWO: u64 = 0x3333_3333_3333_3333;
    let f0 = mix64(rk_row[0] ^ rot) & HALF_MASK as u64;
    let f1 = mix64(rk_row[1] ^ rot) & HALF_MASK as u64;
    let f2 = mix64(rk_row[2] ^ rot) & HALF_MASK as u64;
    let f3 = mix64(rk_row[3] ^ rot) & HALF_MASK as u64;
    let c0 = f0.wrapping_mul(LANES);
    let c1 = (f0 ^ f1).wrapping_mul(LANES);
    let c2 = (f0 ^ f2).wrapping_mul(LANES);
    let c3 = (f0 ^ f1 ^ f2 ^ f3).wrapping_mul(LANES);
    let right = state & TWO;
    let left = (state >> HALF_BITS) & TWO;
    // Widen each index bit to a 2-bit lane mask (×3).
    let m0 = (right & LANES).wrapping_mul(3);
    let m1 = ((right >> 1) & LANES).wrapping_mul(3);
    let fval = c0 ^ (m0 & c1) ^ (m1 & c2) ^ (m0 & m1 & c3);
    // (left', right') = (right, left ^ f[right]) in every lane.
    (right << HALF_BITS) | (left ^ fval)
}

/// SplitMix64's finalizer: a cheap 64-bit avalanche mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Collapse (generation, slot) into the Feistel tweak. Injective for
/// generations below 2^32, and `mix64` in the round function avalanches
/// the combined value anyway.
#[inline]
fn tweak(generation: u64, slot: u32) -> u64 {
    mix64((generation << 32) ^ generation >> 32).wrapping_add(slot_mix(slot))
}

/// The slot half of the tweak, separable so a generation-run refill
/// computes it once.
#[inline]
fn slot_mix(slot: u32) -> u64 {
    mix64(slot as u64 ^ 0xA076_1D64_78BD_642F)
}

/// The Feistel round function: 2 bits of keyed mix.
#[inline]
fn round_f(key: u64, tweak: u64, round: u32, half: u32) -> u32 {
    let x = key
        ^ tweak.rotate_left(round * 8)
        ^ ((round as u64) << 32)
        ^ (half as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mix64(x) & HALF_MASK as u64) as u32
}

/// One pass of the 4-round network: a bijection on `[0, 16)`.
#[inline]
fn feistel16(key: u64, tweak: u64, index: u32) -> u32 {
    let mut left = (index >> HALF_BITS) & HALF_MASK;
    let mut right = index & HALF_MASK;
    for round in 0..ROUNDS {
        let next = left ^ round_f(key, tweak, round, right);
        left = right;
        right = next & HALF_MASK;
    }
    (left << HALF_BITS) | right
}

/// The keyed index permutation: maps `index ∈ [0, n)` to a position in
/// `[0, n)`, bijectively, as a pure function of (key, generation, slot).
///
/// Cycle-walking: `feistel16` permutes `[0, 16)`; iterating it from a
/// point `< n` must eventually re-enter `[0, n)` (the orbit returns to
/// its start), and distinct starts land on distinct results, so the
/// restriction is itself a bijection on `[0, n)`.
///
/// This is the reference derivation; [`RoundKeys::perm_code`] is the
/// batched equivalent the hot path uses, tested byte-identical.
///
/// # Panics
///
/// Debug-asserts `n ≤ 16` and `index < n`.
pub fn permute_index(key: EpochKey, generation: u64, slot: u32, n: usize, index: usize) -> usize {
    debug_assert!(n >= 1 && n <= DOMAIN as usize);
    debug_assert!(index < n);
    let t = tweak(generation, slot);
    let mut x = index as u32;
    loop {
        x = feistel16(key.0, t, x);
        if (x as usize) < n {
            return x as usize;
        }
    }
}

/// The full derived permutation for an `n`-field class: `perm[p]` is the
/// field placed at sequential position `p`.
pub fn stateless_perm(key: EpochKey, generation: u64, slot: u32, n: usize) -> Vec<usize> {
    (0..n).map(|p| permute_index(key, generation, slot, n, p)).collect()
}

// ---------------------------------------------------------------------
// Round-key interning + batched derivation (the hot path).
// ---------------------------------------------------------------------

/// The interned per-epoch-key Feistel round-key schedule.
///
/// `round_f` xors the key with per-(round, half) constants before the
/// mix; those combined constants are fixed for the life of an epoch key,
/// so they are hoisted here — one table per runtime, no key derivation
/// per allocation. Deriving one (generation, slot) identity then costs a
/// single 16-entry table of *independent* `mix64` calls (full ILP)
/// instead of 4 serially-dependent rounds per domain point.
#[derive(Debug, Clone)]
pub struct RoundKeys {
    key: EpochKey,
    /// `rk[round][half] = key ^ (round << 32) ^ half·φ` — the full
    /// `round_f` input minus the tweak.
    rk: [[u64; (HALF_MASK + 1) as usize]; ROUNDS as usize],
}

impl RoundKeys {
    /// Precompute the schedule for `key`.
    pub fn new(key: EpochKey) -> Self {
        let mut rk = [[0u64; (HALF_MASK + 1) as usize]; ROUNDS as usize];
        for (round, row) in rk.iter_mut().enumerate() {
            for (half, cell) in row.iter_mut().enumerate() {
                *cell = key.0
                    ^ ((round as u64) << 32)
                    ^ (half as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        RoundKeys { key, rk }
    }

    /// The epoch key this schedule was built from.
    pub fn key(&self) -> EpochKey {
        self.key
    }

    /// The complete 16-point Feistel mapping for one (generation, slot)
    /// identity: `map[i] = feistel16(key, tweak, i)`, byte-identical to
    /// the reference, from 16 independent `mix64` calls plus table walks.
    #[inline]
    pub fn mapping(&self, generation: u64, slot: u32) -> [u8; DOMAIN as usize] {
        let packed = self.mapping_for_tweak(tweak(generation, slot));
        let mut map = [0u8; DOMAIN as usize];
        for (i, out) in map.iter_mut().enumerate() {
            *out = ((packed >> (4 * i)) & 0xF) as u8;
        }
        map
    }

    /// The 16-point mapping packed 4 bits per domain point (`map[i]` in
    /// bits `4i..4i+4`), evaluated nibble-SWAR: one `u64` carries the
    /// `(left << 2) | right` state of all 16 domain points, and each
    /// round advances every lane at once. The round function — a 2-bit
    /// lookup `f[right]` — becomes a branch-free 4-way mux in XOR form
    /// over broadcast constants, so a round costs 4 `mix64` plus ~15
    /// register ops with zero loads. This is what turns a ~90 ns
    /// derivation into a ~35 ns one; byte-identity with the reference
    /// Feistel is property-tested.
    #[inline]
    fn mapping_for_tweak(&self, t: u64) -> u64 {
        // Identity start state: lane i holds i.
        let mut state: u64 = SWAR_IDENTITY;
        for round in 0..ROUNDS as usize {
            state = swar_round(&self.rk[round], t.rotate_left(round as u32 * 8), state);
        }
        state
    }

    /// Packed permutation code for an `n`-field class at one identity:
    /// cycle-walk the precomputed mapping exactly as [`permute_index`]
    /// walks `feistel16`.
    #[inline]
    pub fn perm_code(&self, generation: u64, slot: u32, n: usize) -> PermCode {
        Self::code_from_mapping(self.mapping_for_tweak(tweak(generation, slot)), n)
    }

    #[inline]
    fn code_from_mapping(map: u64, n: usize) -> PermCode {
        debug_assert!(n >= 1 && n <= STATELESS_MAX_FIELDS);
        // Branch-free cycle walk. A walk from any start re-enters
        // `[0, n)` within `16 - n` steps (the orbit visits each of the
        // `16 - n` out-of-domain points at most once), and an in-domain
        // value is a fixed point of the conditional step — so a fixed
        // number of select-steps replaces the data-dependent `while`
        // whose random trip count cost a mispredict per field.
        let nn = n as u64;
        // Step-major, field-minor: the per-field walks are independent
        // chains, and running one select-step of every field per
        // iteration lets them pipeline instead of serializing each
        // field's full walk behind the previous one's. In-domain values
        // are fixed points of the conditional step, so a fixed unroll of
        // branch-free steps is correct for however far it gets; 9 steps
        // resolve >90% of identities, and one well-predicted branch
        // routes the rare long orbit to a cleanup loop instead of paying
        // the full worst-case 15-step chain latency every time.
        const FAST_STEPS: usize = 9;
        let mut xs = [0u64; STATELESS_MAX_FIELDS];
        for (p, x) in xs.iter_mut().enumerate().take(n) {
            *x = (map >> (4 * p)) & 0xF;
        }
        for _ in 0..FAST_STEPS {
            for x in xs.iter_mut().take(n) {
                let y = (map >> (4 * *x)) & 0xF;
                *x = if *x < nn { *x } else { y };
            }
        }
        if xs.iter().take(n).any(|&x| x >= nn) {
            for x in xs.iter_mut().take(n) {
                while *x >= nn {
                    *x = (map >> (4 * *x)) & 0xF;
                }
            }
        }
        let mut code: PermCode = 0;
        for (p, &x) in xs.iter().enumerate().take(n) {
            code |= (x as PermCode) << (4 * p);
        }
        code
    }
}

/// Extract `perm[p]` from a packed code.
#[inline]
pub fn code_position(code: PermCode, p: usize) -> usize {
    ((code >> (4 * p)) & 0xF) as usize
}

/// `n!` for `n ≤ STATELESS_MAX_FIELDS`: the number of distinct
/// permutation codes an `n`-field class can produce. Derived-plan caches
/// size themselves with this (a 4-field class needs 24 entries, ever).
#[inline]
pub fn code_space(n: usize) -> usize {
    const FACT: [usize; STATELESS_MAX_FIELDS + 1] =
        [1, 1, 2, 6, 24, 120, 720, 5040, 40320];
    FACT[n.min(STATELESS_MAX_FIELDS)]
}

/// Lehmer rank of the permutation packed in `code`: a perfect (bijective)
/// index in `[0, n!)`. Lets small-codomain plan caches index without
/// collisions — the hot-path property that makes the derived-plan cache
/// miss exactly `n!` times per class lifetime, not per hash conflict.
#[inline]
pub fn code_rank(code: PermCode, n: usize) -> usize {
    debug_assert!(n >= 1 && n <= STATELESS_MAX_FIELDS);
    let mut rank = 0usize;
    for i in 0..n {
        let a_i = code_position(code, i);
        let mut smaller_after = 0usize;
        for j in i + 1..n {
            smaller_after += usize::from(code_position(code, j) < a_i);
        }
        rank = rank * (n - i) + smaller_after;
    }
    rank
}

/// Pack a permutation produced by [`stateless_perm`] into a [`PermCode`]
/// (the reference-side counterpart of [`RoundKeys::perm_code`]).
pub fn pack_perm(perm: &[usize]) -> PermCode {
    let mut code: PermCode = 0;
    for (p, &idx) in perm.iter().enumerate() {
        code |= (idx as PermCode) << (4 * p);
    }
    code
}

/// A cache-line block of derived permutation codes for one slot's run of
/// consecutive generations — the `BufferedRng` of the stateless path.
///
/// Heap slots are reused generation-by-generation (malloc/free churn
/// hands the same slot back with `generation + 1`), so the allocation
/// path sees long (slot, generation-run) streaks. The first reuse of a
/// slot triggers a batched refill deriving [`PERM_BLOCK_RUN`] codes with
/// one shared slot-mix; subsequent reuses are an array index. A
/// first-sighting of a *different* slot derives a single code instead —
/// batching only pays where runs actually happen.
#[derive(Debug, Clone)]
pub struct PermBlock {
    slot: u32,
    n: u8,
    len: u8,
    gen_base: u64,
    codes: [PermCode; PERM_BLOCK_RUN],
}

impl PermBlock {
    /// An empty block that matches nothing.
    pub fn empty() -> Self {
        PermBlock { slot: u32::MAX, n: 0, len: 0, gen_base: 0, codes: [0; PERM_BLOCK_RUN] }
    }

    /// The code for `(slot, generation)` under an `n`-field class:
    /// buffered when covered, otherwise derived (batching the refill
    /// when this extends a run on the block's current slot).
    #[inline]
    pub fn code_for(
        &mut self,
        keys: &RoundKeys,
        slot: u32,
        generation: u64,
        n: usize,
    ) -> PermCode {
        if self.slot == slot && usize::from(self.n) == n {
            let at = generation.wrapping_sub(self.gen_base);
            if at < u64::from(self.len) {
                return self.codes[at as usize];
            }
            // Same slot, generation past the buffer: a reuse run is in
            // progress — batch the next stretch.
            self.refill(keys, slot, generation, n, PERM_BLOCK_RUN);
            return self.codes[0];
        }
        // New slot: derive just this identity; a run, if one develops,
        // announces itself on the next reuse.
        self.refill(keys, slot, generation, n, 1);
        self.codes[0]
    }

    fn refill(&mut self, keys: &RoundKeys, slot: u32, gen_base: u64, n: usize, count: usize) {
        let sm = slot_mix(slot);
        self.slot = slot;
        self.n = n as u8;
        self.len = count as u8;
        self.gen_base = gen_base;
        // Round-major across the batch: each code's Feistel rounds form
        // a serial dependency chain, but the chains of different
        // generations are independent — advancing all of them one round
        // at a time keeps `count` chains (and their 4·count mix64 calls
        // per round) in flight at once, which is where the batched
        // refill actually beats deriving the codes one by one.
        let mut tweaks = [0u64; PERM_BLOCK_RUN];
        for (i, t) in tweaks.iter_mut().enumerate().take(count) {
            let generation = gen_base.wrapping_add(i as u64);
            *t = mix64((generation << 32) ^ generation >> 32).wrapping_add(sm);
        }
        let mut states = [SWAR_IDENTITY; PERM_BLOCK_RUN];
        for round in 0..ROUNDS as usize {
            let rk_row = &keys.rk[round];
            for (state, t) in states.iter_mut().zip(&tweaks).take(count) {
                *state = swar_round(rk_row, t.rotate_left(round as u32 * 8), *state);
            }
        }
        for (code, &state) in self.codes.iter_mut().zip(&states).take(count) {
            *code = RoundKeys::code_from_mapping(state, n);
        }
    }
}

// ---------------------------------------------------------------------
// Plan derivation (permute-only and trapped).
// ---------------------------------------------------------------------

/// Derive the layout plan for `info` at heap identity (generation, slot).
///
/// Permute-only (no dummies, no traps): fields are laid out sequentially
/// in derived order with natural alignment. The result is a plain
/// [`LayoutPlan`], so every downstream consumer — access tables, the
/// shadow index, `olr_memcpy` translation — works unchanged.
///
/// This is the reference derivation kept for the ablation and the
/// byte-identity property tests; the runtime builds plans through
/// [`stateless_plan_from_code`].
///
/// # Panics
///
/// Panics if `info` has more than [`STATELESS_MAX_FIELDS`] fields.
pub fn stateless_plan(
    info: &ClassInfo,
    key: EpochKey,
    generation: u64,
    slot: u32,
) -> LayoutPlan {
    let n = info.fields().len();
    assert!(
        n <= STATELESS_MAX_FIELDS,
        "stateless path is limited to {STATELESS_MAX_FIELDS} fields, got {n}"
    );
    stateless_plan_from_code(info, key, pack_perm(&stateless_perm(key, generation, slot, n)), false)
}

/// Derive the trapped layout plan for `info` at (generation, slot):
/// the permuted fields with virtual trap slots interleaved.
///
/// # Panics
///
/// Panics if `info` has more than [`STATELESS_MAX_FIELDS`] fields.
pub fn stateless_trapped_plan(
    info: &ClassInfo,
    key: EpochKey,
    generation: u64,
    slot: u32,
) -> LayoutPlan {
    let n = info.fields().len();
    assert!(
        n <= STATELESS_MAX_FIELDS,
        "stateless path is limited to {STATELESS_MAX_FIELDS} fields, got {n}"
    );
    stateless_plan_from_code(info, key, pack_perm(&stateless_perm(key, generation, slot, n)), true)
}

/// Virtual trap geometry for one (key, permutation) pair: the trap
/// count, each trap's interleave position among the `n + t` layout
/// slots, and its canary value — all from one keyed mix of the packed
/// code, so the geometry is rederivable from the allocation identity
/// with zero stored state.
fn trap_spec(key: EpochKey, code: PermCode, n: usize) -> (usize, [usize; STATELESS_TRAP_MAX as usize], u64) {
    let h = mix64(
        key.0 ^ u64::from(code).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7452_6150, // "PaRt"
    );
    let t = 1 + (h % u64::from(STATELESS_TRAP_MAX)) as usize;
    let mut at = [0usize; STATELESS_TRAP_MAX as usize];
    for (j, slot) in at.iter_mut().enumerate().take(t) {
        // Insertion position into the growing memory-order sequence of
        // n fields + j earlier traps.
        *slot = ((h >> (8 + 6 * j)) as usize) % (n + j + 1);
    }
    (t, at, h)
}

/// Build the [`LayoutPlan`] for a packed permutation code, optionally
/// interleaving virtual trap slots.
///
/// Fields are laid out sequentially in the code's derived order with
/// natural alignment; with `traps` on, 1..=[`STATELESS_TRAP_MAX`]
/// 8-byte canary dummies (geometry from [`trap_spec`]) are inserted
/// between them. Sequential assignment makes trap slots and fields
/// disjoint by construction.
///
/// # Panics
///
/// Panics if `info` has more than [`STATELESS_MAX_FIELDS`] fields.
pub fn stateless_plan_from_code(
    info: &ClassInfo,
    key: EpochKey,
    code: PermCode,
    traps: bool,
) -> LayoutPlan {
    let fields = info.fields();
    let n = fields.len();
    assert!(
        n <= STATELESS_MAX_FIELDS,
        "stateless path is limited to {STATELESS_MAX_FIELDS} fields, got {n}"
    );
    let mut offsets = vec![0u32; n];
    let sizes: Vec<u32> = fields.iter().map(|f| f.kind().size()).collect();
    let aligns: Vec<u32> = fields.iter().map(|f| f.kind().align()).collect();

    // Memory order: the permuted fields, with trap slots (encoded as
    // `usize::MAX - j`) inserted at their derived positions.
    let mut order: [usize; STATELESS_MAX_FIELDS + STATELESS_TRAP_MAX as usize] =
        [0; STATELESS_MAX_FIELDS + STATELESS_TRAP_MAX as usize];
    for p in 0..n {
        order[p] = code_position(code, p);
    }
    let mut len = n;
    let mut dummies = Vec::new();
    let mut canary_seed = 0u64;
    if traps {
        let (t, at, h) = trap_spec(key, code, n);
        canary_seed = h;
        for j in 0..t {
            let pos = at[j];
            order.copy_within(pos..len, pos + 1);
            order[pos] = usize::MAX - j;
            len += 1;
        }
    }

    let mut cursor = 0u32;
    let mut max_align = 1u32;
    for &entry in order.iter().take(len) {
        if entry >= usize::MAX - STATELESS_TRAP_MAX as usize {
            let j = (usize::MAX - entry) as u64;
            cursor = round_up(cursor, TRAP_SLOT_BYTES);
            max_align = max_align.max(TRAP_SLOT_BYTES);
            let canary = mix64(canary_seed ^ (j + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93)) | 1;
            dummies.push(DummySlot { offset: cursor, size: TRAP_SLOT_BYTES, canary: Some(canary) });
            cursor += TRAP_SLOT_BYTES;
        } else {
            let align = aligns[entry];
            max_align = max_align.max(align);
            cursor = round_up(cursor, align);
            offsets[entry] = cursor;
            cursor += sizes[entry];
        }
    }
    let size = round_up(cursor.max(1), max_align);
    LayoutPlan::with_aligns(info.hash(), offsets, sizes, aligns, dummies, size, false)
}

/// An upper bound on the size of *any* stateless plan for `info`,
/// independent of (generation, slot).
///
/// The allocation path needs a block size *before* the heap assigns the
/// (slot, generation) identity the plan is derived from; this bound
/// breaks the cycle. Sequential natural-alignment layout wastes at most
/// `align - 1` padding bytes ahead of each field, so
/// `Σ (size_i + align_i − 1)`, rounded up to the max alignment, dominates
/// every permutation's footprint. With `traps` on, each of the up-to-
/// [`STATELESS_TRAP_MAX`] trap slots adds at most `8 + 7` bytes.
pub fn stateless_bound(info: &ClassInfo, traps: bool) -> u32 {
    let mut bound = 0u32;
    let mut max_align = 1u32;
    for f in info.fields() {
        let kind = f.kind();
        max_align = max_align.max(kind.align());
        bound += kind.size() + (kind.align() - 1);
    }
    if traps {
        max_align = max_align.max(TRAP_SLOT_BYTES);
        bound += STATELESS_TRAP_MAX * (TRAP_SLOT_BYTES + TRAP_SLOT_BYTES - 1);
    }
    round_up(bound.max(1), max_align)
}

/// [`stateless_bound`] without traps (the original bound, kept for the
/// permute-only ablation and callers predating trap support).
pub fn stateless_size_bound(info: &ClassInfo) -> u32 {
    stateless_bound(info, false)
}

fn round_up(value: u32, to: u32) -> u32 {
    debug_assert!(to.is_power_of_two());
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_rng::{Rng, SplitMix64};

    fn small_class(n: usize) -> ClassInfo {
        let kinds = [
            FieldKind::VtablePtr,
            FieldKind::I64,
            FieldKind::I32,
            FieldKind::I16,
            FieldKind::I8,
            FieldKind::Ptr,
            FieldKind::I32,
            FieldKind::I64,
        ];
        let mut b = ClassDecl::builder("Small");
        for (i, kind) in kinds.iter().take(n).enumerate() {
            b = b.field(format!("f{i}"), *kind);
        }
        ClassInfo::from_decl(b.build())
    }

    #[test]
    fn feistel_is_a_bijection_on_the_domain() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for t in [0u64, 7, 0x1234_5678_9ABC_DEF0] {
                let mut seen = [false; DOMAIN as usize];
                for i in 0..DOMAIN {
                    let out = feistel16(key, t, i);
                    assert!(out < DOMAIN);
                    assert!(!seen[out as usize], "collision at {i}");
                    seen[out as usize] = true;
                }
            }
        }
    }

    #[test]
    fn cycle_walked_permutation_is_bijective_for_every_n() {
        for n in 1..=STATELESS_MAX_FIELDS {
            let key = EpochKey(0x5EED);
            let perm = stateless_perm(key, 3, 17, n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n} perm={perm:?}");
        }
    }

    #[test]
    fn round_key_interning_matches_the_reference_derivation() {
        // The hot path (RoundKeys table + cycle walk over the cached
        // mapping) must be byte-identical to the reference Feistel for
        // every identity: same key schedule, same tweak, same walk.
        let mut rng = SplitMix64::new(0x0BAD_5EED);
        for _ in 0..200 {
            let key = EpochKey(rng.next_u64());
            let keys = RoundKeys::new(key);
            for _ in 0..20 {
                let generation = rng.next_u64() >> 20;
                let slot = (rng.next_u64() & 0xFFFF) as u32;
                let map = keys.mapping(generation, slot);
                for i in 0..DOMAIN {
                    assert_eq!(
                        u32::from(map[i as usize]),
                        feistel16(key.0, tweak(generation, slot), i),
                        "mapping diverges at point {i}"
                    );
                }
                for n in 1..=STATELESS_MAX_FIELDS {
                    assert_eq!(
                        keys.perm_code(generation, slot, n),
                        pack_perm(&stateless_perm(key, generation, slot, n)),
                        "code diverges for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn perm_block_buffers_generation_runs_exactly() {
        let key = EpochKey(0xB10C);
        let keys = RoundKeys::new(key);
        let mut block = PermBlock::empty();
        // A slot-reuse run: consecutive generations on one slot.
        for generation in 5..5 + 3 * PERM_BLOCK_RUN as u64 {
            assert_eq!(
                block.code_for(&keys, 9, generation, 5),
                pack_perm(&stateless_perm(key, generation, 9, 5)),
                "run diverges at generation {generation}"
            );
        }
        // Interleaved slots: every switch re-derives correctly.
        for i in 0..32u64 {
            let slot = (i % 3) as u32 * 11;
            assert_eq!(
                block.code_for(&keys, slot, i, 4),
                pack_perm(&stateless_perm(key, i, slot, 4)),
                "slot switch diverges at {i}"
            );
        }
    }

    #[test]
    fn different_identities_usually_differ() {
        let info = small_class(6);
        let key = EpochKey(0xA11CE);
        let base = stateless_plan(&info, key, 0, 0);
        let mut distinct = 0;
        for slot in 1..32u32 {
            if stateless_plan(&info, key, 0, slot).plan_hash() != base.plan_hash() {
                distinct += 1;
            }
        }
        // 6! = 720 permutations: nearly all of 31 other slots differ.
        assert!(distinct > 20, "only {distinct} of 31 differed");
        // Generation bumps (block reuse) also re-randomize.
        assert_ne!(
            stateless_plan(&info, key, 1, 0).plan_hash(),
            stateless_plan(&info, key, 2, 0).plan_hash()
        );
    }

    #[test]
    fn derived_plans_validate_and_fit_the_bound() {
        for n in 1..=STATELESS_MAX_FIELDS {
            let info = small_class(n);
            let bound = stateless_bound(&info, false);
            for ident in 0..50u32 {
                let plan = stateless_plan(&info, EpochKey(99), (ident / 10) as u64, ident % 10);
                plan.validate().expect("derived plan must validate");
                assert!(plan.size() <= bound, "n={n} size {} > bound {bound}", plan.size());
                assert_eq!(plan.dummies().len(), 0);
            }
        }
    }

    #[test]
    fn trapped_plans_validate_fit_and_carry_canaries() {
        for n in 1..=STATELESS_MAX_FIELDS {
            let info = small_class(n);
            let bound = stateless_bound(&info, true);
            for ident in 0..60u32 {
                let plan =
                    stateless_trapped_plan(&info, EpochKey(7), (ident / 12) as u64, ident % 12);
                plan.validate().expect("trapped plan must validate");
                assert!(plan.size() <= bound, "n={n} size {} > bound {bound}", plan.size());
                let t = plan.dummies().len();
                assert!(
                    (1..=STATELESS_TRAP_MAX as usize).contains(&t),
                    "n={n}: {t} traps"
                );
                for d in plan.dummies() {
                    assert_eq!(d.size, TRAP_SLOT_BYTES);
                    assert!(d.canary.expect("virtual traps carry canaries") != 0);
                }
            }
        }
    }

    #[test]
    fn trapped_plans_keep_the_reference_field_order() {
        // Interleaving traps must not disturb the *relative* memory
        // order of the fields, which stays the reference permutation.
        let info = small_class(6);
        let key = EpochKey(0x0DD5);
        for ident in 0..40u32 {
            let (generation, slot) = ((ident / 8) as u64, ident % 8);
            let plain = stateless_plan(&info, key, generation, slot);
            let trapped = stateless_trapped_plan(&info, key, generation, slot);
            let rank = |plan: &LayoutPlan| {
                let mut idx: Vec<usize> = (0..6).collect();
                idx.sort_by_key(|&k| plan.offset(k));
                idx
            };
            assert_eq!(rank(&plain), rank(&trapped), "ident {ident}");
        }
    }

    #[test]
    fn rederivation_is_exact() {
        let info = small_class(7);
        let key = EpochKey(0xC0FFEE);
        let a = stateless_plan(&info, key, 41, 12);
        let b = stateless_plan(&info, key, 41, 12);
        assert_eq!(a, b);
        assert_eq!(a.plan_hash(), b.plan_hash());
        let ta = stateless_trapped_plan(&info, key, 41, 12);
        let tb = stateless_trapped_plan(&info, key, 41, 12);
        assert_eq!(ta, tb);
    }

    #[test]
    fn key_separates_processes() {
        let info = small_class(5);
        let a = stateless_plan(&info, EpochKey(1), 0, 0);
        let mut distinct = 0;
        for k in 2..20u64 {
            if stateless_plan(&info, EpochKey(k), 0, 0).plan_hash() != a.plan_hash() {
                distinct += 1;
            }
        }
        assert!(distinct > 12, "only {distinct} of 18 keys differed");
    }

    #[test]
    fn policy_selects_by_field_count() {
        let on = StatelessPolicy::default();
        assert!(on.enabled && on.virtual_traps);
        assert!(on.applies_to(1) && on.applies_to(STATELESS_MAX_FIELDS));
        assert!(!on.applies_to(STATELESS_MAX_FIELDS + 1));
        assert!(!StatelessPolicy::off().applies_to(2));
        let ablation = StatelessPolicy::permute_only();
        assert!(ablation.applies_to(4) && !ablation.virtual_traps);
        // max_fields above the Feistel domain bound stays clamped.
        let wide = StatelessPolicy { max_fields: 32, ..StatelessPolicy::on() };
        assert!(!wide.applies_to(9));
    }

    #[test]
    fn code_rank_is_a_bijection_onto_the_code_space() {
        // Enumerate every permutation of 1..=5 elements (Heap's
        // algorithm), pack it, and check the Lehmer rank hits each value
        // in [0, n!) exactly once — the property the perfect derived-plan
        // cache index rests on.
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            let mut out = Vec::new();
            let mut a: Vec<usize> = (0..n).collect();
            fn heap(k: usize, a: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
                if k <= 1 {
                    out.push(a.clone());
                    return;
                }
                for i in 0..k {
                    heap(k - 1, a, out);
                    if k % 2 == 0 {
                        a.swap(i, k - 1);
                    } else {
                        a.swap(0, k - 1);
                    }
                }
            }
            heap(n, &mut a, &mut out);
            out
        }
        for n in 1..=5usize {
            let mut seen = vec![false; code_space(n)];
            for perm in permutations(n) {
                let rank = code_rank(pack_perm(&perm), n);
                assert!(rank < code_space(n), "rank {rank} out of range for n={n}");
                assert!(!seen[rank], "rank {rank} collides for n={n} perm {perm:?}");
                seen[rank] = true;
            }
            assert!(seen.iter().all(|&s| s), "ranks not surjective for n={n}");
        }
        assert_eq!(code_space(4), 24);
        assert_eq!(code_space(8), 40320);
    }
}
