//! Stateless small-class permutations (SPAM-style keyed Feistel).
//!
//! For the dominant population of small objects (≤ 8 fields), storing a
//! full randomized [`LayoutPlan`] per allocation is overkill: the
//! permutation itself can be *derived* from identity the runtime already
//! tracks — the heap block's (slot id, generation) pair — keyed by a
//! per-process epoch key, in the style of SPAM's keyed index
//! transformation. The runtime then stores only the 64-bit key; the plan
//! for any live or historical allocation is recomputable on demand, and
//! the set of distinct derived plans is bounded by the (small) number of
//! field permutations, which caps interner growth.
//!
//! The derivation is a 4-round balanced Feistel network over a 4-bit
//! index domain (16 ≥ 8 fields) with cycle-walking to restrict the
//! bijection to `[0, n)`. Feistel networks are bijective for *any* round
//! function, so every (key, generation, slot) triple yields a valid
//! permutation; cycle-walking preserves bijectivity because it walks the
//! orbit of a permutation until it re-enters the target domain.
//!
//! Derived plans are permute-only: no dummy members and no booby traps.
//! That is the metadata trade the paper's §V-B discussion allows for
//! small objects, and it is why the runtime keeps this path **opt-in**
//! (`RuntimeConfig::stateless_small`, default off) — enabling it trades
//! trap coverage on small classes for metadata and speed.

use polar_classinfo::ClassInfo;

use crate::plan::LayoutPlan;

/// Largest field count served by the stateless path.
pub const STATELESS_MAX_FIELDS: usize = 8;

/// Feistel domain: 4-bit indices, two 2-bit halves.
const DOMAIN: u32 = 16;
const HALF_BITS: u32 = 2;
const HALF_MASK: u32 = (1 << HALF_BITS) - 1;
const ROUNDS: u32 = 4;

/// The per-process secret keying every stateless permutation. Derived
/// from the runtime seed; leaking a single object's layout does not
/// reveal the key (the round function is a one-way mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochKey(pub u64);

/// SplitMix64's finalizer: a cheap 64-bit avalanche mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Collapse (generation, slot) into the Feistel tweak. Injective for
/// generations below 2^32, and `mix64` in the round function avalanches
/// the combined value anyway.
#[inline]
fn tweak(generation: u64, slot: u32) -> u64 {
    mix64((generation << 32) ^ generation >> 32).wrapping_add(mix64(slot as u64 ^ 0xA076_1D64_78BD_642F))
}

/// The Feistel round function: 2 bits of keyed mix.
#[inline]
fn round_f(key: u64, tweak: u64, round: u32, half: u32) -> u32 {
    let x = key
        ^ tweak.rotate_left(round * 8)
        ^ ((round as u64) << 32)
        ^ (half as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mix64(x) & HALF_MASK as u64) as u32
}

/// One pass of the 4-round network: a bijection on `[0, 16)`.
#[inline]
fn feistel16(key: u64, tweak: u64, index: u32) -> u32 {
    let mut left = (index >> HALF_BITS) & HALF_MASK;
    let mut right = index & HALF_MASK;
    for round in 0..ROUNDS {
        let next = left ^ round_f(key, tweak, round, right);
        left = right;
        right = next & HALF_MASK;
    }
    (left << HALF_BITS) | right
}

/// The keyed index permutation: maps `index ∈ [0, n)` to a position in
/// `[0, n)`, bijectively, as a pure function of (key, generation, slot).
///
/// Cycle-walking: `feistel16` permutes `[0, 16)`; iterating it from a
/// point `< n` must eventually re-enter `[0, n)` (the orbit returns to
/// its start), and distinct starts land on distinct results, so the
/// restriction is itself a bijection on `[0, n)`.
///
/// # Panics
///
/// Debug-asserts `n ≤ 16` and `index < n`.
pub fn permute_index(key: EpochKey, generation: u64, slot: u32, n: usize, index: usize) -> usize {
    debug_assert!(n >= 1 && n <= DOMAIN as usize);
    debug_assert!(index < n);
    let t = tweak(generation, slot);
    let mut x = index as u32;
    loop {
        x = feistel16(key.0, t, x);
        if (x as usize) < n {
            return x as usize;
        }
    }
}

/// The full derived permutation for an `n`-field class: `perm[p]` is the
/// field placed at sequential position `p`.
pub fn stateless_perm(key: EpochKey, generation: u64, slot: u32, n: usize) -> Vec<usize> {
    (0..n).map(|p| permute_index(key, generation, slot, n, p)).collect()
}

/// Derive the layout plan for `info` at heap identity (generation, slot).
///
/// Permute-only (no dummies, no traps): fields are laid out sequentially
/// in derived order with natural alignment. The result is a plain
/// [`LayoutPlan`], so every downstream consumer — access tables, the
/// shadow index, `olr_memcpy` translation — works unchanged.
///
/// # Panics
///
/// Panics if `info` has more than [`STATELESS_MAX_FIELDS`] fields.
pub fn stateless_plan(
    info: &ClassInfo,
    key: EpochKey,
    generation: u64,
    slot: u32,
) -> LayoutPlan {
    let fields = info.fields();
    let n = fields.len();
    assert!(
        n <= STATELESS_MAX_FIELDS,
        "stateless path is limited to {STATELESS_MAX_FIELDS} fields, got {n}"
    );
    let mut offsets = vec![0u32; n];
    let sizes: Vec<u32> = fields.iter().map(|f| f.kind().size()).collect();
    let aligns: Vec<u32> = fields.iter().map(|f| f.kind().align()).collect();
    let mut cursor = 0u32;
    let mut max_align = 1u32;
    for p in 0..n {
        let idx = permute_index(key, generation, slot, n, p);
        let align = aligns[idx];
        max_align = max_align.max(align);
        cursor = round_up(cursor, align);
        offsets[idx] = cursor;
        cursor += sizes[idx];
    }
    let size = round_up(cursor.max(1), max_align);
    LayoutPlan::with_aligns(info.hash(), offsets, sizes, aligns, Vec::new(), size, false)
}

/// An upper bound on the size of *any* stateless plan for `info`,
/// independent of (generation, slot).
///
/// The allocation path needs a block size *before* the heap assigns the
/// (slot, generation) identity the plan is derived from; this bound
/// breaks the cycle. Sequential natural-alignment layout wastes at most
/// `align - 1` padding bytes ahead of each field, so
/// `Σ (size_i + align_i − 1)`, rounded up to the max alignment, dominates
/// every permutation's footprint.
pub fn stateless_size_bound(info: &ClassInfo) -> u32 {
    let mut bound = 0u32;
    let mut max_align = 1u32;
    for f in info.fields() {
        let kind = f.kind();
        max_align = max_align.max(kind.align());
        bound += kind.size() + (kind.align() - 1);
    }
    round_up(bound.max(1), max_align)
}

fn round_up(value: u32, to: u32) -> u32 {
    debug_assert!(to.is_power_of_two());
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};

    fn small_class(n: usize) -> ClassInfo {
        let kinds = [
            FieldKind::VtablePtr,
            FieldKind::I64,
            FieldKind::I32,
            FieldKind::I16,
            FieldKind::I8,
            FieldKind::Ptr,
            FieldKind::I32,
            FieldKind::I64,
        ];
        let mut b = ClassDecl::builder("Small");
        for (i, kind) in kinds.iter().take(n).enumerate() {
            b = b.field(format!("f{i}"), *kind);
        }
        ClassInfo::from_decl(b.build())
    }

    #[test]
    fn feistel_is_a_bijection_on_the_domain() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for t in [0u64, 7, 0x1234_5678_9ABC_DEF0] {
                let mut seen = [false; DOMAIN as usize];
                for i in 0..DOMAIN {
                    let out = feistel16(key, t, i);
                    assert!(out < DOMAIN);
                    assert!(!seen[out as usize], "collision at {i}");
                    seen[out as usize] = true;
                }
            }
        }
    }

    #[test]
    fn cycle_walked_permutation_is_bijective_for_every_n() {
        for n in 1..=STATELESS_MAX_FIELDS {
            let key = EpochKey(0x5EED);
            let perm = stateless_perm(key, 3, 17, n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n} perm={perm:?}");
        }
    }

    #[test]
    fn different_identities_usually_differ() {
        let info = small_class(6);
        let key = EpochKey(0xA11CE);
        let base = stateless_plan(&info, key, 0, 0);
        let mut distinct = 0;
        for slot in 1..32u32 {
            if stateless_plan(&info, key, 0, slot).plan_hash() != base.plan_hash() {
                distinct += 1;
            }
        }
        // 6! = 720 permutations: nearly all of 31 other slots differ.
        assert!(distinct > 20, "only {distinct} of 31 differed");
        // Generation bumps (block reuse) also re-randomize.
        assert_ne!(
            stateless_plan(&info, key, 1, 0).plan_hash(),
            stateless_plan(&info, key, 2, 0).plan_hash()
        );
    }

    #[test]
    fn derived_plans_validate_and_fit_the_bound() {
        for n in 1..=STATELESS_MAX_FIELDS {
            let info = small_class(n);
            let bound = stateless_size_bound(&info);
            for ident in 0..50u32 {
                let plan = stateless_plan(&info, EpochKey(99), (ident / 10) as u64, ident % 10);
                plan.validate().expect("derived plan must validate");
                assert!(plan.size() <= bound, "n={n} size {} > bound {bound}", plan.size());
                assert_eq!(plan.dummies().len(), 0);
            }
        }
    }

    #[test]
    fn rederivation_is_exact() {
        let info = small_class(7);
        let key = EpochKey(0xC0FFEE);
        let a = stateless_plan(&info, key, 41, 12);
        let b = stateless_plan(&info, key, 41, 12);
        assert_eq!(a, b);
        assert_eq!(a.plan_hash(), b.plan_hash());
    }

    #[test]
    fn key_separates_processes() {
        let info = small_class(5);
        let a = stateless_plan(&info, EpochKey(1), 0, 0);
        let mut distinct = 0;
        for k in 2..20u64 {
            if stateless_plan(&info, EpochKey(k), 0, 0).plan_hash() != a.plan_hash() {
                distinct += 1;
            }
        }
        assert!(distinct > 12, "only {distinct} of 18 keys differed");
    }
}
