//! Plan interning: the paper's metadata deduplication optimization.

use std::collections::HashMap;
use std::sync::Arc;

use crate::plan::{LayoutPlan, PlanHash};

/// Interns [`LayoutPlan`]s by content hash so that objects which happen to
/// draw structurally identical layouts share one metadata record.
///
/// Section V-B: "Polar remove[s] the duplicate metadata when two objects
/// have the same randomized memory layout." For small classes the number
/// of distinct layouts is tiny (a 3-field class has only a handful), so
/// interning collapses most per-object metadata.
///
/// Each interned plan carries its precomputed dense access table
/// ([`LayoutPlan::access_table`](crate::LayoutPlan::access_table)), so
/// deduplication shares those tables too: one `(offset, width)` table
/// per *distinct layout*, not per object — the memory the hot-path
/// overhaul added is covered by the same dedup argument as the plans
/// themselves.
///
/// ```
/// use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
/// use polar_layout::{LayoutPlan, PlanInterner};
///
/// let info = ClassInfo::from_decl(
///     ClassDecl::builder("T").field("x", FieldKind::I32).build(),
/// );
/// let mut interner = PlanInterner::new();
/// let a = interner.intern(LayoutPlan::natural_for(&info));
/// let b = interner.intern(LayoutPlan::natural_for(&info));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(interner.unique_plans(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlanInterner {
    plans: HashMap<PlanHash, Arc<LayoutPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a plan, returning the shared record.
    pub fn intern(&mut self, plan: LayoutPlan) -> Arc<LayoutPlan> {
        match self.plans.get(&plan.plan_hash()) {
            Some(existing) => {
                self.hits += 1;
                Arc::clone(existing)
            }
            None => {
                self.misses += 1;
                let arc = Arc::new(plan);
                self.plans.insert(arc.plan_hash(), Arc::clone(&arc));
                arc
            }
        }
    }

    /// Look up an already-interned plan by hash.
    pub fn get(&self, hash: PlanHash) -> Option<&Arc<LayoutPlan>> {
        self.plans.get(&hash)
    }

    /// Number of distinct plans stored.
    pub fn unique_plans(&self) -> usize {
        self.plans.len()
    }

    /// How many intern calls were satisfied by an existing record.
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }

    /// How many intern calls created a new record.
    pub fn dedup_misses(&self) -> u64 {
        self.misses
    }

    /// Iterate over the distinct interned plans.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<LayoutPlan>> {
        self.plans.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LayoutEngine;
    use crate::policy::RandomizationPolicy;
    use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
    use polar_rng::rngs::StdRng;
    use polar_rng::SeedableRng;

    fn tiny_class() -> ClassInfo {
        ClassInfo::from_decl(
            ClassDecl::builder("Pair")
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I64)
                .build(),
        )
    }

    #[test]
    fn identical_plans_dedup() {
        let info = tiny_class();
        let mut interner = PlanInterner::new();
        let a = interner.intern(LayoutPlan::natural_for(&info));
        let b = interner.intern(LayoutPlan::natural_for(&info));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.unique_plans(), 1);
        assert_eq!(interner.dedup_hits(), 1);
        assert_eq!(interner.dedup_misses(), 1);
    }

    #[test]
    fn small_class_saturates_plan_space() {
        // A 2-field permute-only class has exactly 2 layouts; hundreds of
        // allocations intern down to at most 2 records.
        let info = tiny_class();
        let engine = LayoutEngine::new(RandomizationPolicy::permute_only());
        let mut rng = StdRng::seed_from_u64(11);
        let mut interner = PlanInterner::new();
        for _ in 0..200 {
            interner.intern(engine.generate(&info, &mut rng));
        }
        assert!(interner.unique_plans() <= 2);
        assert!(interner.dedup_hits() >= 198);
    }

    #[test]
    fn lookup_by_hash() {
        let info = tiny_class();
        let mut interner = PlanInterner::new();
        let plan = interner.intern(LayoutPlan::natural_for(&info));
        assert!(interner.get(plan.plan_hash()).is_some());
        assert!(interner.get(crate::plan::PlanHash(0)).is_none());
    }
}
