//! Layout plans: the per-allocation metadata POLaR stores for each object.

use std::fmt;

use polar_classinfo::{ClassHash, ClassInfo};

/// A 64-bit content hash of a layout plan, used for interning/deduplication
/// (the paper's "remove the duplicate metadata when two objects have the
/// same randomized memory layout", Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanHash(pub u64);

impl fmt::Display for PlanHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// A dummy member inserted by the randomizer.
///
/// Dummies raise layout entropy; when `canary` is set the dummy doubles as
/// a **booby trap**: the runtime seeds it with the canary value and any
/// later mismatch reveals an overflow that ploughed through the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DummySlot {
    /// Byte offset of the dummy within the object.
    pub offset: u32,
    /// Dummy size in bytes.
    pub size: u32,
    /// Canary value for booby-trapped dummies (`None` = plain entropy
    /// filler).
    pub canary: Option<u64>,
}

/// Precomputed per-field access parameters: everything the runtime's
/// member-access hot path needs, packed in one dense table entry.
///
/// Built once when the plan is constructed (so interned plans share a
/// single table — the §V-B dedup covers it too), letting `olr_getptr`
/// and `read_field`/`write_field` resolve offset *and* load width with
/// one bounds-checked array index instead of consulting the offset and
/// size vectors separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldAccess {
    /// Byte offset of the field under this plan.
    pub offset: u32,
    /// Load/store width for scalar access: the field size clamped to a
    /// machine width (1, 2, 4 or 8; byte arrays ≥ 8 read their first
    /// word, odd sizes < 8 fall back to a byte).
    pub width: u8,
}

/// A concrete layout for one object: field index → byte offset, plus the
/// dummy slots and the total (possibly grown) object size.
///
/// This is the "Layout" record of the paper's Figure 4 metadata table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutPlan {
    class: ClassHash,
    field_offsets: Vec<u32>,
    field_sizes: Vec<u32>,
    field_aligns: Vec<u32>,
    /// Dense `field index → (offset, width)` table for the access hot
    /// path; always consistent with `field_offsets`/`field_sizes`.
    access: Vec<FieldAccess>,
    dummies: Vec<DummySlot>,
    size: u32,
    natural: bool,
    hash: PlanHash,
}

impl LayoutPlan {
    /// Assemble a plan from its parts, computing the content hash.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if offsets/sizes length mismatch.
    pub fn new(
        class: ClassHash,
        field_offsets: Vec<u32>,
        field_sizes: Vec<u32>,
        dummies: Vec<DummySlot>,
        size: u32,
        natural: bool,
    ) -> Self {
        let field_aligns = field_sizes.iter().map(|&s| s.min(8).max(1).next_power_of_two().min(8)).collect();
        Self::with_aligns(class, field_offsets, field_sizes, field_aligns, dummies, size, natural)
    }

    /// Assemble a plan with explicit per-field alignments (byte-array
    /// members have alignment 1 regardless of their size).
    pub fn with_aligns(
        class: ClassHash,
        field_offsets: Vec<u32>,
        field_sizes: Vec<u32>,
        field_aligns: Vec<u32>,
        dummies: Vec<DummySlot>,
        size: u32,
        natural: bool,
    ) -> Self {
        debug_assert_eq!(field_offsets.len(), field_sizes.len());
        debug_assert_eq!(field_offsets.len(), field_aligns.len());
        let hash = Self::content_hash(class, &field_offsets, &dummies, size);
        let access = field_offsets
            .iter()
            .zip(&field_sizes)
            .map(|(&offset, &fsize)| FieldAccess { offset, width: access_width(fsize) })
            .collect();
        LayoutPlan {
            class,
            field_offsets,
            field_sizes,
            field_aligns,
            access,
            dummies,
            size,
            natural,
            hash,
        }
    }

    /// The deterministic compiler layout of `info`, wrapped as a plan.
    /// Used by the `Native` execution mode and as the `randstruct`
    /// opt-out (`__no_randomize_layout`).
    pub fn natural_for(info: &ClassInfo) -> Self {
        let natural = info.natural();
        let sizes = info.fields().iter().map(|f| f.kind().size()).collect();
        let aligns = info.fields().iter().map(|f| f.kind().align()).collect();
        LayoutPlan::with_aligns(
            info.hash(),
            natural.offsets().to_vec(),
            sizes,
            aligns,
            Vec::new(),
            natural.size(),
            true,
        )
    }

    fn content_hash(
        class: ClassHash,
        offsets: &[u32],
        dummies: &[DummySlot],
        size: u32,
    ) -> PlanHash {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ class.0;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 29;
        };
        mix(size as u64);
        for &o in offsets {
            mix(o as u64 + 1);
        }
        for d in dummies {
            // Canary values are deliberately excluded: the hash covers the
            // *structure* of the layout, so structurally identical plans
            // intern together (and then share trap values, as metadata
            // dedup implies).
            mix(((d.offset as u64) << 32) | d.size as u64);
            mix(u64::from(d.canary.is_some()));
        }
        PlanHash(h)
    }

    /// Class this plan lays out.
    pub fn class(&self) -> ClassHash {
        self.class
    }

    /// Byte offset of field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn offset(&self, index: usize) -> u32 {
        self.field_offsets[index]
    }

    /// Byte offset of field `index`, or `None` when out of bounds.
    pub fn offset_checked(&self, index: usize) -> Option<u32> {
        self.field_offsets.get(index).copied()
    }

    /// Precomputed access parameters of field `index`, or `None` when out
    /// of bounds. One array read resolves both offset and load width —
    /// the member-access hot path.
    #[inline]
    pub fn access(&self, index: usize) -> Option<FieldAccess> {
        self.access.get(index).copied()
    }

    /// The whole dense access table, indexed by declaration order.
    pub fn access_table(&self) -> &[FieldAccess] {
        &self.access
    }

    /// Size in bytes of field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn field_size(&self, index: usize) -> u32 {
        self.field_sizes[index]
    }

    /// All field offsets, indexed by declaration order.
    pub fn field_offsets(&self) -> &[u32] {
        &self.field_offsets
    }

    /// Number of real (declared) fields.
    pub fn field_count(&self) -> usize {
        self.field_offsets.len()
    }

    /// The dummy slots inserted by the randomizer.
    pub fn dummies(&self) -> &[DummySlot] {
        &self.dummies
    }

    /// Total object size in bytes under this plan (≥ the natural size when
    /// dummies were inserted).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether this is the deterministic compiler layout.
    pub fn is_natural(&self) -> bool {
        self.natural
    }

    /// Content hash for interning.
    #[inline]
    pub fn plan_hash(&self) -> PlanHash {
        self.hash
    }

    /// Field indices sorted by their offset in this plan — the visible
    /// member order an attacker would have to guess.
    pub fn permutation(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.field_offsets.len()).collect();
        order.sort_by_key(|&i| self.field_offsets[i]);
        order
    }

    /// Verify structural invariants: fields and dummies must lie inside
    /// the object, be properly aligned, and never overlap. Returns a
    /// description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut spans: Vec<(u32, u32, &'static str)> = Vec::new();
        for (i, (&off, &size)) in
            self.field_offsets.iter().zip(&self.field_sizes).enumerate()
        {
            if off + size > self.size {
                return Err(format!("field {i} [{off}, {}) exceeds size {}", off + size, self.size));
            }
            let align = self.field_aligns[i].max(1);
            if off % align != 0 {
                return Err(format!("field {i} at {off} misaligned for alignment {align}"));
            }
            spans.push((off, off + size, "field"));
        }
        for d in &self.dummies {
            if d.offset + d.size > self.size {
                return Err(format!("dummy at {} exceeds object size", d.offset));
            }
            spans.push((d.offset, d.offset + d.size, "dummy"));
        }
        spans.sort();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!("overlap between {:?} and {:?}", w[0], w[1]));
            }
        }
        Ok(())
    }

    /// Alignment of field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn field_align(&self, index: usize) -> u32 {
        self.field_aligns[index]
    }
}

/// Clamp a field size to a scalar load/store width (1, 2, 4 or 8).
fn access_width(size: u32) -> u8 {
    match size {
        1 | 2 | 4 | 8 => size as u8,
        s if s >= 8 => 8,
        _ => 1,
    }
}

impl fmt::Display for LayoutPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan {} for class {} (size {}, {} fields, {} dummies{})",
            self.hash,
            self.class,
            self.size,
            self.field_count(),
            self.dummies.len(),
            if self.natural { ", natural" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};

    fn people_info() -> ClassInfo {
        ClassInfo::from_decl(
            ClassDecl::builder("People")
                .field("vtable", FieldKind::VtablePtr)
                .field("age", FieldKind::I32)
                .field("height", FieldKind::I32)
                .build(),
        )
    }

    #[test]
    fn natural_plan_matches_compiler_layout() {
        let info = people_info();
        let plan = LayoutPlan::natural_for(&info);
        assert!(plan.is_natural());
        assert_eq!(plan.field_offsets(), &[0, 8, 12]);
        assert_eq!(plan.size(), 16);
        assert_eq!(plan.permutation(), vec![0, 1, 2]);
        plan.validate().unwrap();
    }

    #[test]
    fn plan_hash_reflects_content() {
        let info = people_info();
        let a = LayoutPlan::natural_for(&info);
        let b = LayoutPlan::new(
            info.hash(),
            vec![8, 0, 12],
            vec![8, 4, 4],
            Vec::new(),
            16,
            false,
        );
        assert_ne!(a.plan_hash(), b.plan_hash());
        let a2 = LayoutPlan::natural_for(&info);
        assert_eq!(a.plan_hash(), a2.plan_hash());
    }

    #[test]
    fn permutation_sorts_by_offset() {
        let info = people_info();
        let plan = LayoutPlan::new(
            info.hash(),
            vec![8, 0, 4],
            vec![8, 4, 4],
            Vec::new(),
            16,
            false,
        );
        assert_eq!(plan.permutation(), vec![1, 2, 0]);
    }

    #[test]
    fn validate_catches_overlap() {
        let info = people_info();
        let plan = LayoutPlan::new(
            info.hash(),
            vec![0, 4, 4],
            vec![8, 4, 4],
            Vec::new(),
            16,
            false,
        );
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_bounds_dummy() {
        let info = people_info();
        let plan = LayoutPlan::new(
            info.hash(),
            vec![0, 8, 12],
            vec![8, 4, 4],
            vec![DummySlot { offset: 14, size: 8, canary: None }],
            16,
            false,
        );
        assert!(plan.validate().is_err());
    }

    #[test]
    fn offset_checked_is_safe() {
        let plan = LayoutPlan::natural_for(&people_info());
        assert_eq!(plan.offset_checked(2), Some(12));
        assert_eq!(plan.offset_checked(3), None);
    }

    #[test]
    fn access_table_matches_offsets_and_sizes() {
        let plan = LayoutPlan::natural_for(&people_info());
        assert_eq!(plan.access_table().len(), plan.field_count());
        for i in 0..plan.field_count() {
            let a = plan.access(i).unwrap();
            assert_eq!(a.offset, plan.offset(i));
            let size = plan.field_size(i);
            let expected_width = match size {
                1 | 2 | 4 | 8 => size as u8,
                s if s >= 8 => 8,
                _ => 1,
            };
            assert_eq!(a.width, expected_width);
        }
        assert_eq!(plan.access(plan.field_count()), None);
    }

    #[test]
    fn access_width_clamps_odd_and_wide_fields() {
        let info = people_info();
        // A 24-byte "field" (byte array) reads its first word; a 3-byte
        // one falls back to a single byte.
        let plan = LayoutPlan::new(
            info.hash(),
            vec![0, 8, 32],
            vec![8, 24, 3],
            Vec::new(),
            40,
            false,
        );
        assert_eq!(plan.access(0).unwrap().width, 8);
        assert_eq!(plan.access(1).unwrap().width, 8);
        assert_eq!(plan.access(2).unwrap().width, 1);
    }

    #[test]
    fn display_mentions_hash_and_dummies() {
        let plan = LayoutPlan::natural_for(&people_info());
        let s = plan.to_string();
        assert!(s.contains("plan 0x"));
        assert!(s.contains("natural"));
    }
}
