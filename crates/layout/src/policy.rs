//! Randomization policies: what the layout engine is allowed to do.

use std::fmt;

/// How member order is permuted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermuteMode {
    /// No permutation (dummies may still be inserted).
    Off,
    /// Full shuffle of the member order — POLaR's default.
    Full,
    /// `randstruct`-style partial shuffle: members are packed into
    /// cache-line-sized groups in declaration order and only shuffled
    /// *within* each group, limiting the locality damage (Section II-C).
    CacheLineAware {
        /// Cache line size in bytes (64 on the paper's testbed).
        line_size: u32,
    },
}

impl Default for PermuteMode {
    fn default() -> Self {
        PermuteMode::Full
    }
}

impl fmt::Display for PermuteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermuteMode::Off => write!(f, "off"),
            PermuteMode::Full => write!(f, "full"),
            PermuteMode::CacheLineAware { line_size } => {
                write!(f, "cache-line-aware({line_size})")
            }
        }
    }
}

/// Dummy member insertion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DummyPolicy {
    /// Minimum number of dummy members inserted per allocation.
    pub min: u32,
    /// Maximum number of dummy members inserted per allocation.
    pub max: u32,
    /// Size of each dummy member in bytes.
    pub size: u32,
    /// Arm dummies as booby traps (canary-filled; the runtime checks them).
    pub booby_trap: bool,
    /// Guarantee a booby-trapped dummy immediately *before* every pointer
    /// member, the overflow-detection trick of Section IV-A3.
    pub guard_pointers: bool,
}

impl Default for DummyPolicy {
    fn default() -> Self {
        DummyPolicy { min: 1, max: 3, size: 8, booby_trap: true, guard_pointers: true }
    }
}

impl DummyPolicy {
    /// A policy that never inserts dummies.
    pub fn none() -> Self {
        DummyPolicy { min: 0, max: 0, size: 8, booby_trap: false, guard_pointers: false }
    }
}

/// The full randomization policy consumed by
/// [`LayoutEngine`](crate::LayoutEngine).
///
/// The default is POLaR's evaluation configuration: full permutation plus
/// one to three booby-trapped dummies with pointer guarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomizationPolicy {
    /// Permutation mode.
    pub permute: PermuteMode,
    /// Dummy insertion policy.
    pub dummies: DummyPolicy,
}

impl RandomizationPolicy {
    /// Permutation only — no dummies, no traps. The closest analogue of
    /// DSLR/RFOR's transformation.
    pub fn permute_only() -> Self {
        RandomizationPolicy { permute: PermuteMode::Full, dummies: DummyPolicy::none() }
    }

    /// The `randstruct` analogue: cache-line-aware shuffle, no dummies.
    pub fn randstruct_like() -> Self {
        RandomizationPolicy {
            permute: PermuteMode::CacheLineAware { line_size: 64 },
            dummies: DummyPolicy::none(),
        }
    }

    /// No randomization at all (the plan collapses to the natural layout).
    pub fn off() -> Self {
        RandomizationPolicy { permute: PermuteMode::Off, dummies: DummyPolicy::none() }
    }
}

impl fmt::Display for RandomizationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "permute={} dummies={}..={}x{}B{}{}",
            self.permute,
            self.dummies.min,
            self.dummies.max,
            self.dummies.size,
            if self.dummies.booby_trap { " trapped" } else { "" },
            if self.dummies.guard_pointers { " ptr-guarded" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let p = RandomizationPolicy::default();
        assert_eq!(p.permute, PermuteMode::Full);
        assert!(p.dummies.booby_trap);
        assert!(p.dummies.guard_pointers);
        assert!(p.dummies.min >= 1);
    }

    #[test]
    fn presets_differ() {
        assert_ne!(RandomizationPolicy::default(), RandomizationPolicy::permute_only());
        assert_eq!(
            RandomizationPolicy::randstruct_like().permute,
            PermuteMode::CacheLineAware { line_size: 64 }
        );
        assert_eq!(RandomizationPolicy::off().permute, PermuteMode::Off);
    }

    #[test]
    fn display_summarizes_policy() {
        let s = RandomizationPolicy::default().to_string();
        assert!(s.contains("permute=full"));
        assert!(s.contains("trapped"));
        let s = RandomizationPolicy::randstruct_like().to_string();
        assert!(s.contains("cache-line-aware(64)"));
    }
}
