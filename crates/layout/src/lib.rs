//! Object layout randomization engine for POLaR.
//!
//! This crate turns a [`ClassInfo`](polar_classinfo::ClassInfo) into a
//! [`LayoutPlan`]: a concrete, possibly randomized assignment of byte
//! offsets to the class's members. The POLaR runtime generates a **fresh
//! plan per allocation** (Section IV-A of the paper); the compile-time OLR
//! baselines (`randstruct`, DSLR, RFOR) generate **one plan per class per
//! binary**, which [`StaticOlrTable`] models.
//!
//! The engine implements every layout feature the paper describes:
//!
//! * full permutation of member order (Section IV-A3);
//! * **dummy member insertion** to raise entropy (Section IV-A3);
//! * **booby traps**: dummy members carrying canaries placed adjacent to
//!   pointer members, for overflow detection (Section IV-A3, after
//!   Crane et al.);
//! * **cache-line-aware partial randomization**, the mode the kernel's
//!   `randstruct` uses to limit cache damage (Section II-C);
//! * **plan interning** so objects that happen to draw identical layouts
//!   share metadata (the dedup optimization of Section V-B);
//! * entropy accounting ([`entropy`]) used by the ablation experiments.
//!
//! # Example
//!
//! ```
//! use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
//! use polar_layout::{LayoutEngine, RandomizationPolicy};
//! use polar_rng::{rngs::StdRng, SeedableRng};
//!
//! let info = ClassInfo::from_decl(
//!     ClassDecl::builder("People")
//!         .field("vtable", FieldKind::VtablePtr)
//!         .field("age", FieldKind::I32)
//!         .field("height", FieldKind::I32)
//!         .build(),
//! );
//! let engine = LayoutEngine::new(RandomizationPolicy::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let plan_a = engine.generate(&info, &mut rng);
//! let plan_b = engine.generate(&info, &mut rng);
//! // Two allocations of the same class: independently randomized layouts.
//! assert_eq!(plan_a.field_count(), 3);
//! assert_ne!(plan_a.plan_hash(), plan_b.plan_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod entropy;
mod intern;
mod plan;
mod policy;
mod pool;
mod registry;
mod static_olr;
mod stateless;

pub use engine::LayoutEngine;
pub use intern::PlanInterner;
pub use plan::{DummySlot, FieldAccess, LayoutPlan, PlanHash};
pub use registry::PlanRegistry;
pub use policy::{DummyPolicy, PermuteMode, RandomizationPolicy};
pub use pool::{DrawMode, PlanPools, PoolPolicy, PoolStats};
pub use static_olr::StaticOlrTable;
pub use stateless::{
    code_position, code_rank, code_space, pack_perm, permute_index, stateless_bound,
    stateless_perm, stateless_plan,
    stateless_plan_from_code, stateless_size_bound, stateless_trapped_plan, EpochKey, PermBlock,
    PermCode, RoundKeys, StatelessPolicy, PERM_BLOCK_RUN, STATELESS_MAX_FIELDS,
    STATELESS_TRAP_MAX, TRAP_SLOT_BYTES,
};
