//! A process-wide, append-only registry of interned layout plans,
//! readable without any lock.
//!
//! The lock-free read path cannot chase an `Arc<LayoutPlan>` out of a
//! mutex-guarded shard — the whole point is not to take the mutex. So
//! published object metadata carries a small integer **plan id**
//! instead, and readers resolve it here: ids are handed out once,
//! plans are never removed or replaced, and storage is chunked behind
//! `OnceLock` so a plan's address is stable for the registry's whole
//! lifetime. A reader holding any id observed from a published
//! snapshot can therefore dereference it with two array indexations
//! and zero synchronization beyond one `Acquire` length load.
//!
//! Writers (the shards, during `record_object`) intern through a small
//! mutex; that lock is on the *allocation* path, never the read path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::plan::{LayoutPlan, PlanHash};

/// Plans per chunk; chunks are committed on demand and never moved.
const PLANS_PER_CHUNK: usize = 1024;
/// Chunk-directory size: the registry caps out at
/// `PLANS_PER_CHUNK * MAX_CHUNKS` distinct plans, after which `intern`
/// returns `None` and callers publish metadata without an id (readers
/// for those objects fall back to the lock — degraded, never wrong).
const MAX_CHUNKS: usize = 1024;

/// Append-only shared plan storage: `intern` under a writer mutex,
/// `get` lock-free.
pub struct PlanRegistry {
    chunks: Box<[OnceLock<Box<[OnceLock<Arc<LayoutPlan>>]>>]>,
    /// Number of ids published; `Release`-stored after the slot is
    /// filled, so `get(id < len)` always finds an initialized entry.
    len: AtomicU32,
    /// Writer-side dedup map (plan hash → id).
    ids: Mutex<HashMap<PlanHash, u32>>,
}

impl std::fmt::Debug for PlanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanRegistry").field("len", &self.len()).finish()
    }
}

impl Default for PlanRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PlanRegistry {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicU32::new(0),
            ids: Mutex::new(HashMap::new()),
        }
    }

    /// Register `plan` (deduplicated by plan hash) and return its id,
    /// or `None` when the registry is full. Takes the writer mutex —
    /// call from allocation paths only.
    pub fn intern(&self, plan: &Arc<LayoutPlan>) -> Option<u32> {
        let mut ids = self.ids.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = ids.get(&plan.plan_hash()) {
            return Some(id);
        }
        let id = self.len.load(Ordering::Relaxed);
        let (chunk, i) = (id as usize / PLANS_PER_CHUNK, id as usize % PLANS_PER_CHUNK);
        let chunk = self.chunks.get(chunk)?;
        let chunk =
            chunk.get_or_init(|| (0..PLANS_PER_CHUNK).map(|_| OnceLock::new()).collect());
        chunk[i].set(Arc::clone(plan)).expect("fresh id slot is unset");
        self.len.store(id + 1, Ordering::Release);
        ids.insert(plan.plan_hash(), id);
        Some(id)
    }

    /// Resolve an id to its plan. Lock-free; `None` for ids never
    /// handed out.
    #[inline]
    pub fn get(&self, id: u32) -> Option<&Arc<LayoutPlan>> {
        if id >= self.len.load(Ordering::Acquire) {
            return None;
        }
        let (chunk, i) = (id as usize / PLANS_PER_CHUNK, id as usize % PLANS_PER_CHUNK);
        self.chunks.get(chunk)?.get()?[i].get()
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Whether the registry holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held by registry bookkeeping (chunk directory + committed
    /// chunks + dedup map), excluding the plans themselves (owned by
    /// the interners that created them and counted there).
    pub fn metadata_bytes(&self) -> usize {
        let committed = self.chunks.iter().filter(|c| c.get().is_some()).count();
        std::mem::size_of_val(self.chunks.as_ref())
            + committed * PLANS_PER_CHUNK * std::mem::size_of::<OnceLock<Arc<LayoutPlan>>>()
            + self.ids.lock().unwrap_or_else(|e| e.into_inner()).capacity()
                * (std::mem::size_of::<PlanHash>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutEngine, RandomizationPolicy};
    use polar_classinfo::{ClassDecl, ClassInfo, FieldKind};
    use polar_rng::{rngs::StdRng, SeedableRng};

    fn plans(n: usize) -> Vec<Arc<LayoutPlan>> {
        let info = ClassInfo::from_decl(
            ClassDecl::builder("Reg")
                .field("a", FieldKind::I64)
                .field("b", FieldKind::I64)
                .field("c", FieldKind::I32)
                .field("d", FieldKind::I32)
                .build(),
        );
        let engine = LayoutEngine::new(RandomizationPolicy::default());
        let mut rng = StdRng::seed_from_u64(41);
        (0..n).map(|_| Arc::new(engine.generate(&info, &mut rng))).collect()
    }

    #[test]
    fn ids_are_dense_deduplicated_and_stable() {
        let reg = PlanRegistry::new();
        let ps = plans(5);
        let ids: Vec<u32> = ps.iter().map(|p| reg.intern(p).unwrap()).collect();
        for (i, (p, id)) in ps.iter().zip(&ids).enumerate() {
            assert_eq!(reg.intern(p), Some(*id), "re-intern must dedup");
            assert_eq!(
                reg.get(*id).unwrap().plan_hash(),
                p.plan_hash(),
                "id {i} must resolve to its plan"
            );
        }
        assert_eq!(reg.len(), ps.len());
        assert!(reg.get(ids.len() as u32).is_none());
        assert!(reg.metadata_bytes() > 0);
    }

    #[test]
    fn concurrent_readers_see_every_published_id() {
        let reg = Arc::new(PlanRegistry::new());
        let ps = plans(64);
        std::thread::scope(|scope| {
            let reader_reg = Arc::clone(&reg);
            let expected: Vec<PlanHash> = ps.iter().map(|p| p.plan_hash()).collect();
            scope.spawn(move || {
                // Spin over the growing registry: every visible id must
                // resolve, and to the right plan.
                for _ in 0..10_000 {
                    let len = reader_reg.len() as u32;
                    for id in 0..len {
                        let plan = reader_reg.get(id).expect("published id resolves");
                        assert_eq!(plan.plan_hash(), expected[id as usize]);
                    }
                }
            });
            for p in &ps {
                reg.intern(p).unwrap();
            }
        });
        assert_eq!(reg.len(), 64);
    }
}
