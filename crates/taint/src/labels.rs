//! DFSan-style union labels.

use std::collections::HashMap;
use std::fmt;

/// A taint label. `Label(0)` means *untainted*; every other value indexes
/// the [`LabelTable`], exactly like DFSan's 16-bit shadow labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Label(pub u16);

impl Label {
    /// The untainted label.
    pub const CLEAN: Label = Label(0);

    /// Whether this label carries any taint.
    pub fn is_tainted(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[derive(Debug, Clone)]
enum LabelDef {
    Base(String),
    Union(Label, Label),
}

/// The label table: base labels name taint sources; union labels are
/// created on demand and memoized, mirroring DFSan's
/// `dfsan_create_label`/`dfsan_union` design (including the 16-bit
/// capacity limit — on exhaustion unions saturate to a catch-all label
/// rather than failing).
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    defs: Vec<LabelDef>,
    union_memo: HashMap<(u16, u16), Label>,
    exhausted: Option<Label>,
}

impl LabelTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of labels created (bases + unions).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no label has been created.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    fn push(&mut self, def: LabelDef) -> Label {
        if self.defs.len() >= usize::from(u16::MAX) - 1 {
            // Capacity exhausted: saturate (DFSan aborts here; we degrade
            // gracefully so fuzzing campaigns keep running).
            return *self.exhausted.get_or_insert_with(|| {
                // One slot is reserved above so this push always fits.
                Label(u16::MAX)
            });
        }
        self.defs.push(def);
        Label(self.defs.len() as u16)
    }

    /// Create a named base label (a taint source).
    pub fn create_base(&mut self, name: impl Into<String>) -> Label {
        self.push(LabelDef::Base(name.into()))
    }

    /// Union two labels. Commutative, idempotent, memoized; unioning with
    /// [`Label::CLEAN`] is the identity.
    pub fn union(&mut self, a: Label, b: Label) -> Label {
        if a == b || b == Label::CLEAN {
            return a;
        }
        if a == Label::CLEAN {
            return b;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&l) = self.union_memo.get(&key) {
            return l;
        }
        // Subsumption check: if one side already contains the other the
        // union is the larger label.
        if self.contains_label(a, b) {
            self.union_memo.insert(key, a);
            return a;
        }
        if self.contains_label(b, a) {
            self.union_memo.insert(key, b);
            return b;
        }
        let l = self.push(LabelDef::Union(Label(key.0), Label(key.1)));
        self.union_memo.insert(key, l);
        l
    }

    /// Whether `haystack` transitively includes `needle`.
    pub fn contains_label(&self, haystack: Label, needle: Label) -> bool {
        if haystack == needle {
            return true;
        }
        if haystack == Label::CLEAN || needle == Label::CLEAN {
            return needle == Label::CLEAN;
        }
        let mut stack = vec![haystack];
        while let Some(l) = stack.pop() {
            if l == needle {
                return true;
            }
            if let Some(LabelDef::Union(x, y)) = self.defs.get(usize::from(l.0) - 1) {
                stack.push(*x);
                stack.push(*y);
            }
        }
        false
    }

    /// The names of every base label reachable from `label`, sorted and
    /// de-duplicated.
    pub fn base_names(&self, label: Label) -> Vec<&str> {
        let mut names = Vec::new();
        let mut stack = vec![label];
        let mut seen = std::collections::HashSet::new();
        while let Some(l) = stack.pop() {
            if l == Label::CLEAN || !seen.insert(l) {
                continue;
            }
            match self.defs.get(usize::from(l.0) - 1) {
                Some(LabelDef::Base(name)) => names.push(name.as_str()),
                Some(LabelDef::Union(a, b)) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                None => {}
            }
        }
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_label_is_identity_for_union() {
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        assert_eq!(t.union(a, Label::CLEAN), a);
        assert_eq!(t.union(Label::CLEAN, a), a);
        assert_eq!(t.union(Label::CLEAN, Label::CLEAN), Label::CLEAN);
    }

    #[test]
    fn union_is_commutative_and_memoized() {
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        let b = t.create_base("b");
        let ab = t.union(a, b);
        let ba = t.union(b, a);
        assert_eq!(ab, ba);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn union_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        assert_eq!(t.union(a, a), a);
    }

    #[test]
    fn subsumption_avoids_new_labels() {
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        let b = t.create_base("b");
        let ab = t.union(a, b);
        // (a ∪ b) ∪ a = a ∪ b, no fresh label.
        assert_eq!(t.union(ab, a), ab);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn contains_is_transitive() {
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        let b = t.create_base("b");
        let c = t.create_base("c");
        let ab = t.union(a, b);
        let abc = t.union(ab, c);
        assert!(t.contains_label(abc, a));
        assert!(t.contains_label(abc, c));
        assert!(t.contains_label(abc, ab));
        assert!(!t.contains_label(ab, c));
    }

    #[test]
    fn base_names_are_collected() {
        let mut t = LabelTable::new();
        let a = t.create_base("input[0]");
        let b = t.create_base("input[1]");
        let ab = t.union(a, b);
        assert_eq!(t.base_names(ab), vec!["input[0]", "input[1]"]);
        assert_eq!(t.base_names(Label::CLEAN), Vec::<&str>::new());
    }

    #[test]
    fn join_semilattice_property() {
        // union is associative up to label identity on contained bases.
        let mut t = LabelTable::new();
        let a = t.create_base("a");
        let b = t.create_base("b");
        let c = t.create_base("c");
        let left = {
            let ab = t.union(a, b);
            t.union(ab, c)
        };
        let right = {
            let bc = t.union(b, c);
            t.union(a, bc)
        };
        assert_eq!(t.base_names(left), t.base_names(right));
    }
}
