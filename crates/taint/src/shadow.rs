//! Byte-granular shadow memory over the simulated heap.

use polar_simheap::Addr;

use crate::labels::{Label, LabelTable};

/// A shadow byte array parallel to the heap arena, holding one [`Label`]
/// per data byte — DFSan's shadow-memory scheme.
#[derive(Debug, Clone, Default)]
pub struct ShadowMemory {
    bytes: Vec<u16>,
}

impl ShadowMemory {
    /// An empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, end: usize) {
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
    }

    /// The label of the byte at `addr`.
    pub fn get(&self, addr: Addr) -> Label {
        self.bytes.get(addr.0 as usize).copied().map(Label).unwrap_or(Label::CLEAN)
    }

    /// Set `len` bytes starting at `addr` to `label`.
    pub fn set_range(&mut self, addr: Addr, len: usize, label: Label) {
        if len == 0 {
            return;
        }
        let start = addr.0 as usize;
        self.ensure(start + len);
        self.bytes[start..start + len].fill(label.0);
    }

    /// Union of the labels over `len` bytes starting at `addr`.
    pub fn union_range(&self, addr: Addr, len: usize, table: &mut LabelTable) -> Label {
        let start = addr.0 as usize;
        let mut acc = Label::CLEAN;
        for i in 0..len {
            let l = self.bytes.get(start + i).copied().map(Label).unwrap_or(Label::CLEAN);
            acc = table.union(acc, l);
        }
        acc
    }

    /// Copy `len` shadow bytes from `src` to `dst` (memmove semantics).
    pub fn copy_range(&mut self, dst: Addr, src: Addr, len: usize) {
        if len == 0 {
            return;
        }
        let s = src.0 as usize;
        let d = dst.0 as usize;
        self.ensure(s + len);
        self.ensure(d + len);
        self.bytes.copy_within(s..s + len, d);
    }

    /// Whether any byte in the range is tainted.
    pub fn any_tainted(&self, addr: Addr, len: usize) -> bool {
        let start = addr.0 as usize;
        (0..len).any(|i| self.bytes.get(start + i).copied().unwrap_or(0) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let s = ShadowMemory::new();
        assert_eq!(s.get(Addr(123)), Label::CLEAN);
        assert!(!s.any_tainted(Addr(0), 64));
    }

    #[test]
    fn set_and_get_ranges() {
        let mut s = ShadowMemory::new();
        s.set_range(Addr(16), 4, Label(3));
        assert_eq!(s.get(Addr(15)), Label::CLEAN);
        assert_eq!(s.get(Addr(16)), Label(3));
        assert_eq!(s.get(Addr(19)), Label(3));
        assert_eq!(s.get(Addr(20)), Label::CLEAN);
        assert!(s.any_tainted(Addr(18), 8));
    }

    #[test]
    fn union_range_merges_labels() {
        let mut table = LabelTable::new();
        let a = table.create_base("a");
        let b = table.create_base("b");
        let mut s = ShadowMemory::new();
        s.set_range(Addr(0), 2, a);
        s.set_range(Addr(2), 2, b);
        let u = s.union_range(Addr(0), 4, &mut table);
        assert!(table.contains_label(u, a));
        assert!(table.contains_label(u, b));
        // Range past the shadow end is clean, not a panic.
        let tail = s.union_range(Addr(100), 8, &mut table);
        assert_eq!(tail, Label::CLEAN);
    }

    #[test]
    fn copy_range_moves_labels() {
        let mut s = ShadowMemory::new();
        s.set_range(Addr(0), 4, Label(7));
        s.copy_range(Addr(32), Addr(0), 4);
        assert_eq!(s.get(Addr(32)), Label(7));
        assert_eq!(s.get(Addr(35)), Label(7));
        // Overlapping copy behaves like memmove.
        s.copy_range(Addr(34), Addr(32), 4);
        assert_eq!(s.get(Addr(37)), Label(7));
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut s = ShadowMemory::new();
        s.set_range(Addr(5), 0, Label(1));
        s.copy_range(Addr(1), Addr(2), 0);
        assert!(!s.any_tainted(Addr(0), 16));
    }
}
