//! TaintClass reports: which classes the untrusted input can influence.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use polar_classinfo::{ClassId, ClassRegistry};

/// Per-class taint findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassTaint {
    /// Field indices whose stored content was input-tainted.
    pub content_fields: BTreeSet<u16>,
    /// Whether the class's allocation/deallocation happened under
    /// input-dependent control flow (the paper's "life-cycle" taint).
    pub lifecycle: bool,
    /// How many tainted stores were observed into this class.
    pub tainted_stores: u64,
}

impl ClassTaint {
    /// Whether anything at all is tainted.
    pub fn is_tainted(&self) -> bool {
        !self.content_fields.is_empty() || self.lifecycle
    }
}

/// The TaintClass result: the object list the randomization framework
/// consumes as feedback (Figure 3 of the paper), mergeable across a
/// fuzzing corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintClassReport {
    per_class: BTreeMap<ClassId, ClassTaint>,
}

impl TaintClassReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_content(&mut self, class: ClassId, field: u16) {
        let entry = self.per_class.entry(class).or_default();
        entry.content_fields.insert(field);
        entry.tainted_stores += 1;
    }

    pub(crate) fn record_lifecycle(&mut self, class: ClassId) {
        self.per_class.entry(class).or_default().lifecycle = true;
    }

    /// Findings for one class, if any.
    pub fn class_taint(&self, class: ClassId) -> Option<&ClassTaint> {
        self.per_class.get(&class).filter(|t| t.is_tainted())
    }

    /// The randomization target list: every tainted class, in id order.
    pub fn tainted_classes(&self) -> Vec<ClassId> {
        self.per_class
            .iter()
            .filter(|(_, t)| t.is_tainted())
            .map(|(&c, _)| c)
            .collect()
    }

    /// Number of tainted classes (the "# of tainted objects" column of
    /// the paper's Table I).
    pub fn tainted_class_count(&self) -> usize {
        self.per_class.values().filter(|t| t.is_tainted()).count()
    }

    /// Merge another report into this one (corpus aggregation).
    pub fn merge(&mut self, other: &TaintClassReport) {
        for (&class, taint) in &other.per_class {
            let entry = self.per_class.entry(class).or_default();
            entry.content_fields.extend(taint.content_fields.iter().copied());
            entry.lifecycle |= taint.lifecycle;
            entry.tainted_stores += taint.tainted_stores;
        }
    }

    /// Render the report with class and field names resolved through the
    /// registry — the human-readable object list of Table I.
    pub fn render(&self, registry: &ClassRegistry) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} tainted classes:", self.tainted_class_count());
        for (&class, taint) in &self.per_class {
            if !taint.is_tainted() {
                continue;
            }
            let info = match registry.get_checked(class) {
                Some(i) => i,
                None => continue,
            };
            let fields: Vec<&str> = taint
                .content_fields
                .iter()
                .filter_map(|&i| info.fields().get(usize::from(i)).map(|f| f.name()))
                .collect();
            let _ = writeln!(
                out,
                "  {}: fields [{}]{} ({} tainted stores)",
                info.name(),
                fields.join(", "),
                if taint.lifecycle { " + life-cycle" } else { "" },
                taint.tainted_stores,
            );
        }
        out
    }
}

impl fmt::Display for TaintClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TaintClass report: {} tainted classes", self.tainted_class_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};

    #[test]
    fn record_and_query() {
        let mut r = TaintClassReport::new();
        let c = ClassId(0);
        assert!(r.class_taint(c).is_none());
        r.record_content(c, 2);
        r.record_content(c, 2);
        let t = r.class_taint(c).unwrap();
        assert_eq!(t.tainted_stores, 2);
        assert!(t.content_fields.contains(&2));
        assert_eq!(r.tainted_class_count(), 1);
    }

    #[test]
    fn lifecycle_only_counts_as_tainted() {
        let mut r = TaintClassReport::new();
        r.record_lifecycle(ClassId(3));
        assert_eq!(r.tainted_classes(), vec![ClassId(3)]);
    }

    #[test]
    fn merge_unions_findings() {
        let mut a = TaintClassReport::new();
        a.record_content(ClassId(0), 1);
        let mut b = TaintClassReport::new();
        b.record_content(ClassId(0), 2);
        b.record_lifecycle(ClassId(1));
        a.merge(&b);
        assert_eq!(a.tainted_class_count(), 2);
        let t = a.class_taint(ClassId(0)).unwrap();
        assert!(t.content_fields.contains(&1) && t.content_fields.contains(&2));
    }

    #[test]
    fn render_resolves_names() {
        let mut registry = ClassRegistry::new();
        let c = registry
            .register(
                ClassDecl::builder("png_struct_def")
                    .field("width", FieldKind::I32)
                    .field("height", FieldKind::I32)
                    .build(),
            )
            .unwrap();
        let mut r = TaintClassReport::new();
        r.record_content(c, 1);
        r.record_lifecycle(c);
        let s = r.render(&registry);
        assert!(s.contains("png_struct_def"));
        assert!(s.contains("height"));
        assert!(s.contains("life-cycle"));
    }

    #[test]
    fn display_is_compact() {
        let r = TaintClassReport::new();
        assert_eq!(r.to_string(), "TaintClass report: 0 tainted classes");
    }
}
