//! DFSan stand-in and the TaintClass framework.
//!
//! POLaR's **TaintClass** (Section IV-B of the paper) automates the choice
//! of randomization targets: it labels untrusted program input at byte
//! granularity, tracks the labels through memory with LLVM's
//! DataFlowSanitizer, and reports every class whose *content* or
//! *life-cycle* is influenced by the input. Those classes — and only
//! those — need POLaR randomization; the rest are skipped for performance
//! (the paper's "object selection problem", Section III-B3).
//!
//! This crate rebuilds that pipeline over the reproduction's interpreter:
//!
//! * [`LabelTable`] — DFSan's union-label design: 16-bit labels, base
//!   labels for taint sources, memoized pairwise unions;
//! * [`ShadowMemory`] — a byte-granular shadow of the simulated heap;
//! * [`TaintTracker`] — a [`Tracer`](polar_ir::trace::Tracer) that mirrors
//!   the interpreter's data flow through registers, call frames and heap
//!   bytes, attributes tainted stores to `(class, field)` through the
//!   class registry, and tracks a sticky per-frame *control taint* so
//!   allocations/frees that happen under input-dependent branches are
//!   reported as life-cycle tainted;
//! * [`TaintClassReport`] — the per-class result, mergeable across a
//!   fuzzing corpus (Section IV-B2 combines DFSan with libFuzzer inputs);
//! * [`analyze`]/[`analyze_corpus`] — the TaintClass drivers.
//!
//! # Example
//!
//! ```
//! use polar_classinfo::{ClassDecl, FieldKind};
//! use polar_ir::builder::ModuleBuilder;
//! use polar_ir::interp::ExecLimits;
//! use polar_taint::{analyze, TaintConfig};
//!
//! // A parser that copies an input byte into an object field.
//! let mut mb = ModuleBuilder::new("parser");
//! let hdr = mb
//!     .add_class(ClassDecl::builder("Header").field("magic", FieldKind::I32).build())
//!     .unwrap();
//! let mut f = mb.function("main", 0);
//! let bb = f.entry_block();
//! let obj = f.alloc_obj(bb, hdr);
//! let idx = f.const_(bb, 0);
//! let byte = f.input_byte(bb, idx);
//! let fld = f.gep(bb, obj, hdr, 0);
//! f.store(bb, fld, byte, 4);
//! f.ret(bb, None);
//! mb.finish_function(f);
//! let module = mb.build().unwrap();
//!
//! let (report, _) = analyze(&module, &[0x89], ExecLimits::default(), &TaintConfig::default());
//! assert!(report.class_taint(hdr).is_some_and(|t| t.content_fields.contains(&0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod labels;
mod report;
mod shadow;
mod tracker;

pub use labels::{Label, LabelTable};
pub use report::{ClassTaint, TaintClassReport};
pub use shadow::ShadowMemory;
pub use tracker::{TaintConfig, TaintTracker};

use polar_ir::interp::{run, ExecLimits, ExecReport};
use polar_ir::Module;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

/// Run one TaintClass analysis execution over `module` with `input`.
///
/// The module is executed **natively** (TaintClass runs orthogonally to the
/// hardened binary, Section IV-B1); the returned report lists the classes
/// whose content or life-cycle the input influenced during this run.
pub fn analyze(
    module: &Module,
    input: &[u8],
    limits: ExecLimits,
    config: &TaintConfig,
) -> (TaintClassReport, ExecReport) {
    let mut rt = ObjectRuntime::new(RandomizeMode::Native, RuntimeConfig::default());
    let mut tracker = TaintTracker::new(&module.registry, config.clone());
    let exec = run(module, &mut rt, input, limits, &mut tracker);
    (tracker.into_report(), exec)
}

/// Run TaintClass over a whole corpus of inputs, merging the per-run
/// reports — the DFSan + libFuzzer combination of Section IV-B2.
pub fn analyze_corpus<'a, I>(
    module: &Module,
    inputs: I,
    limits: ExecLimits,
    config: &TaintConfig,
) -> TaintClassReport
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut merged = TaintClassReport::default();
    for input in inputs {
        let (report, _) = analyze(module, input, limits, config);
        merged.merge(&report);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_ir::builder::ModuleBuilder;

    #[test]
    fn corpus_analysis_merges_reports() {
        // Input byte 0 selects which of two classes gets written.
        let mut mb = ModuleBuilder::new("p");
        let a = mb
            .add_class(ClassDecl::builder("A").field("x", FieldKind::I64).build())
            .unwrap();
        let b = mb
            .add_class(ClassDecl::builder("B").field("y", FieldKind::I64).build())
            .unwrap();
        let mut f = mb.function("main", 0);
        let bb = f.entry_block();
        let use_a = f.block();
        let use_b = f.block();
        let done = f.block();
        let zero = f.const_(bb, 0);
        let sel = f.input_byte(bb, zero);
        f.br(bb, sel, use_a, use_b);
        let idx1 = f.const_(use_a, 1);
        let v1 = f.input_byte(use_a, idx1);
        let oa = f.alloc_obj(use_a, a);
        let fa = f.gep(use_a, oa, a, 0);
        f.store(use_a, fa, v1, 8);
        f.jmp(use_a, done);
        let idx2 = f.const_(use_b, 1);
        let v2 = f.input_byte(use_b, idx2);
        let ob = f.alloc_obj(use_b, b);
        let fb = f.gep(use_b, ob, b, 0);
        f.store(use_b, fb, v2, 8);
        f.jmp(use_b, done);
        f.ret(done, None);
        mb.finish_function(f);
        let module = mb.build().unwrap();

        let cfg = TaintConfig::default();
        let (ra, _) = analyze(&module, &[1, 9], ExecLimits::default(), &cfg);
        let (rb, _) = analyze(&module, &[0, 9], ExecLimits::default(), &cfg);
        assert!(ra.class_taint(a).is_some());
        assert!(ra.class_taint(b).is_none());
        assert!(rb.class_taint(b).is_some());

        let merged = analyze_corpus(
            &module,
            [&[1u8, 9][..], &[0u8, 9][..]],
            ExecLimits::default(),
            &cfg,
        );
        assert!(merged.class_taint(a).is_some());
        assert!(merged.class_taint(b).is_some());
        assert_eq!(merged.tainted_classes().len(), 2);
    }
}
