//! The taint tracker: a [`Tracer`] that mirrors interpreter data flow.

use std::collections::{BTreeMap, HashMap};

use polar_classinfo::{ClassId, ClassRegistry};
use polar_ir::trace::{TraceEvent, Tracer};
use polar_ir::{Inst, Reg};
use polar_simheap::Addr;

use crate::labels::{Label, LabelTable};
use crate::report::TaintClassReport;
use crate::shadow::ShadowMemory;

/// Taint-tracking configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintConfig {
    /// Input bytes are labelled in chunks of this many bytes (1 = DFSan's
    /// full byte granularity; larger chunks bound label growth on big
    /// inputs).
    pub chunk_size: usize,
    /// Track life-cycle taint: allocations/frees under input-dependent
    /// control flow (a conservative over-approximation of the paper's
    /// "allocation/deallocation affected by input").
    pub track_lifecycle: bool,
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig { chunk_size: 8, track_lifecycle: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct ObjectExtent {
    class: ClassId,
    size: u32,
    live: bool,
}

/// Mirrors the interpreter's data flow: per-frame register labels, a
/// byte-granular heap shadow, object extents, and sticky per-frame control
/// taint. Consumed with [`TaintTracker::into_report`].
#[derive(Debug)]
pub struct TaintTracker<'r> {
    registry: &'r ClassRegistry,
    config: TaintConfig,
    table: LabelTable,
    shadow: ShadowMemory,
    frames: Vec<Vec<Label>>,
    control: Vec<bool>,
    objects: BTreeMap<u64, ObjectExtent>,
    input_chunk_labels: HashMap<u64, Label>,
    input_len_label: Option<Label>,
    report: TaintClassReport,
}

impl<'r> TaintTracker<'r> {
    /// Create a tracker resolving classes through `registry`.
    pub fn new(registry: &'r ClassRegistry, config: TaintConfig) -> Self {
        TaintTracker {
            registry,
            config,
            table: LabelTable::new(),
            shadow: ShadowMemory::new(),
            frames: vec![Vec::new()],
            control: vec![false],
            objects: BTreeMap::new(),
            input_chunk_labels: HashMap::new(),
            input_len_label: None,
            report: TaintClassReport::new(),
        }
    }

    /// Finish tracking and return the TaintClass report.
    pub fn into_report(self) -> TaintClassReport {
        self.report
    }

    /// The label table (for inspection in tests/tools).
    pub fn label_table(&self) -> &LabelTable {
        &self.table
    }

    /// Label of a register in the current frame.
    pub fn reg_label(&self, reg: Reg) -> Label {
        self.frames
            .last()
            .and_then(|f| f.get(usize::from(reg.0)))
            .copied()
            .unwrap_or(Label::CLEAN)
    }

    fn set_reg(&mut self, reg: Reg, label: Label) {
        let frame = self.frames.last_mut().expect("at least one frame");
        let idx = usize::from(reg.0);
        if frame.len() <= idx {
            frame.resize(idx + 1, Label::CLEAN);
        }
        frame[idx] = label;
    }

    fn get_reg(&self, reg: Reg) -> Label {
        self.reg_label(reg)
    }

    fn control_tainted(&self) -> bool {
        *self.control.last().unwrap_or(&false)
    }

    fn input_chunk_label(&mut self, byte_index: u64) -> Label {
        let chunk = byte_index / self.config.chunk_size as u64;
        if let Some(&l) = self.input_chunk_labels.get(&chunk) {
            return l;
        }
        let lo = chunk * self.config.chunk_size as u64;
        let hi = lo + self.config.chunk_size as u64;
        let l = self.table.create_base(format!("input[{lo}..{hi})"));
        self.input_chunk_labels.insert(chunk, l);
        l
    }

    fn object_containing(&self, addr: Addr) -> Option<(u64, ObjectExtent)> {
        let (&base, &ext) = self.objects.range(..=addr.0).next_back()?;
        if ext.live && addr.0 < base + u64::from(ext.size) {
            Some((base, ext))
        } else {
            None
        }
    }

    /// Attribute a tainted write at `addr` to `(class, field)` via the
    /// natural layout (TaintClass executes the *uninstrumented* program,
    /// so objects are laid out naturally).
    fn attribute_store(&mut self, addr: Addr, len: usize) {
        let Some((base, ext)) = self.object_containing(addr) else { return };
        let Some(info) = self.registry.get_checked(ext.class) else { return };
        let off_lo = (addr.0 - base) as u32;
        let off_hi = off_lo + len as u32;
        for (i, field) in info.fields().iter().enumerate() {
            let f_lo = info.natural().offset(i);
            let f_hi = f_lo + field.kind().size();
            if off_lo < f_hi && f_lo < off_hi {
                self.report.record_content(ext.class, i as u16);
            }
        }
    }

    /// After a bulk copy into `dst`, scan the destination object's fields
    /// for tainted shadow bytes.
    fn attribute_copy(&mut self, dst: Addr, len: usize) {
        let Some((base, ext)) = self.object_containing(dst) else { return };
        let Some(info) = self.registry.get_checked(ext.class) else { return };
        let copy_end = dst.0 + len as u64;
        for (i, field) in info.fields().iter().enumerate() {
            let f_lo = base + u64::from(info.natural().offset(i));
            let f_len = field.kind().size() as usize;
            if f_lo >= dst.0.saturating_sub(f_len as u64) && f_lo < copy_end {
                if self.shadow.any_tainted(Addr(f_lo), f_len) {
                    self.report.record_content(ext.class, i as u16);
                }
            }
        }
    }
}

impl Tracer for TaintTracker<'_> {
    fn on_event(&mut self, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Scalar { inst } => match inst {
                Inst::Const { dst, .. } => self.set_reg(*dst, Label::CLEAN),
                Inst::Mov { dst, src } => {
                    let l = self.get_reg(*src);
                    self.set_reg(*dst, l);
                }
                Inst::Bin { dst, a, b, .. } | Inst::Cmp { dst, a, b, .. } => {
                    let la = self.get_reg(*a);
                    let lb = self.get_reg(*b);
                    let l = self.table.union(la, lb);
                    self.set_reg(*dst, l);
                }
                _ => {}
            },
            TraceEvent::Load { dst, addr, width } => {
                let l = self.shadow.union_range(*addr, usize::from(*width), &mut self.table);
                self.set_reg(*dst, l);
            }
            TraceEvent::Store { src, addr, width } => {
                let l = self.get_reg(*src);
                self.shadow.set_range(*addr, usize::from(*width), l);
                if l.is_tainted() {
                    self.attribute_store(*addr, usize::from(*width));
                }
            }
            TraceEvent::Memcpy { dst, src, len } => {
                self.shadow.copy_range(*dst, *src, *len as usize);
                if self.shadow.any_tainted(*dst, *len as usize) {
                    self.attribute_copy(*dst, *len as usize);
                }
            }
            TraceEvent::InputLen { dst } => {
                let l = match self.input_len_label {
                    Some(l) => l,
                    None => {
                        let l = self.table.create_base("input_len");
                        self.input_len_label = Some(l);
                        l
                    }
                };
                self.set_reg(*dst, l);
            }
            TraceEvent::InputByte { dst, index } => {
                let l = self.input_chunk_label(*index);
                self.set_reg(*dst, l);
            }
            TraceEvent::InputRead { buf, off, copied } => {
                for i in 0..*copied {
                    let l = self.input_chunk_label(off + i);
                    self.shadow.set_range(buf.offset(i), 1, l);
                }
                if *copied > 0 {
                    self.attribute_copy(*buf, *copied as usize);
                }
            }
            TraceEvent::ObjAlloc { dst, base, class, size } => {
                self.set_reg(*dst, Label::CLEAN);
                self.objects
                    .insert(base.0, ObjectExtent { class: *class, size: *size, live: true });
                // Fresh allocations start with a clean shadow (the slot
                // may hold stale labels from a previous occupant).
                self.shadow.set_range(*base, *size as usize, Label::CLEAN);
                if self.config.track_lifecycle && self.control_tainted() {
                    self.report.record_lifecycle(*class);
                }
            }
            TraceEvent::ObjFree { base } => {
                if let Some(ext) = self.objects.get_mut(&base.0) {
                    ext.live = false;
                    let class = ext.class;
                    if self.config.track_lifecycle && self.control_tainted() {
                        self.report.record_lifecycle(class);
                    }
                }
            }
            TraceEvent::FieldAddr { dst, obj, .. } => {
                // A derived pointer inherits the base pointer's taint.
                let l = self.get_reg(*obj);
                self.set_reg(*dst, l);
            }
            TraceEvent::ObjCopy { dst, src, class } => {
                let size = self
                    .registry
                    .get_checked(*class)
                    .map(|i| i.size() as usize)
                    .unwrap_or(0);
                self.shadow.copy_range(*dst, *src, size);
                if self.shadow.any_tainted(*dst, size) {
                    self.attribute_copy(*dst, size);
                }
            }
            TraceEvent::BufAlloc { dst, base, size } => {
                self.set_reg(*dst, Label::CLEAN);
                self.shadow.set_range(*base, *size as usize, Label::CLEAN);
            }
            TraceEvent::BufFree { .. } => {}
            TraceEvent::CallEnter { args, callee_regs, .. } => {
                let labels: Vec<Label> = args.iter().map(|&r| self.get_reg(r)).collect();
                let mut frame = vec![Label::CLEAN; usize::from(*callee_regs)];
                for (i, l) in labels.into_iter().enumerate() {
                    if i < frame.len() {
                        frame[i] = l;
                    }
                }
                let inherited = self.control_tainted();
                self.frames.push(frame);
                self.control.push(inherited);
            }
            TraceEvent::CallExit { ret_src, ret_dst } => {
                let ret_label = ret_src.map(|r| self.get_reg(r)).unwrap_or(Label::CLEAN);
                if self.frames.len() > 1 {
                    self.frames.pop();
                    self.control.pop();
                }
                if let Some(dst) = ret_dst {
                    self.set_reg(*dst, ret_label);
                }
            }
            TraceEvent::Branch { cond, .. } => {
                if self.get_reg(*cond).is_tainted() {
                    if let Some(flag) = self.control.last_mut() {
                        *flag = true;
                    }
                }
            }
            TraceEvent::Edge { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_ir::builder::ModuleBuilder;
    use polar_ir::interp::{run, ExecLimits};
    use polar_ir::{BinOp, CmpOp};
    use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

    fn run_tracked(
        build: impl FnOnce(&mut ModuleBuilder) -> Vec<ClassId>,
        input: &[u8],
    ) -> (TaintClassReport, Vec<ClassId>) {
        let mut mb = ModuleBuilder::new("t");
        let classes = build(&mut mb);
        let module = mb.build().unwrap();
        let mut rt = ObjectRuntime::new(RandomizeMode::Native, RuntimeConfig::default());
        let mut tracker = TaintTracker::new(&module.registry, TaintConfig::default());
        let report = run(&module, &mut rt, input, ExecLimits::default(), &mut tracker);
        assert!(report.result.is_ok(), "{:?}", report.result);
        (tracker.into_report(), classes)
    }

    #[test]
    fn direct_store_of_input_byte_taints_field() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(
                        ClassDecl::builder("Hdr")
                            .field("magic", FieldKind::I32)
                            .field("len", FieldKind::I32)
                            .build(),
                    )
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let obj = f.alloc_obj(bb, c);
                let i = f.const_(bb, 3);
                let v = f.input_byte(bb, i);
                let fld = f.gep(bb, obj, c, 1);
                f.store(bb, fld, v, 4);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[1, 2, 3, 4],
        );
        let t = report.class_taint(classes[0]).unwrap();
        assert!(t.content_fields.contains(&1));
        assert!(!t.content_fields.contains(&0));
    }

    #[test]
    fn arithmetic_propagates_taint() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("C").field("x", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let obj = f.alloc_obj(bb, c);
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let scaled = f.bini(bb, BinOp::Mul, v, 100);
                let fld = f.gep(bb, obj, c, 0);
                f.store(bb, fld, scaled, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[7],
        );
        assert!(report.class_taint(classes[0]).is_some());
    }

    #[test]
    fn constants_are_clean() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("C").field("x", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let obj = f.alloc_obj(bb, c);
                let v = f.const_(bb, 42);
                let fld = f.gep(bb, obj, c, 0);
                f.store(bb, fld, v, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[7],
        );
        assert_eq!(report.tainted_class_count(), 0);
        assert!(report.class_taint(classes[0]).is_none());
    }

    #[test]
    fn taint_flows_through_memory_and_memcpy() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("C").field("data", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                // input -> buffer -> second buffer -> load -> object field
                let buf = f.alloc_buf_bytes(bb, 32);
                let off = f.const_(bb, 0);
                let len = f.const_(bb, 8);
                f.input_read(bb, buf, off, len);
                let buf2 = f.alloc_buf_bytes(bb, 32);
                f.memcpy(bb, buf2, buf, len);
                let v = f.load(bb, buf2, 8);
                let obj = f.alloc_obj(bb, c);
                let fld = f.gep(bb, obj, c, 0);
                f.store(bb, fld, v, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            b"ABCDEFGH",
        );
        assert!(report.class_taint(classes[0]).is_some());
    }

    #[test]
    fn input_read_directly_into_object_taints_fields() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(
                        ClassDecl::builder("Raw")
                            .field("a", FieldKind::I32)
                            .field("b", FieldKind::I32)
                            .build(),
                    )
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let obj = f.alloc_obj(bb, c);
                let off = f.const_(bb, 0);
                let len = f.const_(bb, 8);
                f.input_read(bb, obj, off, len);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[1, 2, 3, 4, 5, 6, 7, 8],
        );
        let t = report.class_taint(classes[0]).unwrap();
        assert!(t.content_fields.contains(&0));
        assert!(t.content_fields.contains(&1));
    }

    #[test]
    fn taint_crosses_calls_and_returns() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("C").field("x", FieldKind::I64).build())
                    .unwrap();
                let double = {
                    let mut f = mb.function("double", 1);
                    let bb = f.entry_block();
                    let d = f.bini(bb, BinOp::Add, f.param(0), 0);
                    let d2 = f.bin(bb, BinOp::Add, d, f.param(0));
                    f.ret(bb, Some(d2));
                    let id = f.id();
                    mb.finish_function(f);
                    id
                };
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let r = f.call(bb, double, &[v]);
                let obj = f.alloc_obj(bb, c);
                let fld = f.gep(bb, obj, c, 0);
                f.store(bb, fld, r, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[5],
        );
        assert!(report.class_taint(classes[0]).is_some());
    }

    #[test]
    fn lifecycle_taint_via_tainted_branch() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("Session").field("id", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let alloc_bb = f.block();
                let done = f.block();
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let cond = f.cmpi(bb, CmpOp::Gt, v, 10);
                f.br(bb, cond, alloc_bb, done);
                let obj = f.alloc_obj(alloc_bb, c);
                let k = f.const_(alloc_bb, 1);
                let fld = f.gep(alloc_bb, obj, c, 0);
                f.store(alloc_bb, fld, k, 8);
                f.jmp(alloc_bb, done);
                f.ret(done, None);
                mb.finish_function(f);
                vec![c]
            },
            &[200],
        );
        let t = report.class_taint(classes[0]).unwrap();
        assert!(t.lifecycle, "allocation under tainted branch must be life-cycle tainted");
        // Content is NOT tainted (a constant was stored).
        assert!(t.content_fields.is_empty());
    }

    #[test]
    fn recycled_slot_does_not_leak_stale_taint() {
        let (report, classes) = run_tracked(
            |mb| {
                let tainted = mb
                    .add_class(ClassDecl::builder("T1").field("x", FieldKind::I64).build())
                    .unwrap();
                let clean = mb
                    .add_class(ClassDecl::builder("T2").field("y", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let o1 = f.alloc_obj(bb, tainted);
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let fld = f.gep(bb, o1, tainted, 0);
                f.store(bb, fld, v, 8);
                f.free_obj(bb, o1);
                // Reuses the same slot; its shadow must be cleaned.
                let o2 = f.alloc_obj(bb, clean);
                let k = f.const_(bb, 7);
                let fld2 = f.gep(bb, o2, clean, 0);
                f.store(bb, fld2, k, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![tainted, clean]
            },
            &[9],
        );
        assert!(report.class_taint(classes[0]).is_some());
        assert!(report.class_taint(classes[1]).is_none(), "stale shadow leaked");
    }

    #[test]
    fn object_copies_propagate_taint_to_the_duplicate() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(
                        ClassDecl::builder("Blob")
                            .field("hdr", FieldKind::I32)
                            .field("len", FieldKind::I32)
                            .build(),
                    )
                    .unwrap();
                let sink = mb
                    .add_class(ClassDecl::builder("Sink").field("x", FieldKind::I32).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let src = f.alloc_obj(bb, c);
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let fld = f.gep(bb, src, c, 1);
                f.store(bb, fld, v, 4);
                // Duplicate the object, then read the copy's field into a
                // third class.
                let dup = f.alloc_obj(bb, c);
                f.copy_obj(bb, dup, src, c);
                let dfld = f.gep(bb, dup, c, 1);
                let out = f.load(bb, dfld, 4);
                let s = f.alloc_obj(bb, sink);
                let sfld = f.gep(bb, s, sink, 0);
                f.store(bb, sfld, out, 4);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c, sink]
            },
            &[0x7F],
        );
        // Both the duplicate's class and the downstream sink are tainted.
        assert!(report.class_taint(classes[0]).is_some());
        assert!(report.class_taint(classes[1]).is_some());
    }

    #[test]
    fn input_length_is_a_taint_source() {
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("Hdr").field("n", FieldKind::I64).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let len = f.input_len(bb);
                let o = f.alloc_obj(bb, c);
                let fld = f.gep(bb, o, c, 0);
                f.store(bb, fld, len, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[1, 2, 3],
        );
        assert!(report.class_taint(classes[0]).is_some(),
            "the input length itself is attacker-controlled");
    }

    #[test]
    fn pointer_taint_flows_through_gep() {
        // A pointer loaded from tainted memory taints derived accesses'
        // address register (not the pointee content).
        let (report, classes) = run_tracked(
            |mb| {
                let c = mb
                    .add_class(ClassDecl::builder("Node").field("next", FieldKind::Ptr).build())
                    .unwrap();
                let mut f = mb.function("main", 0);
                let bb = f.entry_block();
                let obj = f.alloc_obj(bb, c);
                let i = f.const_(bb, 0);
                let v = f.input_byte(bb, i);
                let fld = f.gep(bb, obj, c, 0);
                f.store(bb, fld, v, 8);
                f.ret(bb, None);
                mb.finish_function(f);
                vec![c]
            },
            &[1],
        );
        let t = report.class_taint(classes[0]).unwrap();
        assert!(t.content_fields.contains(&0));
    }
}
