//! Statistical and determinism sanity for the in-tree PRNG: the
//! properties every other crate in the workspace silently relies on.

use std::collections::HashSet;

use polar_rng::rngs::StdRng;
use polar_rng::seq::SliceRandom;
use polar_rng::{Rng, RngExt, SeedableRng, SplitMix64, Xoshiro256StarStar};

#[test]
fn seeded_streams_are_reproducible() {
    let draw = |seed: u64| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..64).map(|_| rng.next_u64()).collect()
    };
    assert_eq!(draw(0), draw(0));
    assert_eq!(draw(0xDEAD_BEEF), draw(0xDEAD_BEEF));
}

#[test]
fn distinct_seeds_give_distinct_streams() {
    // Adjacent seeds are the hard case: SplitMix64 expansion must
    // decorrelate them. Check pairwise over a window of seeds.
    let streams: Vec<Vec<u64>> = (0..16)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.next_u64()).collect()
        })
        .collect();
    for i in 0..streams.len() {
        for j in i + 1..streams.len() {
            assert_ne!(streams[i], streams[j], "seeds {i} and {j} collide");
        }
    }
    // And the streams should not even share single draws.
    let all: HashSet<u64> = streams.iter().flatten().copied().collect();
    assert_eq!(all.len(), 16 * 8, "cross-seed draw collision");
}

#[test]
fn random_range_stays_in_bounds() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..10_000 {
        let a: u32 = rng.random_range(17..23);
        assert!((17..23).contains(&a));
        let b: u64 = rng.random_range(0..=5);
        assert!(b <= 5);
        let c: i32 = rng.random_range(-8..=8);
        assert!((-8..=8).contains(&c));
        let d: usize = rng.random_range(0..1);
        assert_eq!(d, 0);
        let e: u8 = rng.random_range(0..=u8::MAX);
        let _ = e; // full domain: any value is in bounds by construction
    }
}

#[test]
fn random_range_hits_every_value() {
    // A uniform sampler over 0..8 must visit all 8 residues quickly.
    let mut rng = StdRng::seed_from_u64(2);
    let mut seen = [0u32; 8];
    for _ in 0..4_000 {
        seen[rng.random_range(0..8usize)] += 1;
    }
    for (value, count) in seen.iter().enumerate() {
        // Expected 500 each; 3-sigma for a binomial(4000, 1/8) is ~±63.
        assert!(
            (300..700).contains(count),
            "value {value} drawn {count}/4000 times — sampler is biased"
        );
    }
}

#[test]
#[should_panic(expected = "empty range")]
fn empty_range_panics() {
    let mut rng = StdRng::seed_from_u64(3);
    let _: u32 = rng.random_range(5..5);
}

#[test]
fn shuffle_is_a_permutation() {
    let mut rng = StdRng::seed_from_u64(4);
    for len in [0usize, 1, 2, 7, 64] {
        let original: Vec<usize> = (0..len).collect();
        let mut shuffled = original.clone();
        shuffled.shuffle(&mut rng);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle lost or duplicated elements at len {len}");
    }
}

#[test]
fn shuffle_reaches_many_permutations() {
    let mut rng = StdRng::seed_from_u64(5);
    let perms: HashSet<Vec<u8>> = (0..200)
        .map(|_| {
            let mut v: Vec<u8> = (0..4).collect();
            v.shuffle(&mut rng);
            v
        })
        .collect();
    // 4! = 24; 200 draws should see every one of them.
    assert_eq!(perms.len(), 24, "shuffle misses permutations: {}", perms.len());
}

#[test]
fn random_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(6);
    for (p, lo, hi) in [(0.0, 0, 0), (1.0, 10_000, 10_000), (0.25, 2_100, 2_900)] {
        let hits = (0..10_000).filter(|_| rng.random_bool(p)).count();
        assert!((lo..=hi).contains(&hits), "p={p}: {hits}/10000 hits");
    }
}

#[test]
fn fill_bytes_covers_partial_words() {
    let mut rng = StdRng::seed_from_u64(7);
    for len in [0usize, 1, 7, 8, 9, 31] {
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        if len >= 8 {
            assert!(buf.iter().any(|&b| b != 0), "len {len} stayed all-zero");
        }
    }
    // Deterministic: same seed, same bytes.
    let fill = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        buf
    };
    assert_eq!(fill(8), fill(8));
    assert_ne!(fill(8), fill(9));
}

#[test]
fn bit_balance_is_plausible() {
    // Crude equidistribution check: ones-density of the stream.
    let mut rng = Xoshiro256StarStar::seed_from_u64(10);
    let ones: u32 = (0..1_000).map(|_| rng.next_u64().count_ones()).sum();
    let total = 64_000;
    assert!(
        (total * 48 / 100..total * 52 / 100).contains(&ones),
        "ones density {ones}/{total} outside 48–52%"
    );
}

#[test]
fn choose_is_uniformish_and_total() {
    let mut rng = StdRng::seed_from_u64(11);
    let empty: [u8; 0] = [];
    assert!(empty.choose(&mut rng).is_none());
    let items = [1u8, 2, 3];
    let mut seen = HashSet::new();
    for _ in 0..100 {
        seen.insert(*items.choose(&mut rng).unwrap());
    }
    assert_eq!(seen.len(), 3);
}

#[test]
fn splitmix_and_generic_rng_work_through_references() {
    // `&mut R` must itself be an Rng (call sites pass rngs by reference
    // through generic helpers).
    fn draw<R: Rng>(mut rng: R) -> u64 {
        rng.next_u64()
    }
    let mut sm = SplitMix64::new(1);
    let first = draw(&mut sm);
    let second = draw(&mut sm);
    assert_ne!(first, second, "reference delegation re-seeded the stream");
}
