//! SplitMix64: the seed expander.
//!
//! A tiny, fast, full-period generator over a 64-bit state. Its one job
//! here is turning a user-facing 64-bit seed into well-mixed state for
//! [`Xoshiro256StarStar`](crate::Xoshiro256StarStar) — adjacent seeds
//! (0, 1, 2, …) must still produce uncorrelated streams, which the
//! finalizer's avalanche guarantees.

use crate::Rng;

/// Sebastiano Vigna's SplitMix64 (public-domain reference constants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First three outputs of the public-domain reference
        // implementation seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn zero_seed_still_mixes() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
