//! SplitMix64: the seed expander.
//!
//! A tiny, fast, full-period generator over a 64-bit state. Its one job
//! here is turning a user-facing 64-bit seed into well-mixed state for
//! [`Xoshiro256StarStar`](crate::Xoshiro256StarStar) — adjacent seeds
//! (0, 1, 2, …) must still produce uncorrelated streams, which the
//! finalizer's avalanche guarantees.

use crate::Rng;

/// The golden-ratio increment the state advances by on every draw.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// How many draws each [`SplitMix64::stream`] window spans (2^32).
///
/// Stream `i` starts exactly `i * STREAM_DRAWS` draws into the root
/// sequence, so two streams only collide if one of them consumes more
/// than 2^32 values — far beyond any use in this workspace.
pub const STREAM_DRAWS: u64 = 1 << 32;

/// Sebastiano Vigna's SplitMix64 (public-domain reference constants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advance the generator by `draws` outputs in O(1).
    ///
    /// SplitMix64's state moves by a fixed increment per draw, so a jump
    /// is a single multiply — this is what makes cheap disjoint
    /// per-thread streams possible.
    pub fn jump(&mut self, draws: u64) {
        self.state = self.state.wrapping_add(GAMMA.wrapping_mul(draws));
    }

    /// Stream `index` of the root sequence seeded by `root`: the
    /// generator positioned [`STREAM_DRAWS`] `* index` draws in.
    ///
    /// Streams with distinct indices are guaranteed non-overlapping
    /// windows of the same full-period sequence as long as each consumes
    /// fewer than 2^32 draws. The sharded runtime hands stream `t` to
    /// thread `t` so per-thread randomness stays independent of
    /// scheduling and of every other thread's consumption.
    pub fn stream(root: u64, index: u64) -> Self {
        let mut rng = SplitMix64::new(root);
        rng.jump(STREAM_DRAWS.wrapping_mul(index));
        rng
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First three outputs of the public-domain reference
        // implementation seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn zero_seed_still_mixes() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn jump_matches_sequential_draws() {
        for n in [0u64, 1, 2, 17, 1000] {
            let mut walked = SplitMix64::new(0xDEAD_BEEF);
            for _ in 0..n {
                walked.next_u64();
            }
            let mut jumped = SplitMix64::new(0xDEAD_BEEF);
            jumped.jump(n);
            assert_eq!(walked, jumped, "jump({n}) diverged from {n} draws");
            assert_eq!(walked.next_u64(), jumped.next_u64());
        }
    }

    #[test]
    fn streams_are_disjoint_windows_of_the_root_sequence() {
        // Stream 0 is the root sequence itself.
        assert_eq!(SplitMix64::stream(42, 0), SplitMix64::new(42));
        // Stream i sits exactly i * STREAM_DRAWS draws in.
        let mut root = SplitMix64::new(42);
        root.jump(STREAM_DRAWS);
        assert_eq!(SplitMix64::stream(42, 1), root);
        let mut root = SplitMix64::new(42);
        root.jump(STREAM_DRAWS.wrapping_mul(7));
        assert_eq!(SplitMix64::stream(42, 7), root);
        // Distinct streams start from distinct states.
        let a = SplitMix64::stream(42, 1).next_u64();
        let b = SplitMix64::stream(42, 2).next_u64();
        assert_ne!(a, b);
    }
}
