//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (Fisher–Yates, uniform over all permutations).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
