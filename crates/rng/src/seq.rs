//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (Fisher–Yates, uniform over all permutations).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distr::chi_square;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    /// Rank a 4-element permutation into 0..24 (Lehmer code).
    fn perm_index(p: &[u8; 4]) -> usize {
        let mut idx = 0usize;
        for i in 0..4 {
            let rank = p[i + 1..].iter().filter(|&&x| x < p[i]).count();
            idx = idx * (4 - i) + rank;
        }
        idx
    }

    #[test]
    fn shuffle_is_uniform_over_permutations_chi_square() {
        // 4! = 24 cells, 48k shuffles: expected 2000 per cell. The
        // 0.9999 quantile of chi-square with 23 degrees of freedom is
        // ~57.3; the seed is fixed so the check is deterministic. This
        // is the distribution the plan pool's Fisher-Yates field
        // shuffles rely on.
        const SHUFFLES: u64 = 48_000;
        let mut rng = StdRng::seed_from_u64(0x5EED_F00D);
        let mut counts = [0u64; 24];
        for _ in 0..SHUFFLES {
            let mut p = [0u8, 1, 2, 3];
            p.shuffle(&mut rng);
            counts[perm_index(&p)] += 1;
        }
        let chi2 = chi_square(&counts, SHUFFLES);
        assert!(
            chi2 < 62.0,
            "shuffle looks non-uniform over S4: chi^2 = {chi2:.1}, counts {counts:?}"
        );
    }

    #[test]
    fn choose_is_uniform_chi_square() {
        const DRAWS: u64 = 70_000;
        let items = [0usize, 1, 2, 3, 4, 5, 6];
        let mut rng = StdRng::seed_from_u64(0xC405_E);
        let mut counts = [0u64; 7];
        for _ in 0..DRAWS {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        let chi2 = chi_square(&counts, DRAWS);
        assert!(chi2 < 36.0, "choose looks non-uniform: chi^2 = {chi2:.1}, counts {counts:?}");
    }
}
