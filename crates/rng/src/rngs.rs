//! Named generators, mirroring `rand::rngs`.

use crate::{Rng, SeedableRng, Xoshiro256StarStar};

/// The workspace's standard generator: xoshiro256\*\* under a stable
/// name, so call sites don't couple to the algorithm choice.
///
/// Deterministic by construction — there is deliberately no
/// `from_entropy`/OS-randomness constructor in this workspace. Every
/// stream is a pure function of its seed, which is what makes layout
/// randomization replayable in tests and attack simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256StarStar);

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(Xoshiro256StarStar::from_seed(seed))
    }
}

impl StdRng {
    /// Split off an independent generator 2^128 draws ahead in the
    /// stream (see [`Xoshiro256StarStar::jump`]).
    pub fn split(&mut self) -> StdRng {
        let child = self.0.clone();
        self.0.jump();
        StdRng(child)
    }
}
