//! Batched entropy: a cache-line buffer over xoshiro256\*\*.
//!
//! The POLaR allocation fast path (paper §V-B) wants one cheap random
//! index per `olr_malloc`, not a full generator state update on every
//! draw. [`BufferedRng`] amortizes the xoshiro state transitions by
//! refilling a 64-byte block (eight u64 words — one cache line) at a
//! time and serving subsequent draws straight from the buffer: the
//! common case is a load plus a cursor bump, and the generator state is
//! touched once per eight draws.
//!
//! Crucially, buffering does **not** reorder the stream: the words come
//! out in exactly the order xoshiro produces them, so `BufferedRng` is a
//! drop-in replacement for a bare [`Xoshiro256StarStar`] (and for
//! [`StdRng`](crate::rngs::StdRng)) with an identical output sequence
//! for the same seed. Determinism-sensitive callers (replay tests, the
//! diversity estimator) see no change.

use crate::xoshiro::Xoshiro256StarStar;
use crate::{Rng, SeedableRng};

/// Words per refill: 8 × 8 bytes = one 64-byte cache line.
pub const BUFFERED_RNG_WORDS: usize = 8;

/// A [`Rng`] that serves u64s from a cache-line block refilled in batch
/// from [`Xoshiro256StarStar`]. Stream-identical to the inner generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedRng {
    inner: Xoshiro256StarStar,
    buf: [u64; BUFFERED_RNG_WORDS],
    /// Next unserved word; `BUFFERED_RNG_WORDS` means "buffer empty".
    pos: usize,
}

impl BufferedRng {
    /// Wrap an already-seeded generator. The buffer starts empty, so the
    /// first draw triggers a refill.
    pub fn new(inner: Xoshiro256StarStar) -> Self {
        BufferedRng {
            inner,
            buf: [0; BUFFERED_RNG_WORDS],
            pos: BUFFERED_RNG_WORDS,
        }
    }

    /// Number of words still buffered (diagnostic; 0 right before a
    /// refill, up to [`BUFFERED_RNG_WORDS`] right after one).
    pub fn buffered(&self) -> usize {
        BUFFERED_RNG_WORDS - self.pos
    }

    #[inline]
    fn refill(&mut self) {
        for word in &mut self.buf {
            *word = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl Rng for BufferedRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == BUFFERED_RNG_WORDS {
            self.refill();
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }
}

impl SeedableRng for BufferedRng {
    type Seed = <Xoshiro256StarStar as SeedableRng>::Seed;

    fn from_seed(seed: Self::Seed) -> Self {
        BufferedRng::new(Xoshiro256StarStar::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::RngExt;

    #[test]
    fn stream_identical_to_bare_xoshiro() {
        let mut bare = Xoshiro256StarStar::seed_from_u64(0xFEED_BEEF);
        let mut buffered = BufferedRng::seed_from_u64(0xFEED_BEEF);
        // Cross several refill boundaries.
        for _ in 0..100 {
            assert_eq!(bare.next_u64(), buffered.next_u64());
        }
    }

    #[test]
    fn stream_identical_to_stdrng() {
        // StdRng wraps the same generator, so BufferedRng can replace it
        // anywhere without perturbing seeded replay.
        let mut std = StdRng::seed_from_u64(42);
        let mut buffered = BufferedRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(std.next_u64(), buffered.next_u64());
        }
    }

    #[test]
    fn derived_draws_match_stdrng() {
        let mut std = StdRng::seed_from_u64(7);
        let mut buffered = BufferedRng::seed_from_u64(7);
        for _ in 0..50 {
            let a: u64 = std.random_range(0..1000);
            let b: u64 = buffered.random_range(0..1000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn buffer_cursor_wraps_at_cache_line() {
        let mut rng = BufferedRng::seed_from_u64(1);
        assert_eq!(rng.buffered(), 0);
        let _ = rng.next_u64();
        assert_eq!(rng.buffered(), BUFFERED_RNG_WORDS - 1);
        for _ in 0..BUFFERED_RNG_WORDS - 1 {
            let _ = rng.next_u64();
        }
        assert_eq!(rng.buffered(), 0);
        let _ = rng.next_u64();
        assert_eq!(rng.buffered(), BUFFERED_RNG_WORDS - 1);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut words = Xoshiro256StarStar::seed_from_u64(9);
        let mut buffered = BufferedRng::seed_from_u64(9);
        let mut bytes = [0u8; 24];
        buffered.fill_bytes(&mut bytes);
        for chunk in bytes.chunks_exact(8) {
            assert_eq!(chunk, words.next_u64().to_le_bytes());
        }
    }
}
