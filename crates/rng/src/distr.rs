//! Uniform distributions: whole-domain draws and range sampling.

use core::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types with a uniform draw over their whole domain.
pub trait Random: Sized {
    /// A uniform sample from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! random_int_impl {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

random_int_impl!(u8, u16, u32, i8, i16, i32, usize, isize, i64);

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53-bit resolution.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform on `[0, 1)` with 24-bit resolution.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integers that can be sampled uniformly from a closed range.
pub trait UniformInt: Copy + PartialOrd {
    /// A uniform sample from `lo..=hi`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The largest value one below `hi` (for open-range sampling).
    fn one_below(hi: Self) -> Self;
}

macro_rules! uniform_int_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Map through the unsigned domain so signed ranges work,
                // then pick via fixed-point multiply (Lemire): monotone
                // in the raw draw and free of modulo's worst-case bias.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                (lo as $u).wrapping_add(offset as $u) as $t
            }

            fn one_below(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}

uniform_int_impl!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Ranges that [`RngExt::random_range`](crate::RngExt::random_range)
/// accepts.
pub trait SampleRange<T> {
    /// A uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, T::one_below(self.end))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}
