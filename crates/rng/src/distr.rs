//! Uniform distributions: whole-domain draws and range sampling.

use core::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types with a uniform draw over their whole domain.
pub trait Random: Sized {
    /// A uniform sample from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! random_int_impl {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

random_int_impl!(u8, u16, u32, i8, i16, i32, usize, isize, i64);

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53-bit resolution.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform on `[0, 1)` with 24-bit resolution.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integers that can be sampled uniformly from a closed range.
pub trait UniformInt: Copy + PartialOrd {
    /// A uniform sample from `lo..=hi`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The largest value one below `hi` (for open-range sampling).
    fn one_below(hi: Self) -> Self;
}

macro_rules! uniform_int_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Map through the unsigned domain so signed ranges work,
                // then pick via Lemire's nearly-divisionless method: a
                // fixed-point multiply selects the bucket, and draws whose
                // low product word falls inside the `2^64 mod s` remainder
                // are rejected so every bucket covers exactly the same
                // number of raw 64-bit values. Without the rejection step,
                // `floor(x * s / 2^64)` alone over-represents the first
                // `2^64 mod s` buckets by one raw value each.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let s = span + 1;
                let mut m = u128::from(rng.next_u64()) * u128::from(s);
                if (m as u64) < s {
                    // Only compute the threshold on this cold branch;
                    // `s.wrapping_neg() % s == 2^64 mod s`.
                    let threshold = s.wrapping_neg() % s;
                    while (m as u64) < threshold {
                        m = u128::from(rng.next_u64()) * u128::from(s);
                    }
                }
                let offset = (m >> 64) as u64;
                (lo as $u).wrapping_add(offset as $u) as $t
            }

            fn one_below(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}

uniform_int_impl!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Ranges that [`RngExt::random_range`](crate::RngExt::random_range)
/// accepts.
pub trait SampleRange<T> {
    /// A uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, T::one_below(self.end))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Pearson's chi-square statistic for observed cell counts against a
/// uniform expectation. Shared by the distribution tests here and the
/// shuffle tests in [`crate::seq`].
#[cfg(test)]
pub(crate) fn chi_square(observed: &[u64], total: u64) -> f64 {
    let expected = total as f64 / observed.len() as f64;
    observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{RngExt, SeedableRng};

    /// An `Rng` replaying a scripted sequence of raw words.
    struct ScriptedRng {
        words: Vec<u64>,
        next: usize,
    }

    impl Rng for ScriptedRng {
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.next];
            self.next += 1;
            w
        }
    }

    #[test]
    fn rejection_resamples_the_remainder_region() {
        // For span 6 the rejection threshold is 2^64 mod 6 = 4: a raw
        // word x is rejected iff the low word of x*6 is below 4, which
        // happens exactly for x = 0 and x = 2^63 (both give low word 0).
        // Both must be resampled; the third word is accepted.
        let mut rng = ScriptedRng { words: vec![0, 1 << 63, 5], next: 0 };
        let v: u64 = rng.random_range(0..6);
        assert_eq!(rng.next, 3, "the two remainder-region words must be rejected");
        assert_eq!(v, 0, "x = 5 maps to bucket (5 * 6) >> 64 = 0");

        // A word just outside the remainder region is accepted first try.
        let mut rng = ScriptedRng { words: vec![1, 99], next: 0 };
        let v: u64 = rng.random_range(0..6);
        assert_eq!(rng.next, 1);
        assert_eq!(v, 0);
    }

    #[test]
    fn range_draws_are_uniform_chi_square() {
        // 13 cells, 130k draws: expected 10k per cell. The 0.9999
        // quantile of chi-square with 12 degrees of freedom is ~39.5;
        // the seed is fixed so the check is deterministic.
        const CELLS: usize = 13;
        const DRAWS: u64 = 130_000;
        let mut rng = StdRng::seed_from_u64(0x600D_5EED);
        let mut counts = [0u64; CELLS];
        for _ in 0..DRAWS {
            counts[rng.random_range(0..CELLS)] += 1;
        }
        let chi2 = chi_square(&counts, DRAWS);
        assert!(chi2 < 45.0, "range draws look non-uniform: chi^2 = {chi2:.1}, counts {counts:?}");
    }

    #[test]
    fn signed_range_draws_are_uniform_chi_square() {
        // Signed ranges go through the same unsigned mapping; make sure
        // the wraparound arithmetic keeps the distribution flat.
        const DRAWS: u64 = 110_000;
        let mut rng = StdRng::seed_from_u64(0xB1A5_0FF5);
        let mut counts = [0u64; 11];
        for _ in 0..DRAWS {
            let v: i32 = rng.random_range(-5..=5);
            counts[(v + 5) as usize] += 1;
        }
        let chi2 = chi_square(&counts, DRAWS);
        assert!(chi2 < 42.0, "signed draws look non-uniform: chi^2 = {chi2:.1}, counts {counts:?}");
    }
}
