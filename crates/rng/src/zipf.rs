//! Zipf(s, n) sampling by rejection-inversion.
//!
//! The session-store workload keys its traffic by a Zipf law — a few
//! hot keys absorb most operations, a long tail stays cold — which is
//! the canonical access pattern for cache/KV evaluations. Sampling it
//! naively (inverse CDF over a precomputed table) costs O(n) setup and
//! a binary search per draw; Hörmann & Derflinger's rejection-inversion
//! method ("Rejection-inversion to generate variates from monotone
//! discrete distributions", ACM TOMACS 1996) needs O(1) setup, O(1)
//! expected draws, and works for any exponent `s >= 0` including the
//! classic `s = 1` harmonic case.
//!
//! The crate is `no_std`, so the transcendentals the method needs
//! (`ln`, `exp`) are implemented here on top of core float arithmetic:
//! argument reduction into a narrow interval plus a short series, good
//! to ~1e-14 relative error (verified against `std` in the tests).
//! Sampling is fully deterministic per seed: every draw consumes raw
//! words from the caller's [`Rng`] and nothing else.

use crate::{Rng, RngExt};

/// A Zipf distribution over `1..=n` with `P(k)` proportional to
/// `k^-s`, sampled by rejection-inversion.
///
/// Construction is O(1) and the struct is `Copy`-cheap to clone, so
/// workloads can hold one per thread. Draws are deterministic per
/// seed: equal generator streams yield equal key sequences.
///
/// ```
/// use polar_rng::rngs::StdRng;
/// use polar_rng::{SeedableRng, Zipf};
///
/// let zipf = Zipf::new(1_000_000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let key = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&key));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: f64,
    exponent: f64,
    /// `H(1.5) - h(1)`: the top of the inversion interval.
    h_integral_x1: f64,
    /// `H(n + 0.5)`: the bottom of the inversion interval.
    h_integral_n: f64,
    /// Shortcut threshold: candidates within `s` of their bucket centre
    /// are accepted without evaluating the hat function.
    s: f64,
}

impl Zipf {
    /// A Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or when `exponent` is negative or not
    /// finite (`s = 0` is allowed and degenerates to uniform).
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        let nf = n as f64;
        let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
        let h_integral_n = h_integral(nf + 0.5, exponent);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Zipf { n: nf, exponent, h_integral_x1, h_integral_n, s }
    }

    /// The number of elements `n`.
    pub fn elements(&self) -> u64 {
        self.n as u64
    }

    /// One draw from the distribution: a key in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            // u is uniform on (H(1.5) - h(1), H(n + 0.5)]; inverting H
            // proposes a continuous candidate x whose rounded bucket k
            // is accepted iff u lies under the discrete histogram.
            let f: f64 = rng.random();
            let u = self.h_integral_n + f * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.exponent);
            let k64 = clamp(x, 1.0, self.n);
            // k64 >= 1 so truncation of k64 + 0.5 is round-to-nearest.
            let k = (k64 + 0.5) as u64 as f64;
            if k - x <= self.s || u >= h_integral(k + 0.5, self.exponent) - h(k, self.exponent) {
                return k as u64;
            }
        }
    }
}

fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    // f64::clamp rejects NaN bounds at runtime; ours are constants, but
    // the explicit form also pins NaN x to lo instead of propagating.
    if x >= hi {
        hi
    } else if x >= lo {
        x
    } else {
        lo
    }
}

/// `H(x) = (x^(1-s) - 1) / (1 - s)`, continued as `ln x` at `s = 1`.
///
/// Written as `helper2((1-s) ln x) * ln x` so the `s -> 1` limit is
/// taken by the series instead of a 0/0 division.
fn h_integral(x: f64, exponent: f64) -> f64 {
    let log_x = ln(x);
    helper2((1.0 - exponent) * log_x) * log_x
}

/// `h(x) = x^-s`, the (unnormalized) probability weight at `x`.
fn h(x: f64, exponent: f64) -> f64 {
    exp(-exponent * ln(x))
}

/// `H^-1(x)`: the inverse of [`h_integral`].
fn h_integral_inverse(x: f64, exponent: f64) -> f64 {
    let mut t = x * (1.0 - exponent);
    if t < -1.0 {
        // Limit the argument range of ln1p below; this only triggers
        // from rounding at the very bottom of the inversion interval
        // and the caller clamps the result into [1, n] anyway.
        t = -1.0;
    }
    exp(helper1(t) * x)
}

/// `ln(1 + x) / x`, with the series limit `1 - x/2 + x^2/3 - ...` near
/// zero where the direct form loses all its precision.
fn helper1(x: f64) -> f64 {
    if x > -0.5 && x < 0.5 {
        // Alternating series, |x| < 0.5: sum x^k (-1)^k / (k + 1).
        let mut sum = 0.0;
        let mut term = 1.0;
        let mut k = 0u32;
        loop {
            sum += term / (k + 1) as f64;
            k += 1;
            if k > 40 {
                break;
            }
            term *= -x;
            if term == 0.0 {
                break;
            }
        }
        sum
    } else if x <= -1.0 {
        // ln(0)/(-1): the inversion tail; saturate so exp() clamps.
        f64::INFINITY
    } else {
        ln(1.0 + x) / x
    }
}

/// `(exp(x) - 1) / x`, with the series limit `1 + x/2 + x^2/6 + ...`
/// near zero.
fn helper2(x: f64) -> f64 {
    if x > -0.5 && x < 0.5 {
        let mut sum = 0.0;
        let mut term = 1.0;
        for k in 1..=24u32 {
            sum += term;
            term *= x / (k + 1) as f64;
        }
        sum
    } else {
        (exp(x) - 1.0) / x
    }
}

const LN2: f64 = core::f64::consts::LN_2;

/// Natural log for positive finite normal inputs, in pure core math.
///
/// Decomposes `x = m * 2^e` with `m` in `[sqrt(1/2), sqrt(2))`, then
/// `ln m = 2 atanh((m-1)/(m+1))` by its odd series; the reduced
/// argument satisfies `|t| <= 0.1716` so ten terms reach ~1e-16.
pub(crate) fn ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "ln domain: {x}");
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if e == -1023 {
        // Subnormal input: renormalize by scaling up 2^52 first.
        let y = x * (1u64 << 52) as f64;
        let ybits = y.to_bits();
        e = ((ybits >> 52) & 0x7ff) as i64 - 1023 - 52;
        m = f64::from_bits((ybits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    }
    if m > core::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // atanh(t) = t + t^3/3 + t^5/5 + ... ; evaluate by Horner from the
    // highest term so the small corrections accumulate first.
    let mut poly = 1.0 / 19.0;
    let mut k = 17i32;
    while k >= 1 {
        poly = poly * t2 + 1.0 / k as f64;
        k -= 2;
    }
    2.0 * t * poly + e as f64 * LN2
}

/// `e^x` for any finite input, in pure core math; saturates to
/// `f64::MAX` above the overflow threshold and to `0` below the
/// underflow threshold.
///
/// Reduces `x = k ln2 + r` with `|r| <= ln2 / 2`, sums thirteen Taylor
/// terms of `e^r`, and applies the exact power-of-two scale by bit
/// construction.
pub(crate) fn exp(x: f64) -> f64 {
    if x > 709.0 {
        return f64::MAX;
    }
    if x < -745.0 {
        return 0.0;
    }
    let k = if x >= 0.0 { (x / LN2 + 0.5) as i64 } else { (x / LN2 - 0.5) as i64 };
    // Split ln2 into a high part exact in the product and a low
    // correction, so r keeps full precision even for large k.
    const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
    let r = (x - k as f64 * LN2_HI) - k as f64 * LN2_LO;
    let mut term = 1.0;
    let mut sum = 1.0;
    for i in 1..=13u32 {
        term *= r / i as f64;
        sum += term;
    }
    sum * pow2i(k)
}

/// `2^k` as an f64, exact over the normal range.
fn pow2i(k: i64) -> f64 {
    if (-1022..=1023).contains(&k) {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else if k > 1023 {
        f64::MAX
    } else {
        // Subnormal or underflowed scale: build 2^-1022 and divide the
        // rest out (at most 52 further halvings matter).
        let mut v = f64::from_bits(1u64 << 52); // 2^-1022
        let mut left = -1022 - k;
        while left > 0 && v > 0.0 {
            v *= 0.5;
            left -= 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn core_ln_matches_std() {
        let mut worst = 0.0f64;
        let mut x = 1e-8;
        while x < 1e12 {
            let got = ln(x);
            let want = x.ln();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x *= 1.37;
        }
        assert!(worst < 1e-13, "core ln drifts from std ln: rel err {worst:e}");
    }

    #[test]
    fn core_exp_matches_std() {
        let mut worst = 0.0f64;
        let mut x = -700.0;
        while x < 700.0 {
            let got = exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.789;
        }
        assert!(worst < 1e-13, "core exp drifts from std exp: rel err {worst:e}");
    }

    #[test]
    fn samples_stay_in_bounds() {
        for &(n, s) in &[(1u64, 1.0f64), (2, 0.0), (10, 0.5), (100, 1.0), (1_000_000, 1.2)] {
            let zipf = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(0x5A1F ^ n ^ s.to_bits());
            for _ in 0..2_000 {
                let k = zipf.sample(&mut rng);
                assert!(
                    (1..=n).contains(&k),
                    "Zipf({n}, {s}) produced out-of-range key {k}"
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(10_000, 0.99);
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "equal seeds must replay equal key streams");
        assert_ne!(draw(42), draw(43), "distinct seeds should diverge");
    }

    #[test]
    fn zipf_goodness_of_fit_chi_square() {
        // 20 cells, 400k draws, exponent 1 (the harmonic case the
        // helper-series limits exist for). Expected cell probabilities
        // are k^-1 / H_20; the 0.9999 chi-square quantile at 19 degrees
        // of freedom is ~49.6, checked with headroom at a fixed seed.
        const N: usize = 20;
        const DRAWS: u64 = 400_000;
        let zipf = Zipf::new(N as u64, 1.0);
        let mut rng = StdRng::seed_from_u64(0x21F0_F00D);
        let mut counts = [0u64; N];
        for _ in 0..DRAWS {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        let weight = |k: usize| (k as f64 + 1.0).powf(-1.0);
        let total_weight: f64 = (0..N).map(weight).sum();
        let chi2: f64 = (0..N)
            .map(|k| {
                let expected = DRAWS as f64 * weight(k) / total_weight;
                let d = counts[k] as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 55.0,
            "Zipf draws do not fit k^-s: chi^2 = {chi2:.1}, counts {counts:?}"
        );
    }

    #[test]
    fn steeper_exponents_concentrate_mass() {
        let flat = Zipf::new(1_000, 0.5);
        let steep = Zipf::new(1_000, 1.5);
        let head_share = |zipf: &Zipf, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let hits = (0..20_000).filter(|_| zipf.sample(&mut rng) <= 10).count();
            hits as f64 / 20_000.0
        };
        let f = head_share(&flat, 9);
        let s = head_share(&steep, 9);
        assert!(
            s > f + 0.2,
            "exponent 1.5 should concentrate on the head far more than 0.5 (got {s:.3} vs {f:.3})"
        );
    }
}
