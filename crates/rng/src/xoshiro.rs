//! xoshiro256\*\*: the workhorse generator.
//!
//! Blackman & Vigna's all-purpose 256-bit generator: 4×u64 state, a
//! star-star output scramble that passes BigCrush/PractRand, period
//! 2^256 − 1, and a few shifts/rotates per draw — fast enough to sit on
//! the `olr_malloc` hot path where POLaR draws one permutation per
//! allocation.

use crate::{Rng, SeedableRng, SplitMix64};

/// The xoshiro256\*\* generator (public-domain reference algorithm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Jump the stream forward by 2^128 draws: hands out
    /// non-overlapping substreams for parallel shards that share one
    /// master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] =
            [0x180E_C6D3_3CFD_0ABA, 0xD5A6_1266_F0C9_392C, 0xA958_6618_E914_8924, 0x3982_3DC4_52FC_D22C];
        let mut t = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (acc, s) in t.iter_mut().zip(self.s) {
                        *acc ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the
            // transition function; remap it through SplitMix64.
            let mut seeder = SplitMix64::new(0);
            for word in &mut s {
                *word = seeder.next_u64();
            }
        }
        Xoshiro256StarStar { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference outputs for xoshiro256** with the state set to
        // [1, 2, 3, 4] (from the algorithm's published test values).
        let mut rng = Xoshiro256StarStar { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for want in expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn all_zero_seed_is_rescued() {
        let mut rng = Xoshiro256StarStar::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0, "all-zero state would be a fixed point");
    }

    #[test]
    fn jump_decorrelates() {
        let mut a = Xoshiro256StarStar::seed_from_u64(9);
        let mut b = a.clone();
        b.jump();
        let left: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(left, right);
    }
}
