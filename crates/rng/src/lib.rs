//! # polar-rng — the in-tree PRNG substrate for POLaR
//!
//! POLaR's security argument rests on reproducible, seeded randomness:
//! the runtime draws a fresh layout per allocation, the evaluation
//! measures per-allocation entropy, and every test wants deterministic
//! replay. Owning the generator keeps the whole workspace building
//! offline with zero registry dependencies and makes the randomness
//! auditable: SplitMix64 expands a 64-bit seed into generator state,
//! and xoshiro256\*\* (Blackman–Vigna) produces the stream.
//!
//! The API mirrors the `rand` crate shapes the codebase was written
//! against, so call sites read idiomatically:
//!
//! ```
//! use polar_rng::rngs::StdRng;
//! use polar_rng::seq::SliceRandom;
//! use polar_rng::{Rng, RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die: u32 = rng.random_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let coin = rng.random_bool(0.5);
//! let word: u64 = rng.random();
//! let mut deck: Vec<u8> = (0..52).collect();
//! deck.shuffle(&mut rng);
//! let _ = (coin, word);
//! ```
//!
//! `no_std`-friendly: the crate only uses `core` outside its tests.

#![cfg_attr(not(test), no_std)]
#![forbid(unsafe_code)]

mod buffered;
mod distr;
mod splitmix;
mod xoshiro;
mod zipf;

pub mod rngs;
pub mod seq;

pub use buffered::{BufferedRng, BUFFERED_RNG_WORDS};
pub use distr::{Random, SampleRange, UniformInt};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;
pub use zipf::Zipf;

/// A source of random 64-bit words.
///
/// This is the object-safe core trait (the analogue of `rand`'s
/// `RngCore`): implementors provide `next_u64`, everything else has
/// defaults. Derived draws (`random_range`, `shuffle`, …) live on
/// [`RngExt`] and [`seq::SliceRandom`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw, which is
    /// the better half for xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes (little-endian word chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Derived draws on top of any [`Rng`] — the helpers the layout engine,
/// fuzzer and runtime call (`random`, `random_range`, `random_bool`).
///
/// Blanket-implemented for every `Rng`, so `use polar_rng::RngExt`
/// brings the methods into scope on concrete generators and on
/// `R: Rng + ?Sized` generics alike.
pub trait RngExt: Rng {
    /// A uniformly random value of `T` over its whole domain
    /// (`bool` is a fair coin).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            // 53 high bits give an exact dyadic uniform on [0, 1).
            ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Build the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into full seed material via [`SplitMix64`]
    /// (the expansion the xoshiro authors recommend) and build the
    /// generator from it. Equal seeds give identical streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seeder = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        seeder.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}
