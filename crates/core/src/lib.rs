//! # POLaR: Per-allocation Object Layout Randomization
//!
//! A from-scratch Rust reproduction of *POLaR: Per-allocation Object
//! Layout Randomization* (Kim, Jang, Jeong, Kang — DSN 2019): a runtime
//! defense that gives **every heap allocation its own randomized
//! in-object field layout**, so that possessing the program binary tells
//! an attacker nothing about where a function pointer lives, and
//! replaying the same exploit never behaves the same way twice.
//!
//! This crate is the front door; the pipeline lives in focused crates
//! that are all re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`classinfo`] | class declarations, natural layouts, class hashes (the paper's CIE) |
//! | [`layout`] | randomization engine: permutation, dummies, booby traps, entropy |
//! | [`simheap`] | simulated process heap with exploit-faithful address reuse |
//! | [`runtime`] | the POLaR runtime: `olr_malloc`/`olr_getptr`/`olr_memcpy`/`olr_free` |
//! | [`ir`] | the mini compiler IR (LLVM stand-in) with builder + interpreter |
//! | [`instrument`] | the instrumentation pass rewriting object sites |
//! | [`taint`] | DFSan-style taint tracking + the TaintClass framework |
//! | [`fuzz`] | coverage-guided input generation (libFuzzer stand-in) |
//! | [`workloads`] | mini-SPEC2006, minipng/minijpeg, JS benchmark kernels |
//! | [`attacks`] | exploit simulations and security metrics |
//!
//! # Quickstart
//!
//! Harden a program and run it under per-allocation randomization:
//!
//! ```
//! use polar::prelude::*;
//!
//! // 1. Declare a class and a program that uses it (the IR stands in
//! //    for LLVM IR; workloads ship many realistic programs).
//! let mut mb = ModuleBuilder::new("demo");
//! let people = mb
//!     .add_classes_src("class People { vtable: vptr, age: i32, height: i32 }")
//!     .unwrap()[0];
//! let mut f = mb.function("main", 0);
//! let bb = f.entry_block();
//! let obj = f.alloc_obj(bb, people);
//! let fld = f.gep(bb, obj, people, 2);
//! let v = f.const_(bb, 170);
//! f.store(bb, fld, v, 4);
//! let out = f.load(bb, fld, 4);
//! f.free_obj(bb, obj);
//! f.ret(bb, Some(out));
//! mb.finish_function(f);
//! let module = mb.build().unwrap();
//!
//! // 2. Harden it (every allocation/gep/memcpy/free site is rewritten).
//! let hardened = Polar::new().harden(&module);
//!
//! // 3. Run: same observable behaviour, randomized object innards.
//! let report = hardened.run(&[]);
//! assert_eq!(report.result.unwrap(), 170);
//! assert_eq!(report.stats.allocations, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use polar_attacks as attacks;
pub use polar_classinfo as classinfo;
pub use polar_fuzz as fuzz;
pub use polar_instrument as instrument;
pub use polar_ir as ir;
pub use polar_layout as layout;
pub use polar_runtime as runtime;
pub use polar_simheap as simheap;
pub use polar_taint as taint;
pub use polar_workloads as workloads;

pub mod prelude;

use polar_instrument::{instrument, InstrumentOptions, InstrumentReport, Targets};
use polar_ir::interp::{run, ExecLimits, ExecReport};
use polar_ir::trace::{NopTracer, Tracer};
use polar_ir::Module;
use polar_layout::RandomizationPolicy;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};
use polar_taint::{analyze_corpus, TaintClassReport, TaintConfig};

/// High-level facade: configure once, harden programs, run them.
///
/// Wraps the three moving parts a user otherwise wires manually — the
/// instrumentation pass, the layout policy, and the runtime
/// configuration.
#[derive(Debug, Clone)]
pub struct Polar {
    policy: RandomizationPolicy,
    runtime_config: RuntimeConfig,
    instrument_options: InstrumentOptions,
}

impl Default for Polar {
    fn default() -> Self {
        Self::new()
    }
}

impl Polar {
    /// The paper's default configuration: full permutation, booby-trapped
    /// dummies, pointer guards, all detections armed, every class
    /// randomized.
    pub fn new() -> Self {
        Polar {
            policy: RandomizationPolicy::default(),
            runtime_config: RuntimeConfig::default(),
            instrument_options: InstrumentOptions::default(),
        }
    }

    /// Override the layout randomization policy.
    pub fn policy(mut self, policy: RandomizationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the runtime configuration (detections, cache, heap).
    pub fn runtime_config(mut self, config: RuntimeConfig) -> Self {
        self.runtime_config = config;
        self
    }

    /// Set the process entropy seed (fresh per execution in deployment).
    pub fn seed(mut self, seed: u64) -> Self {
        self.runtime_config.seed = seed;
        self
    }

    /// Restrict randomization to the given classes — typically the
    /// [`TaintClassReport`]'s target list.
    pub fn targets(mut self, targets: Targets) -> Self {
        self.instrument_options.targets = targets;
        self
    }

    /// Run TaintClass over a corpus and adopt its findings as the
    /// randomization target set (the Figure 3 feedback loop).
    pub fn targets_from_taintclass(
        mut self,
        module: &Module,
        corpus: &[Vec<u8>],
        limits: ExecLimits,
    ) -> (Self, TaintClassReport) {
        let report = analyze_corpus(
            module,
            corpus.iter().map(|v| v.as_slice()),
            limits,
            &TaintConfig::default(),
        );
        self.instrument_options.targets = Targets::from_classes(report.tainted_classes());
        (self, report)
    }

    /// Apply the instrumentation pass, producing a runnable hardened
    /// program.
    pub fn harden(&self, module: &Module) -> HardenedProgram {
        let (module, report) = instrument(module, &self.instrument_options);
        HardenedProgram {
            module,
            report,
            policy: self.policy,
            runtime_config: self.runtime_config,
        }
    }
}

/// An instrumented program bundled with its POLaR configuration.
#[derive(Debug)]
pub struct HardenedProgram {
    /// The instrumented module.
    pub module: Module,
    /// What the pass rewrote.
    pub report: InstrumentReport,
    policy: RandomizationPolicy,
    runtime_config: RuntimeConfig,
}

impl HardenedProgram {
    /// Execute with a fresh per-allocation-randomizing runtime.
    pub fn run(&self, input: &[u8]) -> ExecReport {
        self.run_with_limits(input, ExecLimits::default())
    }

    /// Execute with explicit limits.
    pub fn run_with_limits(&self, input: &[u8], limits: ExecLimits) -> ExecReport {
        let mut tracer = NopTracer;
        self.run_traced(input, limits, &mut tracer)
    }

    /// Execute with a custom tracer attached (taint, coverage, …).
    pub fn run_traced<T: Tracer>(
        &self,
        input: &[u8],
        limits: ExecLimits,
        tracer: &mut T,
    ) -> ExecReport {
        let mode = RandomizeMode::PerAllocation { policy: self.policy };
        let mut rt = ObjectRuntime::new(mode, self.runtime_config);
        run(&self.module, &mut rt, input, limits, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_ir::builder::ModuleBuilder;

    fn demo_module() -> (Module, polar_classinfo::ClassId) {
        let mut mb = ModuleBuilder::new("demo");
        let c = mb
            .add_classes_src("class T { vtable: vptr, n: i64 }")
            .unwrap()[0];
        let mut f = mb.function("main", 0);
        let bb = f.entry_block();
        let o = f.alloc_obj(bb, c);
        let fld = f.gep(bb, o, c, 1);
        let v = f.const_(bb, 7);
        f.store(bb, fld, v, 8);
        let r = f.load(bb, fld, 8);
        f.free_obj(bb, o);
        f.ret(bb, Some(r));
        mb.finish_function(f);
        (mb.build().unwrap(), c)
    }

    #[test]
    fn facade_hardens_and_runs() {
        let (module, _) = demo_module();
        let hardened = Polar::new().seed(99).harden(&module);
        assert!(hardened.module.is_instrumented());
        assert!(hardened.report.total() >= 3);
        let report = hardened.run(&[]);
        assert_eq!(report.result.unwrap(), 7);
        assert_eq!(report.stats.allocations, 1);
        assert_eq!(report.stats.frees, 1);
    }

    #[test]
    fn taintclass_feedback_narrows_targets() {
        // The demo module never touches input: TaintClass reports no
        // targets, so nothing gets randomized.
        let (module, _) = demo_module();
        let (polar, report) = Polar::new().targets_from_taintclass(
            &module,
            &[vec![1, 2, 3]],
            ExecLimits::default(),
        );
        assert_eq!(report.tainted_class_count(), 0);
        let hardened = polar.harden(&module);
        assert_eq!(hardened.report.allocs_rewritten, 0);
        assert_eq!(hardened.report.geps_rewritten, 0);
        // free() stays hooked regardless.
        assert_eq!(hardened.report.frees_rewritten, 1);
        assert_eq!(hardened.run(&[]).result.unwrap(), 7);
    }

    #[test]
    fn custom_policy_flows_through() {
        let (module, _) = demo_module();
        let hardened = Polar::new()
            .policy(RandomizationPolicy::permute_only())
            .seed(3)
            .harden(&module);
        let report = hardened.run(&[]);
        assert_eq!(report.result.unwrap(), 7);
    }
}
