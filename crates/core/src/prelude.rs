//! Convenient glob-import surface: `use polar::prelude::*;`.

pub use crate::{HardenedProgram, Polar};

pub use polar_classinfo::{ClassDecl, ClassId, ClassInfo, ClassRegistry, FieldKind};
pub use polar_instrument::{check_compatibility, instrument, InstrumentOptions, Targets};
pub use polar_ir::builder::{FunctionBuilder, ModuleBuilder};
pub use polar_ir::interp::{run, run_native, run_with_mode, ExecLimits, ExecReport};
pub use polar_ir::{BinOp, CmpOp, Inst, Module, Terminator};
pub use polar_layout::{
    DummyPolicy, LayoutEngine, LayoutPlan, PermuteMode, RandomizationPolicy,
};
pub use polar_runtime::{
    ObjectRuntime, RandomizeMode, RuntimeConfig, RuntimeError, RuntimeStats, SiteCache,
};
pub use polar_simheap::{Addr, HeapConfig, SimHeap};
pub use polar_taint::{analyze, analyze_corpus, TaintClassReport, TaintConfig};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use super::*;
        let _ = Polar::new();
        let _ = RandomizationPolicy::default();
        let _ = ExecLimits::default();
    }
}
