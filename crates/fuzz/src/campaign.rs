//! Generic-over-target search campaigns.
//!
//! [`Fuzzer`](crate::Fuzzer) is married to IR modules and coverage maps.
//! The adaptive security evaluation needs the same mutate → execute →
//! retain loop against a different kind of target (attack tapes run
//! through a heap VM), so this module factors the loop out: anything
//! implementing [`CampaignTarget`] can be searched. Feedback is
//! deliberately abstract — novelty *tokens* (the target's own notion of
//! "something new happened"), a scalar *score* (the target's gradient),
//! and a *success* flag (the target's goal predicate).
//!
//! Determinism contract: a campaign's behavior is a pure function of
//! `(options.seed, seed tapes, target behavior)`. The driver's only
//! randomness is the [`Mutator`]'s seeded RNG; token bookkeeping uses a
//! `HashSet` for membership *only* (never iterated), so hash-order
//! nondeterminism cannot leak into decisions.

use std::collections::HashSet;

use crate::corpus::Corpus;
use crate::minimize::{minimize_with, MinimizeStats};
use crate::mutate::Mutator;

/// What one target execution reports back to the search loop.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// Novelty tokens: opaque identifiers for "interesting things" this
    /// execution did (an outcome class, an adjacency bucket, a probed
    /// offset…). A tape producing any not-yet-seen token is retained.
    pub tokens: Vec<u64>,
    /// Scalar fitness; higher is better. A tape beating the best score
    /// so far is retained even without fresh tokens.
    pub score: i64,
    /// Whether this execution achieved the campaign goal.
    pub success: bool,
}

/// Something a [`Campaign`] can search against: executes a byte tape,
/// reports [`Feedback`].
pub trait CampaignTarget {
    /// Execute `tape` once.
    fn execute(&mut self, tape: &[u8]) -> Feedback;
}

/// Campaign tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Mutator RNG seed — the campaign's only randomness source.
    pub seed: u64,
    /// Upper bound on evolved tape length.
    pub max_tape_len: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions { seed: 0xCA4D, max_tape_len: 96 }
    }
}

/// Aggregate campaign counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Target executions performed.
    pub execs: u64,
    /// Executions retained into the corpus (fresh token, score
    /// improvement, or success).
    pub interesting: u64,
    /// Executions that hit the goal predicate.
    pub successes: u64,
}

/// The mutate → execute → retain loop over a [`CampaignTarget`].
#[derive(Debug)]
pub struct Campaign<T> {
    target: T,
    mutator: Mutator,
    corpus: Corpus,
    seen: HashSet<u64>,
    stats: CampaignStats,
    best: Option<(i64, Vec<u8>)>,
    best_success: Option<Vec<u8>>,
}

impl<T: CampaignTarget> Campaign<T> {
    /// A campaign over `target` with the given options.
    pub fn new(target: T, options: CampaignOptions) -> Self {
        Campaign {
            target,
            mutator: Mutator::new(options.seed, options.max_tape_len),
            corpus: Corpus::new(),
            seen: HashSet::new(),
            stats: CampaignStats::default(),
            best: None,
            best_success: None,
        }
    }

    /// Execute `tape` as-is and retain it if interesting — use for the
    /// hand-written starting points every scenario ships.
    pub fn seed_tape(&mut self, tape: Vec<u8>) {
        self.run_one(tape);
    }

    /// Run `execs` mutate → execute → retain iterations.
    pub fn run(&mut self, execs: u64) {
        for _ in 0..execs {
            let mut tape = match self.corpus.pick(self.mutator.rng()) {
                Some(i) => self.corpus.entry(i).data.clone(),
                None => Vec::new(),
            };
            // Occasional splice partner, energy-weighted like the pick.
            let other = self
                .corpus
                .pick(self.mutator.rng())
                .map(|i| self.corpus.entry(i).data.clone());
            self.mutator.mutate(&mut tape, other.as_deref());
            self.run_one(tape);
        }
    }

    fn run_one(&mut self, tape: Vec<u8>) {
        let feedback = self.target.execute(&tape);
        self.stats.execs += 1;
        let mut fresh = 0usize;
        for token in &feedback.tokens {
            if self.seen.insert(*token) {
                fresh += 1;
            }
        }
        let improved = self.best.as_ref().is_none_or(|(s, _)| feedback.score > *s);
        if improved {
            self.best = Some((feedback.score, tape.clone()));
        }
        if feedback.success {
            self.stats.successes += 1;
            if self.best_success.as_ref().is_none_or(|b| tape.len() < b.len()) {
                self.best_success = Some(tape.clone());
            }
        }
        if fresh > 0 || improved || feedback.success {
            self.stats.interesting += 1;
            self.corpus.add(tape, fresh);
        }
    }

    /// Campaign counters so far.
    pub fn stats(&self) -> CampaignStats {
        self.stats
    }

    /// The highest-scoring tape seen, if any execution ran.
    pub fn best_tape(&self) -> Option<&[u8]> {
        self.best.as_ref().map(|(_, t)| t.as_slice())
    }

    /// The shortest goal-achieving tape seen, if any.
    pub fn best_success(&self) -> Option<&[u8]> {
        self.best_success.as_deref()
    }

    /// Shared access to the target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Exclusive access to the target (e.g. to reconfigure between
    /// phases).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// Consume the campaign, returning the target.
    pub fn into_target(self) -> T {
        self.target
    }

    /// Shrink the best success tape against `predicate` (which should
    /// re-run the target deterministically and report whether the
    /// candidate still succeeds). Returns the minimized tape, or `None`
    /// when the campaign never succeeded.
    pub fn minimize_success(
        &mut self,
        mut predicate: impl FnMut(&mut T, &[u8]) -> bool,
    ) -> Option<(Vec<u8>, MinimizeStats)> {
        let tape = self.best_success.clone()?;
        let target = &mut self.target;
        let (minimized, stats) = minimize_with(tape, |candidate| predicate(target, candidate));
        self.best_success = Some(minimized.clone());
        Some((minimized, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pure target: success when the tape contains the magic pair
    /// `0xA5 0x5A`; score rewards near misses; tokens expose each byte
    /// value seen (a crude coverage signal).
    struct PairHunt;

    impl CampaignTarget for PairHunt {
        fn execute(&mut self, tape: &[u8]) -> Feedback {
            let mut score = 0i64;
            let mut tokens = Vec::new();
            for b in tape {
                tokens.push(u64::from(*b));
                if *b == 0xA5 {
                    score += 10;
                }
            }
            let success = tape.windows(2).any(|w| w == [0xA5, 0x5A]);
            Feedback { tokens, score: score + success as i64 * 1000, success }
        }
    }

    #[test]
    fn campaign_finds_the_magic_pair() {
        let mut campaign = Campaign::new(PairHunt, CampaignOptions::default());
        campaign.seed_tape(vec![0u8; 8]);
        campaign.run(3000);
        assert!(campaign.stats().successes > 0, "{:?}", campaign.stats());
        let best = campaign.best_success().unwrap();
        assert!(best.windows(2).any(|w| w == [0xA5, 0x5A]));
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = Campaign::new(
                PairHunt,
                CampaignOptions { seed, ..CampaignOptions::default() },
            );
            c.seed_tape(vec![1, 2, 3, 4]);
            c.run(500);
            (c.stats(), c.best_tape().map(<[u8]>::to_vec))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.execs, 0);
    }

    #[test]
    fn minimize_success_preserves_the_goal() {
        let mut campaign = Campaign::new(PairHunt, CampaignOptions::default());
        campaign.seed_tape(vec![9, 9, 0xA5, 0x5A, 9, 9, 9, 9]);
        assert!(campaign.best_success().is_some());
        let (minimized, _) =
            campaign.minimize_success(|t, cand| t.execute(cand).success).unwrap();
        assert!(minimized.len() <= 8);
        assert!(minimized.windows(2).any(|w| w == [0xA5, 0x5A]));
    }
}
