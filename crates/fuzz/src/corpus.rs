//! The fuzzing corpus: inputs retained for finding new coverage.

use polar_rng::{Rng, RngExt};

/// One retained input.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The input bytes.
    pub data: Vec<u8>,
    /// Distinct edges this input touched when it was added.
    pub edges: usize,
    /// Scheduling energy: how often this entry gets picked relative to
    /// others (new/coverage-rich entries start hot and cool down).
    pub energy: u32,
}

/// The corpus, with energy-weighted selection.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained inputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add an input (because it produced new coverage).
    pub fn add(&mut self, data: Vec<u8>, edges: usize) {
        // Fresh finds get energy proportional to their edge richness.
        let energy = 8 + (edges as u32).min(64);
        self.entries.push(CorpusEntry { data, edges, energy });
    }

    /// Pick an entry index, energy-weighted; cools the winner down by one
    /// so the schedule rotates. Returns `None` on an empty corpus.
    pub fn pick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let total: u64 = self.entries.iter().map(|e| u64::from(e.energy.max(1))).sum();
        let mut ticket = rng.random_range(0..total);
        for (i, e) in self.entries.iter_mut().enumerate() {
            let w = u64::from(e.energy.max(1));
            if ticket < w {
                if e.energy > 1 {
                    e.energy -= 1;
                }
                return Some(i);
            }
            ticket -= w;
        }
        Some(self.entries.len() - 1)
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn entry(&self, index: usize) -> &CorpusEntry {
        &self.entries[index]
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_rng::rngs::StdRng;
    use polar_rng::SeedableRng;

    #[test]
    fn empty_corpus_picks_nothing() {
        let mut c = Corpus::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(c.pick(&mut rng).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn add_and_pick() {
        let mut c = Corpus::new();
        c.add(vec![1], 5);
        c.add(vec![2], 50);
        assert_eq!(c.len(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 2];
        for _ in 0..300 {
            counts[c.pick(&mut rng).unwrap()] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "both entries must be scheduled: {counts:?}");
        // The richer entry starts with more energy and is picked more.
        assert!(counts[1] > counts[0], "{counts:?}");
    }

    #[test]
    fn energy_cools_down() {
        let mut c = Corpus::new();
        c.add(vec![1], 0);
        let initial = c.entry(0).energy;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            c.pick(&mut rng);
        }
        assert!(c.entry(0).energy < initial);
        // Energy never reaches zero (entries stay schedulable).
        for _ in 0..1000 {
            c.pick(&mut rng);
        }
        assert!(c.entry(0).energy >= 1);
    }
}
