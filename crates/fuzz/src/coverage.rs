//! AFL-style edge coverage.

use polar_ir::trace::{TraceEvent, Tracer};

/// Size of the coverage bitmap (64 KiB, like AFL/libFuzzer).
pub const MAP_SIZE: usize = 1 << 16;

/// Bucket a raw hit count into AFL's coarse categories so loop iteration
/// counts don't register as endless "new coverage".
fn bucket(count: u32) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

/// The accumulated coverage bitmap across a whole campaign.
#[derive(Clone)]
pub struct CoverageMap {
    virgin: Vec<u8>,
    edges_seen: usize,
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageMap({} edges)", self.edges_seen)
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap { virgin: vec![0; MAP_SIZE], edges_seen: 0 }
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct map slots ever hit.
    pub fn edges_seen(&self) -> usize {
        self.edges_seen
    }

    /// Merge one execution's hit counts; returns `true` when the run
    /// contributed a new edge or a new hit-count bucket.
    pub fn merge(&mut self, run: &RunCoverage) -> bool {
        let mut interesting = false;
        for (&slot, &count) in run.hits.iter() {
            let b = bucket(count);
            let v = &mut self.virgin[slot as usize];
            if *v == 0 {
                self.edges_seen += 1;
                interesting = true;
            }
            if *v & b == 0 {
                interesting = true;
            }
            *v |= b;
        }
        interesting
    }
}

/// Hit counts for a single execution (sparse).
#[derive(Debug, Clone, Default)]
pub struct RunCoverage {
    hits: std::collections::HashMap<u16, u32>,
}

impl RunCoverage {
    /// Number of distinct slots hit this run.
    pub fn distinct_edges(&self) -> usize {
        self.hits.len()
    }
}

/// A [`Tracer`] recording edge coverage for one execution.
///
/// Edges are hashed from `(function, from-block, to-block)`; call entries
/// contribute a pseudo-edge per callee so cross-function flow registers.
#[derive(Debug, Default)]
pub struct CoverageTracer {
    run: RunCoverage,
}

impl CoverageTracer {
    /// Fresh per-run tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish the run and extract its coverage.
    pub fn into_run(self) -> RunCoverage {
        self.run
    }

    fn hit(&mut self, slot: u16) {
        *self.run.hits.entry(slot).or_insert(0) += 1;
    }
}

fn mix(a: u64, b: u64, c: u64) -> u16 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for v in [a, b, c] {
        h ^= v.wrapping_add(0x517c_c1b7_2722_0a95);
        h = h.rotate_left(23).wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    (h ^ (h >> 32)) as u16
}

impl Tracer for CoverageTracer {
    fn on_event(&mut self, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Edge { func, from, to } => {
                self.hit(mix(func.0 as u64, from.0 as u64, to.0 as u64));
            }
            TraceEvent::CallEnter { callee, .. } => {
                self.hit(mix(0xCA11, callee.0 as u64, 0));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_ir::{BlockId, FuncId};

    fn edge(f: u32, a: u32, b: u32) -> TraceEvent<'static> {
        TraceEvent::Edge { func: FuncId(f), from: BlockId(a), to: BlockId(b) }
    }

    #[test]
    fn new_edges_are_interesting_once() {
        let mut map = CoverageMap::new();
        let mut t = CoverageTracer::new();
        t.on_event(&edge(0, 0, 1));
        let run = t.into_run();
        assert!(map.merge(&run), "first sighting is interesting");
        assert_eq!(map.edges_seen(), 1);
        let mut t = CoverageTracer::new();
        t.on_event(&edge(0, 0, 1));
        assert!(!map.merge(&t.into_run()), "same edge, same bucket: boring");
    }

    #[test]
    fn hit_count_buckets_register_as_new() {
        let mut map = CoverageMap::new();
        let mut t = CoverageTracer::new();
        t.on_event(&edge(0, 0, 1));
        map.merge(&t.into_run());
        // 50 hits lands in a different bucket than 1 hit.
        let mut t = CoverageTracer::new();
        for _ in 0..50 {
            t.on_event(&edge(0, 0, 1));
        }
        assert!(map.merge(&t.into_run()));
    }

    #[test]
    fn bucket_is_monotone_in_magnitude() {
        let mut last = 0u8;
        for c in [0u32, 1, 2, 3, 4, 8, 16, 32, 128, 100_000] {
            let b = bucket(c);
            assert!(b >= last || c == 0);
            last = b;
        }
        assert_eq!(bucket(0), 0);
    }

    #[test]
    fn distinct_edges_counted_per_run() {
        let mut t = CoverageTracer::new();
        t.on_event(&edge(0, 0, 1));
        t.on_event(&edge(0, 1, 2));
        t.on_event(&edge(0, 0, 1));
        assert_eq!(t.into_run().distinct_edges(), 2);
    }

    #[test]
    fn call_entries_count_as_coverage() {
        let mut map = CoverageMap::new();
        let mut t = CoverageTracer::new();
        t.on_event(&TraceEvent::CallEnter { callee: FuncId(3), args: &[], callee_regs: 4 });
        assert!(map.merge(&t.into_run()));
    }
}
