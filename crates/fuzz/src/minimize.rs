//! Crash-input minimization (libFuzzer's `-minimize_crash`).
//!
//! Once the fuzzer finds a crashing input, the analyst wants the smallest
//! input with the same behaviour — both for debugging and because
//! TaintClass runs converge faster on small corpus entries. The minimizer
//! performs greedy chunked deletion (ddmin-style) followed by byte
//! normalization (replacing bytes with zero where the predicate still
//! holds).

use polar_ir::interp::{run, ExecError, ExecLimits};
use polar_ir::trace::NopTracer;
use polar_ir::Module;
use polar_runtime::{ObjectRuntime, RandomizeMode, RuntimeConfig};

/// Statistics from one minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinimizeStats {
    /// Predicate evaluations performed.
    pub execs: u64,
    /// Bytes removed from the input.
    pub bytes_removed: usize,
    /// Bytes normalized to zero.
    pub bytes_normalized: usize,
}

/// Minimize `input` while `predicate` keeps holding. The predicate
/// receives each candidate and must be deterministic.
pub fn minimize_with(
    mut input: Vec<u8>,
    mut predicate: impl FnMut(&[u8]) -> bool,
) -> (Vec<u8>, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let original_len = input.len();
    debug_assert!(predicate(&input), "input must satisfy the predicate initially");

    // Phase 1: chunked deletion with shrinking chunk sizes.
    let mut chunk = (input.len() / 2).max(1);
    while chunk >= 1 {
        let mut pos = 0;
        while pos < input.len() {
            let end = (pos + chunk).min(input.len());
            let mut candidate = Vec::with_capacity(input.len() - (end - pos));
            candidate.extend_from_slice(&input[..pos]);
            candidate.extend_from_slice(&input[end..]);
            stats.execs += 1;
            if !candidate.is_empty() && predicate(&candidate) {
                input = candidate;
                // Same position now holds the next chunk.
            } else {
                pos = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: byte normalization.
    for i in 0..input.len() {
        if input[i] == 0 {
            continue;
        }
        let saved = input[i];
        input[i] = 0;
        stats.execs += 1;
        if !predicate(&input) {
            input[i] = saved;
        } else {
            stats.bytes_normalized += 1;
        }
    }

    stats.bytes_removed = original_len - input.len();
    (input, stats)
}

/// Minimize a crashing input for `module`: the predicate is "execution
/// ends with the same [`ExecError`] discriminant as the original run".
///
/// Returns `None` when the input does not crash in the first place.
pub fn minimize_crash(
    module: &Module,
    input: Vec<u8>,
    limits: ExecLimits,
) -> Option<(Vec<u8>, MinimizeStats)> {
    let original = crash_signature(module, &input, limits)?;
    Some(minimize_with(input, |candidate| {
        crash_signature(module, candidate, limits).as_ref() == Some(&original)
    }))
}

fn crash_signature(module: &Module, input: &[u8], limits: ExecLimits) -> Option<String> {
    let mut rt = ObjectRuntime::new(RandomizeMode::Native, RuntimeConfig::default());
    let report = run(module, &mut rt, input, limits, &mut NopTracer);
    match report.result {
        Ok(_) => None,
        // Hangs are not crashes; treat them as non-reproducing.
        Err(ExecError::StepLimit) | Err(ExecError::CallDepth) => None,
        Err(e) => Some(signature_of(&e)),
    }
}

fn signature_of(e: &ExecError) -> String {
    match e {
        ExecError::Abort(code) => format!("abort:{code}"),
        ExecError::DivByZero => "div0".to_owned(),
        ExecError::Fault(_) => "fault".to_owned(),
        ExecError::Detection(_) => "detection".to_owned(),
        ExecError::StepLimit | ExecError::CallDepth => "hang".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_ir::builder::ModuleBuilder;
    use polar_ir::CmpOp;

    /// Crashes iff the input contains the byte 0xBD anywhere after index 0
    /// AND starts with 'M'.
    fn picky_module() -> Module {
        let mut mb = ModuleBuilder::new("picky");
        let mut f = mb.function("main", 0);
        let bb = f.entry_block();
        let scan = f.block();
        let step = f.block();
        let boom = f.block();
        let safe = f.block();
        let zero = f.const_(bb, 0);
        let b0 = f.input_byte(bb, zero);
        let is_m = f.cmpi(bb, CmpOp::Eq, b0, b'M' as u64);
        let i = f.const_(bb, 1);
        f.br(bb, is_m, scan, safe);
        let len = f.input_len(scan);
        let more = f.cmp(scan, CmpOp::Lt, i, len);
        f.br(scan, more, step, safe);
        let b = f.input_byte(step, i);
        let hit = f.cmpi(step, CmpOp::Eq, b, 0xBD);
        let i2 = f.bini(step, polar_ir::BinOp::Add, i, 1);
        f.mov_to(step, i, i2);
        f.br(step, hit, boom, scan);
        f.abort(boom, 9);
        f.ret(boom, None);
        f.ret(safe, None);
        mb.finish_function(f);
        mb.build().unwrap()
    }

    #[test]
    fn minimizes_to_the_essential_bytes() {
        let module = picky_module();
        let mut input = vec![b'M'];
        input.extend([7u8; 40]);
        input.push(0xBD);
        input.extend([9u8; 20]);
        let (min, stats) =
            minimize_crash(&module, input, ExecLimits::default()).expect("crashes");
        assert_eq!(min.len(), 2, "minimal crash is `M` + 0xBD: {min:?}");
        assert_eq!(min[0], b'M');
        assert_eq!(min[1], 0xBD);
        assert!(stats.bytes_removed >= 58);
        assert!(stats.execs > 0);
    }

    #[test]
    fn non_crashing_inputs_are_rejected() {
        let module = picky_module();
        assert!(minimize_crash(&module, vec![1, 2, 3], ExecLimits::default()).is_none());
    }

    #[test]
    fn predicate_minimizer_normalizes_bytes() {
        // Predicate: byte at position 0 must be exactly 0x55; the rest is
        // irrelevant and should be removed or zeroed.
        let (min, stats) = minimize_with(vec![0x55, 1, 2, 3, 4], |c| c.first() == Some(&0x55));
        assert_eq!(min, vec![0x55]);
        assert_eq!(stats.bytes_removed, 4);
    }

    #[test]
    fn signature_distinguishes_crash_kinds() {
        assert_ne!(signature_of(&ExecError::DivByZero), signature_of(&ExecError::Abort(1)));
        assert_eq!(signature_of(&ExecError::Abort(1)), "abort:1");
    }
}
