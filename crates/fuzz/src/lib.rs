//! Coverage-guided input generation — the reproduction's libFuzzer.
//!
//! POLaR's TaintClass framework pairs DFSan with libFuzzer's
//! coverage-guiding module "to maximize the data flow coverage"
//! (Section IV-B2 of the paper): fuzzing discovers inputs that reach new
//! code, and taint analysis of those inputs discovers the objects the
//! input can influence. This crate provides the fuzzing half:
//!
//! * [`CoverageMap`] / [`CoverageTracer`] — an AFL-style edge-coverage
//!   bitmap with hit-count bucketing, fed by the interpreter's `Edge`
//!   trace events (the paper's "Edge-level code-coverage
//!   instrumentation", Section V-A);
//! * [`Mutator`] — byte-level mutations (bit flips, arithmetic,
//!   interesting values, insert/delete/duplicate, splicing);
//! * [`Corpus`] — inputs retained because they found new coverage;
//! * [`Fuzzer`] — the driving loop, classifying each execution as normal,
//!   crash, or POLaR detection;
//! * [`minimize`] — ddmin-style crash-input minimization
//!   (libFuzzer's `-minimize_crash`);
//! * [`Campaign`] — the same mutate → execute → retain loop generic over
//!   any [`CampaignTarget`] (the adaptive security evaluation searches
//!   attack tapes with it);
//! * [`taintclass_campaign`] — the full Section IV-B pipeline: fuzz for
//!   coverage, taint-analyze every corpus member, merge the reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod corpus;
mod coverage;
mod fuzzer;
pub mod minimize;
mod mutate;

pub use campaign::{Campaign, CampaignOptions, CampaignStats, CampaignTarget, Feedback};
pub use corpus::{Corpus, CorpusEntry};
pub use minimize::{minimize_crash, minimize_with, MinimizeStats};
pub use coverage::{CoverageMap, CoverageTracer};
pub use fuzzer::{CrashRecord, FuzzStats, Fuzzer, FuzzerOptions};
pub use mutate::Mutator;

use polar_ir::interp::ExecLimits;
use polar_ir::Module;
use polar_taint::{analyze_corpus, TaintClassReport, TaintConfig};

/// The combined coverage-guided TaintClass campaign (Section IV-B2):
/// fuzz `module` from `seeds` for `iterations` executions, then run the
/// DFSan-style taint analysis over every retained corpus input and merge
/// the findings into one report.
pub fn taintclass_campaign(
    module: &Module,
    seeds: &[Vec<u8>],
    iterations: u64,
    limits: ExecLimits,
    fuzz_seed: u64,
) -> (TaintClassReport, FuzzStats) {
    let mut fuzzer = Fuzzer::new(module, FuzzerOptions { limits, seed: fuzz_seed, ..Default::default() });
    for seed in seeds {
        fuzzer.add_seed(seed.clone());
    }
    fuzzer.run(iterations);
    let inputs: Vec<&[u8]> = fuzzer.corpus().iter().map(|e| e.data.as_slice()).collect();
    let report = analyze_corpus(module, inputs, limits, &TaintConfig::default());
    (report, fuzzer.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_classinfo::{ClassDecl, FieldKind};
    use polar_ir::builder::ModuleBuilder;
    use polar_ir::CmpOp;

    /// A program with a "magic byte" gate: only inputs starting with 0x89
    /// reach the code that copies input into the Gated object.
    fn gated_module() -> (Module, polar_classinfo::ClassId) {
        let mut mb = ModuleBuilder::new("gated");
        let gated = mb
            .add_class(ClassDecl::builder("Gated").field("payload", FieldKind::I64).build())
            .unwrap();
        let mut f = mb.function("main", 0);
        let bb = f.entry_block();
        let hit = f.block();
        let miss = f.block();
        let zero = f.const_(bb, 0);
        let magic = f.input_byte(bb, zero);
        let is_magic = f.cmpi(bb, CmpOp::Eq, magic, 0x89);
        f.br(bb, is_magic, hit, miss);
        let one = f.const_(hit, 1);
        let v = f.input_byte(hit, one);
        let obj = f.alloc_obj(hit, gated);
        let fld = f.gep(hit, obj, gated, 0);
        f.store(hit, fld, v, 8);
        f.ret(hit, None);
        f.ret(miss, None);
        mb.finish_function(f);
        (mb.build().unwrap(), gated)
    }

    #[test]
    fn campaign_finds_the_gated_object() {
        let (module, gated) = gated_module();
        // Seed far from the magic value; the fuzzer must discover 0x89.
        let (report, stats) = taintclass_campaign(
            &module,
            &[vec![0u8, 0u8]],
            3000,
            ExecLimits::steps(10_000),
            42,
        );
        assert!(stats.execs >= 3000);
        assert!(
            report.class_taint(gated).is_some(),
            "coverage-guided campaign failed to reach the gated object \
             (corpus coverage never found the magic byte)"
        );
    }
}
